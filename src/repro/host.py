"""Multi-tenant SessionHost: thousands of collaboration sets per process.

The paper's scalability argument (section 5.1.3) is that commit cost is per
*collaboration set*, not global: independent collaborations never
synchronize with each other, so a server hosting many small ones should
scale linearly in tenant count at bounded latency.  This module is the
runtime that actually exercises that claim:

* A :class:`SessionHost` multiplexes independent collaboration sets
  (*tenants*) over **one shared transport** — shared TCP connections,
  shared event loop, one :class:`~repro.obs.events.EventBus` and one
  transport-level :class:`~repro.obs.metrics.MetricsRegistry` across all
  tenants.
* Each tenant's :class:`~repro.core.session.Session` runs over a
  :class:`~repro.transport.base.TenantTransport` facade, so the whole
  protocol stack (site runtimes, engines, views, failure managers) is
  completely unchanged — the facade routes through the transport's
  tenant-scoped addressing (wire v3 frames on TCP, packed site ids on the
  simulated/in-memory transports).
* Tenants activate **lazily**: an idle collaboration costs nothing until
  its first :meth:`SessionHost.tenant` call, and :meth:`SessionHost.evict`
  (or the ``max_active`` LRU bound) releases routing state again.  Frames
  still in flight to an evicted tenant are dropped and counted by the
  transport, never raised.
* Fan-out stays roster-aware: each tenant session's roster contains only
  that tenant's sites, so its traffic reaches only the processes that
  replicate its objects and a failure notice for one tenant's site never
  leaks into another tenant's protocol (cross-tenant isolation).

See docs/HOST.md for the architecture and benchmarks/bench_scale.py for
the open-loop many-small-collaborations load harness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.session import Session
from repro.errors import ReproError
from repro.obs.events import EventBus
from repro.transport.base import TenantTransport, Transport

Addr = Tuple[str, int]


class Placement:
    """Maps ``(tenant, site)`` routing keys to process addresses.

    The common SessionHost topology is *symmetric*: every tenant's site
    ``i`` lives in the same process as every other tenant's site ``i``,
    described once by ``site_addrs`` (site index → address).  Individual
    tenants can deviate via ``per_tenant`` overrides — e.g. a migrated
    collaboration whose replicas moved to other processes.

    :class:`~repro.transport.tcp.TcpTransport` consumes this duck-typed
    (``addr_of`` / ``sites_at``); without an explicit placement it falls
    back to exactly the symmetric behaviour using its own address map.
    """

    def __init__(
        self,
        site_addrs: Dict[int, Addr],
        per_tenant: Optional[Dict[int, Dict[int, Addr]]] = None,
    ) -> None:
        self.site_addrs = dict(site_addrs)
        self.per_tenant: Dict[int, Dict[int, Addr]] = {
            t: dict(m) for t, m in (per_tenant or {}).items()
        }

    def addr_of(self, tenant: int, site: int) -> Optional[Addr]:
        """The endpoint hosting ``site`` of ``tenant`` (None if unknown)."""
        override = self.per_tenant.get(tenant)
        if override is not None and site in override:
            return override[site]
        return self.site_addrs.get(site)

    def sites_at(self, tenant: int, addr: Addr) -> List[int]:
        """Every site of ``tenant`` placed at ``addr`` (failure fan-out)."""
        override = self.per_tenant.get(tenant, {})
        sites = {s for s, a in self.site_addrs.items() if a == addr and s not in override}
        sites.update(s for s, a in override.items() if a == addr)
        return sorted(sites)


class _ActiveTenant:
    """One activated collaboration set: its session and its facade."""

    __slots__ = ("session", "facade")

    def __init__(self, session: Session, facade: TenantTransport) -> None:
        self.session = session
        self.facade = facade


class SessionHost:
    """Hosts many independent collaboration sets over one shared transport.

    ``local_sites`` is the slice of every tenant's site numbering this
    process hosts (the symmetric topology: the same indices for every
    tenant); ``roster`` is each collaboration's full membership, defaulting
    to ``local_sites`` (single-process).  Tenant ids are positive integers
    — 0 is the reserved unscoped namespace of pre-tenant sessions, which
    can coexist on the same transport.

    ``max_active`` bounds resident sessions LRU-style: activating tenant
    N+1 evicts the least-recently-used one.  Eviction is routing-level
    (handlers and failure listeners detach; in-flight frames drop) — a
    re-activated tenant starts a fresh session and must re-join its
    relationships, which is the paper's late-joiner path, not a hot
    resume.
    """

    def __init__(
        self,
        transport: Transport,
        local_sites: Iterable[int] = (0,),
        roster: Optional[Iterable[int]] = None,
        max_active: Optional[int] = None,
        batching: bool = True,
        on_activate: Optional[Callable[[int, Session], None]] = None,
        **session_kwargs: Any,
    ) -> None:
        self.transport = transport
        self.local_sites: Tuple[int, ...] = tuple(local_sites)
        if not self.local_sites:
            raise ReproError("SessionHost needs at least one local site index")
        self.roster = set(roster) if roster is not None else set(self.local_sites)
        if max_active is not None and max_active < 1:
            raise ReproError("max_active must be at least 1")
        self.max_active = max_active
        self.batching = batching
        self.on_activate = on_activate
        self.session_kwargs = session_kwargs
        self._active: "OrderedDict[int, _ActiveTenant]" = OrderedDict()
        #: Lifetime tallies (monotonic; survive eviction).
        self.activations = 0
        self.evictions = 0
        # One EventBus across tenants: sessions share the transport's bus.
        # Transports without one (MemoryTransport) get a host-provided bus
        # attached so every tenant still lands on a single timeline.
        if getattr(transport, "bus", None) is None:
            try:
                transport.bus = EventBus()  # type: ignore[attr-defined]
            except AttributeError:
                pass

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------

    def tenant(self, tenant_id: int) -> Session:
        """The tenant's session, activating it lazily on first use.

        Touching a tenant marks it most-recently-used for the
        ``max_active`` LRU bound.
        """
        active = self._active.get(tenant_id)
        if active is not None:
            self._active.move_to_end(tenant_id)
            return active.session
        if tenant_id <= 0:
            raise ReproError(
                f"tenant id must be a positive integer, got {tenant_id} "
                "(0 is the reserved unscoped namespace)"
            )
        facade = TenantTransport(self.transport, tenant_id)
        session = Session(
            transport=facade,
            batching=self.batching,
            roster=self.roster,
            **self.session_kwargs,
        )
        for site_id in self.local_sites:
            session.add_site(f"t{tenant_id}s{site_id}", site_id=site_id)
        self._active[tenant_id] = _ActiveTenant(session, facade)
        self.activations += 1
        if self.on_activate is not None:
            self.on_activate(tenant_id, session)
        if self.max_active is not None:
            while len(self._active) > self.max_active:
                oldest = next(iter(self._active))
                if oldest == tenant_id:
                    break  # never evict the tenant just activated
                self.evict(oldest)
        return session

    def evict(self, tenant_id: int) -> bool:
        """Deactivate a tenant, releasing its routing state.

        Returns False when the tenant was not active.  The transport drops
        (and counts) any frames still in flight to the evicted tenant;
        other tenants are unaffected.
        """
        active = self._active.pop(tenant_id, None)
        if active is None:
            return False
        active.facade.detach()
        self.evictions += 1
        return True

    def is_active(self, tenant_id: int) -> bool:
        return tenant_id in self._active

    def __contains__(self, tenant_id: int) -> bool:
        return tenant_id in self._active

    def __len__(self) -> int:
        return len(self._active)

    @property
    def active_tenants(self) -> List[int]:
        """Active tenant ids in least-recently-used-first order."""
        return list(self._active)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def settle(self, max_events: Optional[int] = None) -> None:
        """Drain the shared transport (all tenants at once)."""
        self.transport.quiesce(max_events)

    async def asettle(self, **kwargs: Any) -> None:
        """Async drain for event-loop transports (``await aquiesce()``)."""
        fn = getattr(self.transport, "aquiesce", None)
        if fn is None:
            self.transport.quiesce(None)
            return
        await fn(**kwargs)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Aggregated protocol counters across every active tenant.

        The shared transport-level (site −1) registry is added exactly
        once — per-tenant :meth:`Session.counters` would multiply-count it
        since every tenant session shares the same transport.
        """
        totals: Dict[str, int] = {}
        for active in self._active.values():
            for site in active.session.sites:
                for key, value in site.counters().items():
                    totals[key] = totals.get(key, 0) + value
        transport_metrics = getattr(self.transport, "metrics", None)
        if transport_metrics is not None:
            for key, value in transport_metrics.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def metrics_snapshot(self) -> List[Dict[str, Any]]:
        """Per-site registry dumps in (tenant, site) order, then transport."""
        snaps: List[Dict[str, Any]] = []
        for tenant_id in sorted(self._active):
            for site in self._active[tenant_id].session.sites:
                snap = site.metrics.snapshot()
                snap["tenant"] = tenant_id
                snaps.append(snap)
        transport_metrics = getattr(self.transport, "metrics", None)
        if transport_metrics is not None:
            snaps.append(transport_metrics.snapshot())
        return snaps

    def stats(self) -> Dict[str, int]:
        """Host lifecycle tallies: active now, ever activated, ever evicted."""
        return {
            "active": len(self._active),
            "activations": self.activations,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"SessionHost(active={len(self._active)}, "
            f"local_sites={list(self.local_sites)}, "
            f"activations={self.activations}, evictions={self.evictions})"
        )
