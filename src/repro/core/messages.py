"""The DECAF wire protocol.

One dataclass per message type.  The protocol follows section 3 of the
paper:

* ``TxnPropagateMsg`` carries, per destination site, the batched WRITE ops
  and CONFIRM-READ checks of one transaction (the paper's Fig. 5 sends
  "CONFIRM-READ" to primary-only sites and "WRITE" to replica sites; we
  bundle both kinds into one message per site).
* ``ConfirmMsg`` is the primary's confirmation (or denial) of the RL and NC
  guesses it was asked to check.  It is sent only to the originating site —
  the paper's specialization of Strom–Yemini guess propagation.
* ``CommitMsg`` / ``AbortMsg`` are the originating site's (or delegate's)
  summary decision, sent to every involved site.
* ``SnapshotConfirmMsg`` / ``SnapshotReplyMsg`` implement the CONFIRM-READ
  traffic of view snapshots (section 4).
* ``JoinRequestMsg`` / ``JoinReplyMsg`` implement the remote call of the
  dynamic collaboration establishment protocol (section 3.3).
* ``FailQueryMsg`` / ``FailQueryReplyMsg`` and the ``GraphRepair*`` family
  implement failure handling (section 3.4).

Every message carries the sender's Lamport ``clock`` counter so receivers
can merge virtual time.  All messages are frozen dataclasses: the simulator
passes them by reference, and immutability guarantees a site can never
mutate another site's state through a shared payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.vtime import VirtualTime

# ---------------------------------------------------------------------------
# Operation payloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class SlotId:
    """The identity of one embedded child: its embed VT plus a per-
    transaction sequence number.

    The paper tags fragile indices with the VT of the embedding transaction
    (section 3.2.1); because one transaction may embed several children,
    the tag is extended with an operation sequence number assigned at the
    originating site (negative numbers are reserved for children created
    inside nested initial-value specs, so the two namespaces never clash).

    Slot ids recur across every fragile-index path of a collaboration, so
    the wire codec interns decoded instances (``__wire_intern__``): a slot
    decoded from the same byte span again (duplicate delivery, repeated
    paths) reuses the previously decoded object.
    """

    #: Opt-in marker for the wire codec's decode-side intern cache.
    __wire_intern__ = True

    vt: VirtualTime
    seq: int = 0


@dataclass(frozen=True)
class PathStep:
    """One step of a composite path: an index hint plus its VT embed tag.

    The paper (section 3.2.1) tags fragile list indices with the VT of the
    transaction that embedded the child, so receivers can resolve paths
    regardless of the order in which structure-changing operations arrive.
    ``embed_vt`` is a :class:`SlotId` for list children and the put VT for
    map children.

    Path steps recur across every write addressing the same composite, so
    decoded instances are interned like :class:`SlotId`.
    """

    #: Opt-in marker for the wire codec's decode-side intern cache.
    __wire_intern__ = True

    key: Any  # None for list children, the map key for map children
    embed_vt: Any  # SlotId (lists) or VirtualTime (maps)


@dataclass(frozen=True)
class OpPayload:
    """A single model-object mutation.

    ``kind`` is one of:

    * ``"set"``       — scalar assignment; ``args = (value,)``
    * ``"insert"``    — list insert; ``args = (index, child_spec)``
    * ``"remove"``    — list removal; ``args = (index, embed_vt)``
    * ``"put"``       — map put; ``args = (key, child_spec)``
    * ``"delete"``    — map removal; ``args = (key, embed_vt)``
    * ``"graph"``     — replication-graph replacement; ``args = (graph,)``
    * ``"assoc"``     — association membership delta; ``args = (rel_id, action, member)``

    Op descriptors are small immutable values that repeat heavily (the same
    ``("set", (v,))`` shape dominates most workloads), so the wire codec
    interns decoded instances and caches their canonical encoding.
    """

    #: Opt-in marker for the wire codec's intern / encode caches.
    __wire_intern__ = True

    kind: str
    args: Tuple[Any, ...]


@dataclass(frozen=True)
class WriteOp:
    """A WRITE of one (possibly embedded) object, addressed to one site.

    ``object_uid`` names the destination site's replica.  For indirect
    propagation into composites, ``path`` walks from that root replica down
    to the embedded target (empty for root-level writes).  ``read_vt`` and
    ``graph_vt`` are the transaction's recorded read times, checked by the
    primary copy (RL guesses); blind writes carry ``read_vt == txn_vt``.

    A write op is encoded once per destination during commit fan-out and
    decoded unchanged on every duplicate delivery, so it participates in
    the wire codec's span-interning and per-instance encode cache.
    """

    #: Opt-in marker for the wire codec's intern / encode caches.
    __wire_intern__ = True

    object_uid: str
    op: OpPayload
    read_vt: VirtualTime
    graph_vt: VirtualTime
    path: Tuple[PathStep, ...] = ()


@dataclass(frozen=True)
class ReadCheck:
    """A CONFIRM-READ item: object read (not written) by the transaction."""

    #: Opt-in marker for the wire codec's intern / encode caches.
    __wire_intern__ = True

    object_uid: str
    read_vt: VirtualTime
    graph_vt: VirtualTime
    path: Tuple[PathStep, ...] = ()


@dataclass(frozen=True)
class DelegateGrant:
    """Delegated-commit optimization (section 3.1).

    When a transaction has exactly one remote primary site and no RC
    guesses, the originating site delegates the commit decision: the
    grantee checks its guesses and directly broadcasts COMMIT/ABORT to
    ``all_sites`` instead of confirming back to the origin.
    """

    all_sites: Tuple[int, ...]


# ---------------------------------------------------------------------------
# Transaction protocol messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TxnPropagateMsg:
    """Per-site batch of WRITEs and CONFIRM-READ checks for one transaction."""

    txn_vt: VirtualTime
    origin: int
    writes: Tuple[WriteOp, ...]
    read_checks: Tuple[ReadCheck, ...]
    clock: int
    delegate: Optional[DelegateGrant] = None
    #: Force a confirmation from this site even if it does not consider
    #: itself primary under the current (already merged) graph — used by the
    #: join protocol so the *old* graph primaries validate the graph change
    #: (section 3.3).
    force_confirm: bool = False


@dataclass(frozen=True)
class ConfirmMsg:
    """Primary-site confirmation or denial of a transaction's guesses."""

    txn_vt: VirtualTime
    site: int
    ok: bool
    clock: int
    reason: str = ""


@dataclass(frozen=True)
class CommitMsg:
    """Summary commit of the transaction at ``txn_vt`` (origin or delegate)."""

    txn_vt: VirtualTime
    clock: int


@dataclass(frozen=True)
class AbortMsg:
    """Summary abort of the transaction at ``txn_vt`` (origin or delegate)."""

    txn_vt: VirtualTime
    clock: int
    reason: str = ""


# ---------------------------------------------------------------------------
# View snapshot protocol messages (section 4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SnapshotCheck:
    """An RL guess for a snapshot: interval ``(lo_vt, hi_vt)`` update-free.

    ``committed_only`` distinguishes pessimistic snapshots (interval must be
    free of *committed* updates; uncommitted in-interval values defer the
    answer until they resolve) from optimistic snapshots (any in-interval
    value denies immediately).
    """

    #: Opt-in marker for the wire codec's intern / encode caches.
    __wire_intern__ = True

    object_uid: str
    lo_vt: VirtualTime
    hi_vt: VirtualTime
    committed_only: bool
    path: Tuple[PathStep, ...] = ()


@dataclass(frozen=True)
class SnapshotConfirmMsg:
    """CONFIRM-READ request from a view proxy to a primary copy."""

    snap_id: Tuple[int, int]  # (site, per-site sequence number)
    origin: int
    checks: Tuple[SnapshotCheck, ...]
    clock: int


@dataclass(frozen=True)
class SnapshotReplyMsg:
    """Primary's verdict on a snapshot's RL guesses at this site."""

    snap_id: Tuple[int, int]
    ok: bool
    denials: Tuple[str, ...]
    clock: int


@dataclass(frozen=True)
class WriteConfirmedMsg:
    """Eager distribution of a confirmed write (section 5.1.2 / 5.3).

    "For objects that are updated in the transaction, confirmations are
    eagerly distributed by the primary copy when the originating site
    requests confirmation."  When the primary confirms a transaction's
    write on an object, it broadcasts the write-free interval it just
    validated to every replica site; pessimistic view proxies there can
    resolve their own snapshot RL guesses over sub-intervals locally,
    without a CONFIRM-READ round trip of their own.
    """

    object_uid: str  # the receiving site's replica uid
    txn_vt: VirtualTime
    lo_vt: VirtualTime  # confirmed write-free open interval (lo, hi)
    hi_vt: VirtualTime
    clock: int


# ---------------------------------------------------------------------------
# Collaboration establishment messages (section 3.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinRequestMsg:
    """The remote call from joiner A to member B: "here is my graph g_A"."""

    request_id: Tuple[int, int]
    origin: int
    txn_vt: VirtualTime
    target_uid: str  # B, the object already in the relationship
    joiner_uid: str  # A, the joining object
    joiner_graph: Any  # ReplicationGraph of A
    clock: int


@dataclass(frozen=True)
class JoinReplyMsg:
    """B's reply: its exported state, the merged graph, and pending caveats.

    ``sync_vt`` is the latest VT in the exported subtree state; the joiner's
    read of B's value is validated at B's primary over ``(sync_vt, txn_vt)``.
    ``pending_vts`` are the uncommitted transactions contributing to the
    exported state; the joiner must wait for them to commit (B forwards
    their outcomes — "this fact is remembered at B", section 3.3).
    """

    request_id: Tuple[int, int]
    ok: bool
    sync_spec: Any
    merged_graph: Any  # ReplicationGraph
    graph_vt: VirtualTime
    sync_vt: VirtualTime
    pending_vts: Tuple[VirtualTime, ...]
    gb_primary: int
    clock: int
    reason: str = ""
    #: False for permanent denials (authorization, unknown object) where
    #: automatic re-execution cannot help.
    retryable: bool = True


# ---------------------------------------------------------------------------
# Failure handling messages (section 3.4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FailQueryMsg:
    """Coordinator asks survivors whether they logged commits for in-flight txns."""

    query_id: Tuple[int, int]
    origin: int
    failed_site: int
    txn_vts: Tuple[VirtualTime, ...]
    clock: int


@dataclass(frozen=True)
class FailQueryReplyMsg:
    """Survivor's logged outcomes plus its own in-flight list.

    ``committed`` are transactions of the failed origin this site logged a
    COMMIT for; ``pending`` are ones it applied but whose outcome it does
    not know.  The coordinator commits any transaction some survivor saw
    commit and aborts the rest (section 3.4).
    """

    query_id: Tuple[int, int]
    site: int
    committed: Tuple[VirtualTime, ...]
    pending: Tuple[VirtualTime, ...]
    clock: int


@dataclass(frozen=True)
class FailResolutionMsg:
    """Coordinator's decision for each in-flight transaction of a failed site."""

    query_id: Tuple[int, int]
    commit_vts: Tuple[VirtualTime, ...]
    abort_vts: Tuple[VirtualTime, ...]
    clock: int


@dataclass(frozen=True)
class GraphRepairProposeMsg:
    """Consensus round 1: coordinator proposes removing a failed site's nodes.

    Used only when the failed site was the *primary* of a replication graph
    (the circularity case of section 3.4); otherwise graph updates ride the
    normal transaction protocol.
    """

    proposal_id: Tuple[int, int]
    coordinator: int
    failed_site: int
    object_uids: Tuple[str, ...]
    apply_vt: VirtualTime
    clock: int
    #: Every failed site known to the coordinator; receivers remove exactly
    #: this set, keeping the consensus outcome deterministic even when
    #: notification order differs between survivors.
    failed_sites: Tuple[int, ...] = ()


@dataclass(frozen=True)
class GraphRepairAckMsg:
    """Consensus round 1 acknowledgement from a survivor."""

    proposal_id: Tuple[int, int]
    site: int
    ok: bool
    clock: int


@dataclass(frozen=True)
class GraphRepairApplyMsg:
    """Consensus round 2: coordinator orders the repair applied at ``apply_vt``."""

    proposal_id: Tuple[int, int]
    failed_site: int
    object_uids: Tuple[str, ...]
    apply_vt: VirtualTime
    clock: int
    failed_sites: Tuple[int, ...] = ()


# ---------------------------------------------------------------------------
# Transport envelopes (message-plane batching)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Envelope:
    """One network frame carrying several protocol messages to one peer.

    The batching layer (:class:`repro.wire.batch.Outbox`) coalesces every
    message a site emits to the same destination within one protocol turn —
    a commit fan-out, a burst of view confirms, an eager write-confirm
    broadcast — into a single envelope, so the transport pays one frame
    (one latency sample, one wire header) for the whole burst.  Inner
    message order is the send order, and an envelope travels as one unit
    on the per-pair channel, so per-pair FIFO is preserved exactly.

    Envelopes never nest, and carry no ``clock`` of their own: receivers
    unpack and dispatch each inner message (merging its Lamport clock)
    exactly as if it had arrived alone.
    """

    messages: Tuple[Any, ...]

    def __len__(self) -> int:
        return len(self.messages)

    @property
    def txn_vt(self):
        """The leading inner message's transaction VT (or ``None``).

        An envelope is one frame, and frame-level telemetry (trace ids,
        head sampling, event attribution) keys off ``payload.txn_vt``.
        Delegating to the first inner message gives the frame the identity
        of the transaction that opened the batch — without it, every
        envelope would fall into the control-plane bucket (empty trace
        id, never sampled out), so a head sampler could not shed load on
        the batched message plane at all.  Not a dataclass field: the
        wire format is unchanged.
        """
        for msg in self.messages:
            vt = getattr(msg, "txn_vt", None)
            if vt is not None:
                return vt
        return None
