"""Association model objects: tracking membership in collaborations.

An association object's value is "a set of replica relationships that are
bundled together for some application purpose"; each relationship contains
the set of model objects that have joined, together with their sites
(paper section 2.1).  Associations are themselves model objects: they can
be replicated (so every participant sees membership), can have views
attached, and membership changes flow through the normal transactional
update machinery — "changes in membership in associations are signaled as
update notifications in exactly the same way as changes in values of data
objects" (section 2.6).

An :class:`Invitation` is the external token that publicizes the right to
make replicas (section 2.6): it names the inviting site and its
association object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.history import ValueHistory
from repro.core.messages import OpPayload
from repro.core.model import ModelObject
from repro.errors import ProtocolError, ReproError
from repro.vtime import VirtualTime

#: Association value: relationship id -> sorted tuple of (member uid, site).
AssocValue = Tuple[Tuple[str, Tuple[Tuple[str, int], ...]], ...]


def _to_mapping(value: AssocValue) -> Dict[str, Tuple[Tuple[str, int], ...]]:
    return {rel_id: members for rel_id, members in value}


def _from_mapping(mapping: Dict[str, Tuple[Tuple[str, int], ...]]) -> AssocValue:
    return tuple(sorted((rel_id, tuple(sorted(members))) for rel_id, members in mapping.items()))


@dataclass(frozen=True)
class Invitation:
    """An external token granting the right to replicate via an association."""

    inviter_site: int
    assoc_uid: str
    note: str = ""


class Association(ModelObject):
    """A model object whose value is a bundle of replica relationships."""

    kind = "association"

    def __init__(self, site: Any, name: str) -> None:
        super().__init__(site, name)
        self.history: ValueHistory = ValueHistory(())  # empty AssocValue

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def relationships(self) -> List[str]:
        """All relationship ids in this association (a transactional read)."""
        return sorted(_to_mapping(self._read_value()))

    def members(self, rel_id: str) -> List[Tuple[str, int]]:
        """The (uid, site) members of one relationship."""
        mapping = _to_mapping(self._read_value())
        return list(mapping.get(rel_id, ()))

    def _read_value(self) -> AssocValue:
        ctx = self.site.current_txn
        if ctx is not None:
            return ctx.read_scalar(self)
        return self.history.current().value

    # ------------------------------------------------------------------
    # Writing (inside a transaction)
    # ------------------------------------------------------------------

    def create_relationship(self, rel_id: str) -> None:
        """Create an (initially empty) replica relationship."""
        ctx = self.site.require_txn("create_relationship")
        ctx.write(self, OpPayload(kind="assoc", args=(rel_id, "create", "", -1)))

    def record_join(self, rel_id: str, member_uid: str, member_site: int) -> None:
        """Record that ``member_uid`` joined ``rel_id`` (used by the join protocol)."""
        ctx = self.site.require_txn("record_join")
        ctx.write(self, OpPayload(kind="assoc", args=(rel_id, "join", member_uid, member_site)))

    def record_leave(self, rel_id: str, member_uid: str) -> None:
        """Record that ``member_uid`` left ``rel_id``."""
        ctx = self.site.require_txn("record_leave")
        ctx.write(self, OpPayload(kind="assoc", args=(rel_id, "leave", member_uid, -1)))

    def make_invitation(self, note: str = "") -> Invitation:
        """Publicize the right to replicate through this association."""
        return Invitation(inviter_site=self.site.site_id, assoc_uid=self.uid, note=note)

    # ------------------------------------------------------------------
    # Apply engine (shared local/remote semantics)
    # ------------------------------------------------------------------

    def apply_assoc(self, vt: VirtualTime, args: Tuple[Any, ...], committed: bool) -> AssocValue:
        rel_id, action, member_uid, member_site = args
        mapping = _to_mapping(self.history.current().value)
        if action == "create":
            mapping.setdefault(rel_id, ())
        elif action == "join":
            members = dict(mapping.get(rel_id, ()))
            members[member_uid] = member_site
            mapping[rel_id] = tuple(sorted(members.items()))
        elif action == "leave":
            members = dict(mapping.get(rel_id, ()))
            members.pop(member_uid, None)
            mapping[rel_id] = tuple(sorted(members.items()))
        else:
            raise ProtocolError(f"unknown association action {action!r}")
        new_value = _from_mapping(mapping)
        if self.history.entry_at(vt) is not None:
            self.history.set_value_at(vt, new_value)
        else:
            self.history.insert(vt, new_value, committed=committed)
        return new_value

    def undo_assoc(self, vt: VirtualTime) -> None:
        self.history.purge(vt)

    def commit_assoc(self, vt: VirtualTime) -> None:
        self.history.commit(vt)

    # ------------------------------------------------------------------
    # Snapshot interface
    # ------------------------------------------------------------------

    def value_at(self, vt: VirtualTime, committed_only: bool = False) -> AssocValue:
        if committed_only:
            return self.history.committed_read_at(vt).value
        return self.history.read_at(vt).value

    def current_value_vt(self) -> VirtualTime:
        return self.history.current().vt
