"""Authorization monitors: restricting access to sensitive objects.

The paper's framework lets users "code authorization monitors to restrict
access to sensitive objects" (section 1).  A monitor is attached to a model
object with :meth:`~repro.core.model.ModelObject.set_authorization`; the
transaction context consults it on every read and write, and the join
protocol consults :meth:`can_join` before revealing replica relationships.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional


class AuthorizationMonitor:
    """Base monitor: permits everything.  Subclass and override as needed."""

    def can_read(self, principal: str, obj: Any) -> bool:
        return True

    def can_write(self, principal: str, obj: Any) -> bool:
        return True

    def can_join(self, principal: str, obj: Any) -> bool:
        return True


class AllowListMonitor(AuthorizationMonitor):
    """Grants access only to an explicit set of principals.

    ``writers`` defaults to ``readers``; ``joiners`` defaults to ``writers``.
    """

    def __init__(
        self,
        readers: Iterable[str],
        writers: Optional[Iterable[str]] = None,
        joiners: Optional[Iterable[str]] = None,
    ) -> None:
        self.readers = set(readers)
        self.writers = set(writers) if writers is not None else set(self.readers)
        self.joiners = set(joiners) if joiners is not None else set(self.writers)

    def can_read(self, principal: str, obj: Any) -> bool:
        return principal in self.readers

    def can_write(self, principal: str, obj: Any) -> bool:
        return principal in self.writers

    def can_join(self, principal: str, obj: Any) -> bool:
        return principal in self.joiners


class ReadOnlyMonitor(AuthorizationMonitor):
    """Everyone may read; only the owner may write or join."""

    def __init__(self, owner: str) -> None:
        self.owner = owner

    def can_write(self, principal: str, obj: Any) -> bool:
        return principal == self.owner

    def can_join(self, principal: str, obj: Any) -> bool:
        return principal == self.owner


class PredicateMonitor(AuthorizationMonitor):
    """Delegates each decision to user-supplied callables."""

    def __init__(
        self,
        read: Optional[Callable[[str, Any], bool]] = None,
        write: Optional[Callable[[str, Any], bool]] = None,
        join: Optional[Callable[[str, Any], bool]] = None,
    ) -> None:
        self._read = read
        self._write = write
        self._join = join

    def can_read(self, principal: str, obj: Any) -> bool:
        return self._read(principal, obj) if self._read else True

    def can_write(self, principal: str, obj: Any) -> bool:
        return self._write(principal, obj) if self._write else True

    def can_join(self, principal: str, obj: Any) -> bool:
        return self._join(principal, obj) if self._join else True
