"""Scalar model objects: integers, reals, and strings (paper section 2.1).

Scalars hold a single Python value in a VT-sorted
:class:`~repro.core.history.ValueHistory`.  ``get``/``set`` inside a
transaction record read times and register writes for propagation; ``get``
outside a transaction returns the current (optimistic) value, which is what
controllers and ad-hoc readers see.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Type

from repro.core.history import ValueHistory
from repro.core.messages import OpPayload
from repro.core.model import ModelObject
from repro.errors import ReproError
from repro.vtime import VirtualTime


class ScalarObject(ModelObject):
    """Common machinery for single-valued model objects."""

    kind = "scalar"
    value_types: Tuple[Type, ...] = (object,)

    def __init__(
        self,
        site: "Any",
        name: str,
        initial: Any,
        parent: Optional[ModelObject] = None,
        embed_vt: Optional[VirtualTime] = None,
        key: Any = None,
    ) -> None:
        super().__init__(site, name, parent=parent, embed_vt=embed_vt, key=key)
        self._validate(initial)
        self.history: ValueHistory = ValueHistory(initial)

    def _validate(self, value: Any) -> None:
        if not isinstance(value, self.value_types):
            allowed = "/".join(t.__name__ for t in self.value_types)
            raise TypeError(f"{type(self).__name__} holds {allowed}, got {type(value).__name__}")

    # ------------------------------------------------------------------
    # User-facing reads and writes
    # ------------------------------------------------------------------

    def get(self) -> Any:
        """Read the value.

        Inside a transaction this records the read time (for the RL guess)
        and any RC dependency on an uncommitted writer; outside it returns
        the current optimistic value.
        """
        ctx = self.site.current_txn
        if ctx is not None:
            return ctx.read_scalar(self)
        return self.history.current().value

    def set(self, value: Any) -> None:
        """Write the value; must be called inside a transaction."""
        self._validate(value)
        ctx = self.site.require_txn("set")
        ctx.write(self, OpPayload(kind="set", args=(value,)))

    def committed_value(self) -> Any:
        """The latest committed value (what a pessimistic view would show)."""
        return self.history.committed_current().value

    # ------------------------------------------------------------------
    # Snapshot interface
    # ------------------------------------------------------------------

    def value_at(self, vt: VirtualTime, committed_only: bool = False) -> Any:
        if committed_only:
            return self.history.committed_read_at(vt).value
        return self.history.read_at(vt).value

    def current_value_vt(self) -> VirtualTime:
        return self.history.current().vt


class DInt(ScalarObject):
    """A replicated integer model object."""

    kind = "int"
    value_types = (int,)

    def _validate(self, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"DInt holds int, got {type(value).__name__}")

    def add(self, delta: int) -> int:
        """Read-modify-write convenience: ``self = self + delta``."""
        new = self.get() + delta
        self.set(new)
        return new


class DFloat(ScalarObject):
    """A replicated real-number model object."""

    kind = "float"
    value_types = (int, float)

    def set(self, value: Any) -> None:
        super().set(float(value))

    def add(self, delta: float) -> float:
        new = float(self.get()) + delta
        self.set(new)
        return new


class DString(ScalarObject):
    """A replicated string model object."""

    kind = "string"
    value_types = (str,)

    def append(self, suffix: str) -> str:
        """Read-modify-write convenience: ``self = self + suffix``."""
        new = self.get() + suffix
        self.set(new)
        return new


#: Registry used by composite child construction and remote apply.
SCALAR_KINDS = {"int": DInt, "float": DFloat, "string": DString}


def scalar_class_for(kind: str) -> Type[ScalarObject]:
    try:
        return SCALAR_KINDS[kind]
    except KeyError:
        raise ReproError(f"unknown scalar kind {kind!r}")
