"""Adaptive optimism suppression (paper section 5.2.2's suggestion).

"This suggests that it may be desirable to suppress optimism when conflict
rates exceed a certain threshold."

:class:`AdaptiveOptimismController` implements that idea at one site.  It
tracks the conflict (retry) rate over a sliding window of recent
transactions.  While the rate is below the threshold, transactions are
submitted optimistically as usual (instant local echo).  When the rate
crosses the threshold, the controller *suppresses optimism*: it serializes
this site's transactions, holding each new transaction until the previous
one has resolved (committed or finally aborted), which collapses the
optimistic conflict window at the cost of responsiveness.  Hysteresis
(exit at half the entry threshold) prevents flapping.

This is a faithful, minimal realization of the paper's proposal: optimism
becomes a mode, degraded under contention and restored when conflicts
subside.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.core.site import SiteRuntime
from repro.core.transaction import TransactionOutcome


class AdaptiveOptimismController:
    """Per-site transaction gate that suppresses optimism under contention.

    Parameters
    ----------
    site:
        The site whose transactions this controller submits.
    window:
        Number of recent transactions over which the conflict rate is
        estimated.
    enter_threshold:
        Conflict rate (extra attempts / attempts) above which suppression
        engages.
    exit_threshold:
        Rate below which suppression disengages (default: half of enter).
    poll_ms:
        How often the pump re-checks a pending transaction's resolution
        while suppressed.
    """

    def __init__(
        self,
        site: SiteRuntime,
        window: int = 20,
        enter_threshold: float = 0.2,
        exit_threshold: Optional[float] = None,
        poll_ms: float = 5.0,
    ) -> None:
        if not 0.0 < enter_threshold <= 1.0:
            raise ValueError("enter_threshold must be in (0, 1]")
        self.site = site
        self.window = window
        self.enter_threshold = enter_threshold
        self.exit_threshold = (
            exit_threshold if exit_threshold is not None else enter_threshold / 2.0
        )
        self.poll_ms = poll_ms
        self.suppressed = False
        #: (attempts, committed) samples of recent transactions.
        self._samples: Deque[Tuple[int, bool]] = deque(maxlen=window)
        self._queue: Deque[Tuple[Callable[[], Any], TransactionOutcome]] = deque()
        self._inflight: Optional[TransactionOutcome] = None
        self._pumping = False
        # Metrics.
        self.suppression_entries = 0
        self.submitted = 0
        self.queued_peak = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def transact(self, fn: Callable[[], Any]) -> TransactionOutcome:
        """Submit a transaction; optimistically, or queued while suppressed.

        Always returns a live :class:`TransactionOutcome` immediately (the
        transaction may execute later if suppression queued it).
        """
        self.submitted += 1
        if not self.suppressed and self._inflight is None and not self._queue:
            return self._launch(fn, None)
        if not self.suppressed:
            # Not suppressed: run immediately even if others are in flight.
            return self._launch(fn, None)
        outcome = TransactionOutcome(start_time_ms=self.site.transport.now())
        self._queue.append((fn, outcome))
        self.queued_peak = max(self.queued_peak, len(self._queue))
        self._pump()
        return outcome

    def conflict_rate(self) -> float:
        """Extra attempts per attempt over the sample window."""
        attempts = sum(a for a, _ in self._samples)
        txns = len(self._samples)
        if attempts == 0 or txns == 0:
            return 0.0
        return (attempts - txns) / attempts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _launch(
        self, fn: Callable[[], Any], outcome: Optional[TransactionOutcome]
    ) -> TransactionOutcome:
        from repro.core.transaction import FunctionTransaction

        result = self.site.engine.run(FunctionTransaction(fn), outcome)
        self._track(result)
        return result

    def _track(self, outcome: TransactionOutcome) -> None:
        self._inflight = outcome

        def settle_check() -> None:
            if outcome.committed or outcome.aborted_no_retry:
                self._samples.append((outcome.attempts, outcome.committed))
                if self._inflight is outcome:
                    self._inflight = None
                self._update_mode()
                self._pump()
            else:
                self.site.defer(settle_check, delay_ms=self.poll_ms)

        self.site.defer(settle_check, delay_ms=self.poll_ms)

    def _update_mode(self) -> None:
        rate = self.conflict_rate()
        if not self.suppressed and rate > self.enter_threshold:
            self.suppressed = True
            self.suppression_entries += 1
        elif self.suppressed and rate < self.exit_threshold:
            self.suppressed = False

    def _pump(self) -> None:
        """Launch the next queued transaction once the previous resolved."""
        if self._pumping:
            return
        self._pumping = True
        try:
            if self._inflight is None and self._queue:
                fn, outcome = self._queue.popleft()
                self._launch(fn, outcome)
        finally:
            self._pumping = False
