"""The DECAF framework: the paper's primary contribution.

Public surface (re-exported at :mod:`repro`):

* :class:`~repro.core.session.Session` — wires sites to a transport.
* :class:`~repro.core.site.SiteRuntime` — one collaborating application.
* Model objects — :class:`~repro.core.scalars.DInt`,
  :class:`~repro.core.scalars.DFloat`, :class:`~repro.core.scalars.DString`,
  :class:`~repro.core.composites.DList`, :class:`~repro.core.composites.DMap`,
  :class:`~repro.core.association.Association`.
* :class:`~repro.core.transaction.Transaction` — atomic multi-object update.
* :class:`~repro.core.views.View` / ``OptimisticView`` / ``PessimisticView``.
"""

from repro.core.session import Session
from repro.core.site import SiteRuntime
from repro.core.scalars import DInt, DFloat, DString
from repro.core.composites import DList, DMap
from repro.core.association import Association, Invitation
from repro.core.transaction import Transaction, TransactionOutcome
from repro.core.views import View, OptimisticView, PessimisticView, Snapshot
from repro.core.auth import AuthorizationMonitor

__all__ = [
    "Session",
    "SiteRuntime",
    "DInt",
    "DFloat",
    "DString",
    "DList",
    "DMap",
    "Association",
    "Invitation",
    "Transaction",
    "TransactionOutcome",
    "View",
    "OptimisticView",
    "PessimisticView",
    "Snapshot",
    "AuthorizationMonitor",
]
