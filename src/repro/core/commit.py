"""The transaction engine: optimistic execution, guess checking, fast commit.

This module implements the concurrency-control algorithm of paper
section 3:

1. A transaction executes immediately at its originating site at a fresh
   virtual time, recording read times and applying writes optimistically.
2. The origin batches WRITEs (to every replica site of each touched
   propagation root) and CONFIRM-READ checks (to primary sites) into one
   ``TxnPropagateMsg`` per destination.
3. Primary copies validate RL guesses (no write in the open interval
   between read time and transaction time — and no graph change in the
   graph interval) and NC guesses (no other transaction's write-free
   reservation contains the write VT), reserving confirmed intervals, and
   confirm or deny to the origin only.
4. The origin waits for all confirmations plus its RC dependencies, then
   broadcasts a summary COMMIT; any denial triggers a summary ABORT,
   rollback at every site, and automatic re-execution at the origin.
5. The *delegated commit* optimization: with a single remote primary site
   and no RC guesses, the origin delegates the decision, saving one hop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.core import propagation
from repro.core.guesses import DependencyIndex
from repro.core.messages import (
    AbortMsg,
    CommitMsg,
    ConfirmMsg,
    DelegateGrant,
    ReadCheck,
    TxnPropagateMsg,
    WriteOp,
)
from repro.core.transaction import (
    Transaction,
    TransactionContext,
    TransactionOutcome,
    TxnRecord,
    TxnState,
)
from repro.errors import (
    ConcurrencyConflict,
    InvalidPath,
    ProtocolError,
    RetryLimitExceeded,
    TransactionAborted,
)
from repro.obs.metrics import COUNT_BUCKETS, counter_property
from repro.vtime import VirtualTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import ModelObject
    from repro.core.site import SiteRuntime


COMMITTED = "committed"
ABORTED = "aborted"


class PendingPropagate:
    """A propagate message blocked on a not-yet-arrived structural update."""

    def __init__(self, src: int, msg: TxnPropagateMsg, remaining: List[WriteOp]) -> None:
        self.src = src
        self.msg = msg
        self.remaining = remaining


class TransactionEngine:
    """Per-site driver of the optimistic concurrency-control protocol."""

    # Protocol counters live in the site's MetricsRegistry; these properties
    # keep the historical attribute API (``engine.commits += 1``, bench
    # harness reads) while making every counter enumerable and exportable.
    commits = counter_property("txn.commits")
    aborts_conflict = counter_property("txn.aborts_conflict")
    aborts_user = counter_property("txn.aborts_user")
    retries = counter_property("txn.retries")

    def __init__(
        self,
        site: "SiteRuntime",
        max_retries: int = 50,
        delegation_enabled: bool = True,
        retry_backoff_ms: float = 5.0,
        eager_view_confirms: bool = False,
    ) -> None:
        self.site = site
        self.max_retries = max_retries
        self.delegation_enabled = delegation_enabled
        #: Section 5.3 "faster commit of snapshots": primaries broadcast
        #: confirmed write intervals so remote views resolve RL guesses
        #: without their own CONFIRM-READ round trip.
        self.eager_view_confirms = eager_view_confirms
        #: Base delay before automatic re-execution.  Retrying immediately
        #: (in the same simulated instant) livelocks under contention: the
        #: in-flight state that caused the conflict has not changed yet.
        #: A short, linearly growing delay lets confirmations and commits
        #: arrive before the retry re-reads.
        self.retry_backoff_ms = retry_backoff_ms
        #: Origin-side records for transactions this site initiated.
        self.records: Dict[VirtualTime, TxnRecord] = {}
        #: Site-wide transaction status log ("the site retains the fact
        #: that the transaction has committed/aborted" — section 3.1).
        self.status: Dict[VirtualTime, str] = {}
        #: Ops applied locally per transaction (for rollback/commit).
        self.applied: Dict[VirtualTime, List[Tuple["ModelObject", Any]]] = {}
        #: Objects on which this site (as primary) reserved intervals per txn.
        self.reserved: Dict[VirtualTime, List["ModelObject"]] = {}
        #: RC / snapshot dependency index.
        self.deps = DependencyIndex()
        #: Deliberate protocol breakages for conformance-canary tests ONLY
        #: (see repro.explore): "skip_rl_check" disables the RL interval
        #: check, "skip_nc_check" disables the NC reservation checks,
        #: "views_pre_commit" makes pessimistic views deliver uncommitted
        #: state.  Empty in production; the explorer's oracles must detect
        #: each mutant, proving they are not vacuous.
        self.mutations: Set[str] = set()
        #: Propagate messages blocked on missing structural predecessors.
        self.pending_propagates: List[PendingPropagate] = []

    # ==================================================================
    # Origin side: running a transaction
    # ==================================================================

    def run(
        self,
        txn: Transaction,
        outcome: Optional[TransactionOutcome] = None,
        post_execute=None,
    ) -> TransactionOutcome:
        """Execute ``txn`` optimistically and drive it to commit or abort.

        Returns the (live) :class:`TransactionOutcome`; with an asynchronous
        transport the commit typically happens later — poll ``committed`` or
        register ``on_commit``.

        The whole run is one outbox turn: with batching enabled, the
        propagation fan-out (and any eagerly-resolved replies) leaves as
        one envelope per destination.
        """
        with self.site.outbox.auto_turn():
            return self._run(txn, outcome, post_execute)

    def _run(
        self,
        txn: Transaction,
        outcome: Optional[TransactionOutcome],
        post_execute,
    ) -> TransactionOutcome:
        if outcome is None:
            outcome = TransactionOutcome(start_time_ms=self.site.transport.now())
        outcome.attempts += 1
        vt = self.site.clock.tick()
        outcome.vt = vt
        ctx = TransactionContext(self.site, vt)
        record = TxnRecord(vt=vt, txn=txn, ctx=ctx, outcome=outcome)
        record.post_execute = post_execute
        self.records[vt] = record
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "txn_submitted",
                site=self.site.site_id,
                time_ms=self.site.transport.now(),
                txn_vt=vt,
                attempt=outcome.attempts,
            )

        self.site.views.begin_batch()
        try:
            with self.site.install_txn(ctx):
                txn.execute()
        except Exception as exc:  # noqa: BLE001 - the paper catches everything
            # "Any uncaught exceptions are turned into transaction aborts,
            # so faulty applications will not be able to create inconsistent
            # states" (section 2.4).  No retry; handleAbort is called.
            self._rollback_local(record)
            self.status[vt] = ABORTED
            record.state = TxnState.ABORTED
            outcome.aborted_no_retry = True
            outcome.abort_reason = f"{type(exc).__name__}: {exc}"
            self.aborts_user += 1
            if bus.active:
                bus.emit(
                    "aborted",
                    site=self.site.site_id,
                    time_ms=self.site.transport.now(),
                    txn_vt=vt,
                    reason=outcome.abort_reason,
                    kind="user",
                )
            self.site.views.end_batch()
            self.deps.resolve_abort(vt)
            txn.handle_abort(exc)
            return outcome
        outcome.local_apply_time_ms = self.site.transport.now()
        self.site.views.end_batch()

        if post_execute is not None:
            # Protocol extensions (the join protocol) may mark the record
            # pending_join and schedule remote calls before fan-out.
            post_execute(record)
            if record.state == TxnState.ABORTED:
                return outcome
        self._initiate_protocol(record)
        return outcome

    def _initiate_protocol(self, record: TxnRecord) -> None:
        """Local primary checks, message fan-out, and commit bookkeeping."""
        vt = record.vt
        origin = self.site.site_id
        bus = self.site.bus
        if bus.active:
            # Every write makes an RL guess (nothing landed in the read
            # interval) and an NC guess (no reservation contains our VT);
            # read-only accesses make RL guesses.  RC guesses are emitted
            # at read time by TransactionContext.
            now = self.site.transport.now()
            for access in record.ctx.writes:
                uid = access.target.uid
                bus.emit("guess_made", site=origin, time_ms=now, txn_vt=vt,
                         guess="RL", obj=uid)
                bus.emit("guess_made", site=origin, time_ms=now, txn_vt=vt,
                         guess="NC", obj=uid)
            for access in record.ctx.read_only_accesses():
                bus.emit("guess_made", site=origin, time_ms=now, txn_vt=vt,
                         guess="RL", obj=access.target.uid)

        # RC guesses: reads of uncommitted values.
        for dep_vt in record.ctx.rc_deps:
            state = self.status.get(dep_vt)
            if state == COMMITTED:
                continue
            if state == ABORTED:
                self._abort_origin(record, f"RC dependency {dep_vt} already aborted")
                return
            record.pending_rc.add(dep_vt)

        # Local primary checks (objects whose primary copy lives here).
        ok, reason, against = self._check_local_primaries(record)
        if bus.active:
            bus.emit(
                "validated",
                site=origin,
                time_ms=self.site.transport.now(),
                txn_vt=vt,
                ok=ok,
                reason=reason,
                scope="local",
                against=against,
            )
        if not ok:
            self._abort_origin(record, reason)
            return

        batches, primary_sites = propagation.build_batches(record, self.site)
        # Union (not assign): protocol extensions (join/leave) may already
        # have recorded involved sites and pending confirmations.
        record.involved_sites |= set(batches)
        remote_primaries = {s for s in primary_sites if s != origin}
        record.pending_confirm_sites |= remote_primaries

        # A guess can only be validated by a live primary.  If a required
        # primary is already known to have failed (its graph repair has not
        # committed yet), abort now and re-run once repair installs a live
        # primary — the same treatment section 3.4 gives transactions that
        # were already awaiting the dead site's confirmation.
        dead_primaries = remote_primaries & self.site.failures.failed
        if dead_primaries:
            txn, outcome, post = record.txn, record.outcome, record.post_execute
            self._abort_origin(
                record,
                f"primary site(s) {sorted(dead_primaries)} failed; awaiting graph repair",
                retry=False,
            )
            outcome.aborted_no_retry = False
            outcome.abort_reason = ""
            self.site.failures.deferred_retries.append((txn, outcome, post))
            return

        delegate_to: Optional[int] = None
        if (
            self.delegation_enabled
            and len(record.pending_confirm_sites) == 1
            and not record.pending_rc
            and not record.pending_join
        ):
            # Delegated commit (section 3.1): the single remote primary
            # decides and broadcasts the summary message itself.
            delegate_to = next(iter(record.pending_confirm_sites))

        for dst, (writes, checks) in sorted(batches.items()):
            grant = None
            if delegate_to == dst:
                all_sites = tuple(sorted((record.involved_sites | {origin}) - {dst}))
                grant = DelegateGrant(all_sites=all_sites)
            if bus.active:
                bus.emit(
                    "fanout_sent",
                    site=origin,
                    time_ms=self.site.transport.now(),
                    txn_vt=vt,
                    dst=dst,
                    writes=len(writes),
                    checks=len(checks),
                    delegated=grant is not None,
                )
            self.site.send(
                dst,
                TxnPropagateMsg(
                    txn_vt=vt,
                    origin=origin,
                    writes=tuple(writes),
                    read_checks=tuple(checks),
                    clock=self.site.clock.counter,
                    delegate=grant,
                ),
            )

        # Register RC waits after fan-out so resolution order is stable.
        for dep_vt in list(record.pending_rc):
            self.deps.wait_for(
                dep_vt,
                on_commit=lambda d=dep_vt, r=record: self._rc_resolved(r, d),
                on_abort=lambda d=dep_vt, r=record: self._rc_aborted(r, d),
            )

        if delegate_to is not None:
            record.state = TxnState.DELEGATED
            return
        record.state = TxnState.AWAITING
        if record.all_confirmed():
            self._commit_origin(record)

    # ------------------------------------------------------------------
    # Local primary checks at the originating site
    # ------------------------------------------------------------------

    def _check_local_primaries(self, record: TxnRecord) -> Tuple[bool, str, Tuple[Any, ...]]:
        origin = self.site.site_id
        for access in record.ctx.writes:
            root = access.target.propagation_root()
            if self.site.primary_site_of(root.graph()) != origin:
                continue
            ok, reason, against = self._check_and_reserve(
                access.target, root, record.vt, access.read_vt, access.graph_vt, is_write=True
            )
            if not ok:
                return False, reason, against
        for access in record.ctx.read_only_accesses():
            root = access.target.propagation_root()
            if self.site.primary_site_of(root.graph()) != origin:
                continue
            ok, reason, against = self._check_and_reserve(
                access.target, root, record.vt, access.read_vt, access.graph_vt, is_write=False
            )
            if not ok:
                return False, reason, against
        return True, "", ()

    def _check_and_reserve(
        self,
        target: "ModelObject",
        root: "ModelObject",
        vt: VirtualTime,
        read_vt: VirtualTime,
        graph_vt: VirtualTime,
        is_write: bool,
    ) -> Tuple[bool, str, Tuple[Any, ...]]:
        """RL + NC checks at the primary, reserving confirmed intervals.

        For writes the entry at ``vt`` itself (this transaction's own write,
        already applied) is not a conflict; any *other* entry in the open
        interval denies the RL guess.

        Returns ``(ok, reason, against)``; on a denial ``against`` is the
        guessed-against VT set — the virtual times of the conflicting
        writes/reservations that refuted the guess — which the ``validated``
        event carries so the causal analyzer can build guess-dependency
        edges without parsing reason strings.
        """
        # RL guess on the value (or structure) history.
        conflicting = [
            e for e in target.history.entries_in_open_interval(read_vt, vt)
        ]
        if conflicting and "skip_rl_check" not in self.mutations:
            return (
                False,
                f"RL denied on {target.uid}: write at {conflicting[0].vt} in ({read_vt}, {vt})",
                tuple(e.vt for e in conflicting),
            )
        # RL guess on the replication graph ("a primary copy always confirms
        # the RL guess that the graph hasn't changed" — section 3.3).
        graph_conflicts = root.graph_history().entries_in_open_interval(graph_vt, vt)
        if graph_conflicts:
            return (
                False,
                f"graph RL denied on {root.uid}: change at {graph_conflicts[0].vt}",
                tuple(e.vt for e in graph_conflicts),
            )
        if is_write and "skip_nc_check" not in self.mutations:
            # NC guess: no other transaction reserved a write-free region
            # containing our VT.
            blocking = target.value_reservations.blocking_reservation(vt, exclude_owner=vt)
            if blocking is not None:
                return (
                    False,
                    f"NC denied on {target.uid}: reserved by {blocking.owner}",
                    (blocking.owner,),
                )
            # Pessimistic-snapshot reservations protect whole subtrees:
            # consult the target and every ancestor (section 4.2).
            from repro.core.views import blocking_subtree_reservation

            snap_block = blocking_subtree_reservation(target, vt)
            if snap_block is not None:
                return (
                    False,
                    f"NC denied on {target.uid}: snapshot reservation {snap_block.owner}",
                    (snap_block.owner,),
                )
            graph_blocking = root.graph_reservations.blocking_reservation(vt, exclude_owner=vt)
            # A value write does not change the graph, so graph reservations
            # do not block it; only graph *updates* check graph NC.
            if target is root and self._is_graph_write(target, vt):
                if graph_blocking is not None:
                    return False, f"graph NC denied on {root.uid}", (graph_blocking.owner,)
        target.value_reservations.reserve(read_vt, vt, owner=vt)
        root.graph_reservations.reserve(graph_vt, vt, owner=vt)
        self.reserved.setdefault(vt, []).append(target)
        if root is not target:
            self.reserved.setdefault(vt, []).append(root)
        if is_write and self.eager_view_confirms and target is root:
            self._broadcast_write_confirmed(root, read_vt, vt)
        return True, "", ()

    def _broadcast_write_confirmed(
        self, root: "ModelObject", read_vt: VirtualTime, vt: VirtualTime
    ) -> None:
        """Eagerly distribute the confirmed write-free interval (section 5.3).

        Only root scalars are broadcast: a composite check covers a whole
        subtree, which a single node's confirmation cannot vouch for.
        """
        from repro.core.messages import WriteConfirmedMsg

        if root.kind not in ("int", "float", "string", "association"):
            return
        if not read_vt < vt:
            return  # blind write: nothing new confirmed
        graph = root.graph()
        me = self.site.site_id
        for dst in graph.sites():
            if dst == me:
                continue
            dst_uid = graph.uid_at_site(dst)
            if dst_uid is None:
                continue
            self.site.send(
                dst,
                WriteConfirmedMsg(
                    object_uid=dst_uid,
                    txn_vt=vt,
                    lo_vt=read_vt,
                    hi_vt=vt,
                    clock=self.site.clock.counter,
                ),
            )

    def _is_graph_write(self, target: "ModelObject", vt: VirtualTime) -> bool:
        entry = target.graph_history().entry_at(vt)
        return entry is not None

    # ------------------------------------------------------------------
    # Origin-side resolution
    # ------------------------------------------------------------------

    def _rc_resolved(self, record: TxnRecord, dep_vt: VirtualTime) -> None:
        record.pending_rc.discard(dep_vt)
        if record.state == TxnState.AWAITING and record.all_confirmed():
            self._commit_origin(record)

    def _rc_aborted(self, record: TxnRecord, dep_vt: VirtualTime) -> None:
        if record.state in (TxnState.COMMITTED, TxnState.ABORTED):
            return
        self._abort_origin(record, f"RC dependency {dep_vt} aborted")

    def _commit_origin(self, record: TxnRecord) -> None:
        vt = record.vt
        if self.status.get(vt) == ABORTED or record.state in (TxnState.COMMITTED, TxnState.ABORTED):
            return
        record.state = TxnState.COMMITTED
        for dst in sorted(record.involved_sites):
            self.site.send(dst, CommitMsg(txn_vt=vt, clock=self.site.clock.counter))
        self._apply_commit_locally(vt)
        self.record_commit_outcome(record.outcome)

    def record_commit_outcome(self, outcome: TransactionOutcome) -> None:
        """Origin-side commit bookkeeping shared by the direct, delegated,
        and failure-resolution commit paths: outcome flags, the commits
        counter, latency/attempt histograms, and commit callbacks."""
        outcome.committed = True
        outcome.commit_time_ms = self.site.transport.now()
        self.commits += 1
        metrics = self.site.metrics
        latency = outcome.commit_latency_ms
        if latency is not None:
            metrics.observe("txn.commit_latency_ms", latency)
        metrics.observe("txn.attempts", float(outcome.attempts), COUNT_BUCKETS)
        outcome._fire_commit()

    def _abort_origin(self, record: TxnRecord, reason: str, retry: bool = True) -> None:
        """Abort an origin transaction (conflict path) and re-execute it."""
        vt = record.vt
        if record.state in (TxnState.COMMITTED, TxnState.ABORTED):
            return
        record.state = TxnState.ABORTED
        record.denied_reason = reason
        for dst in sorted(record.involved_sites):
            self.site.send(dst, AbortMsg(txn_vt=vt, clock=self.site.clock.counter, reason=reason))
        self.site.views.begin_batch()
        self._apply_abort_locally(vt, reason=reason)
        self.site.views.end_batch()
        self.aborts_conflict += 1
        outcome = record.outcome
        self.records.pop(vt, None)
        if not retry:
            outcome.aborted_no_retry = True
            outcome.abort_reason = reason
            return
        if outcome.attempts > self.max_retries:
            outcome.aborted_no_retry = True
            outcome.abort_reason = f"retry limit exceeded after {outcome.attempts} attempts: {reason}"
            self.records.pop(vt, None)
            return
        # "Transactions aborted due to concurrency control conflicts are
        # automatically reexecuted at the originating site" (section 2.4).
        self.retries += 1
        # Quadratic backoff, capped: sustained contention needs delays that
        # grow past the network round trip or retry chains livelock.
        delay = min(
            self.retry_backoff_ms * outcome.attempts * outcome.attempts,
            self.retry_backoff_ms * 200,
        )
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "retry_scheduled",
                site=self.site.site_id,
                time_ms=self.site.transport.now(),
                txn_vt=vt,
                attempt=outcome.attempts,
                delay_ms=delay,
            )
        self.site.defer(
            lambda: self.run(record.txn, outcome, post_execute=record.post_execute),
            delay_ms=delay,
        )

    # ==================================================================
    # Remote side: message handlers
    # ==================================================================

    def on_propagate(self, src: int, msg: TxnPropagateMsg) -> None:
        vt = msg.txn_vt
        state = self.status.get(vt)
        if state == ABORTED:
            # "If any future update messages arrive, the updates are
            # ignored" (section 3.1).
            return
        committed = state == COMMITTED
        self.site.views.begin_batch()
        try:
            remaining = self._apply_writes(msg.writes, vt, committed)
        finally:
            self.site.views.end_batch()
        if remaining:
            self.pending_propagates.append(PendingPropagate(src, msg, remaining))
            bus = self.site.bus
            if bus.active:
                bus.emit(
                    "propagate_blocked",
                    site=self.site.site_id,
                    time_ms=self.site.transport.now(),
                    txn_vt=vt,
                    remaining=len(remaining),
                )
            return
        self._finish_propagate(msg)

    def _apply_writes(
        self, writes: Tuple[WriteOp, ...], vt: VirtualTime, committed: bool
    ) -> List[WriteOp]:
        """Apply ops in order; returns the suffix blocked on missing paths."""
        pending: List[WriteOp] = []
        for i, write in enumerate(writes):
            if pending:
                # Preserve op order within the transaction once blocked.
                pending.append(write)
                continue
            root = self.site.objects.get(write.object_uid)
            if root is None:
                pending.append(write)
                continue
            try:
                target = propagation.resolve_path(root, write.path)
                propagation.apply_op(target, write.op, vt, committed)
            except InvalidPath:
                pending.append(write)
        return pending

    def retry_pending_propagates(self) -> None:
        """Re-attempt blocked propagates after new structure has arrived."""
        if not self.pending_propagates:
            return
        progressed = True
        while progressed:
            progressed = False
            for pending in list(self.pending_propagates):
                vt = pending.msg.txn_vt
                state = self.status.get(vt)
                if state == ABORTED:
                    self.pending_propagates.remove(pending)
                    continue
                self.site.views.begin_batch()
                try:
                    remaining = self._apply_writes(
                        tuple(pending.remaining), vt, state == COMMITTED
                    )
                finally:
                    self.site.views.end_batch()
                if len(remaining) < len(pending.remaining):
                    progressed = True
                pending.remaining = remaining
                if not remaining:
                    self.pending_propagates.remove(pending)
                    self._finish_propagate(pending.msg)

    def _finish_propagate(self, msg: TxnPropagateMsg) -> None:
        """Run primary checks for a fully applied propagate and respond."""
        vt = msg.txn_vt
        ok, reason, against = self._run_remote_checks(msg)
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "validated",
                site=self.site.site_id,
                time_ms=self.site.transport.now(),
                txn_vt=vt,
                ok=ok,
                reason=reason,
                scope="delegate" if msg.delegate is not None else "primary",
                against=against,
            )
        if msg.delegate is not None:
            self._decide_as_delegate(msg, ok, reason)
            return
        if msg.force_confirm or self._any_checks_addressed_here(msg):
            self.site.send(
                msg.origin,
                ConfirmMsg(
                    txn_vt=vt, site=self.site.site_id, ok=ok,
                    clock=self.site.clock.counter, reason=reason,
                ),
            )

    def _any_checks_addressed_here(self, msg: TxnPropagateMsg) -> bool:
        if msg.read_checks:
            return True
        me = self.site.site_id
        for write in msg.writes:
            root = self.site.objects.get(write.object_uid)
            if root is not None and self.site.primary_site_of(root.graph()) == me:
                return True
        return False

    def _run_remote_checks(self, msg: TxnPropagateMsg) -> Tuple[bool, str, Tuple[Any, ...]]:
        """RL/NC validation for every op this site is primary for."""
        me = self.site.site_id
        vt = msg.txn_vt
        for write in msg.writes:
            root = self.site.objects.get(write.object_uid)
            if root is None:
                return False, f"unknown object {write.object_uid}", ()
            if not msg.force_confirm and self.site.primary_site_of(root.graph()) != me:
                continue
            try:
                target = propagation.resolve_path(root, write.path)
            except InvalidPath as exc:
                return False, str(exc), ()
            ok, reason, against = self._check_and_reserve(
                target, root, vt, write.read_vt, write.graph_vt, is_write=True
            )
            if not ok:
                return False, reason, against
        for check in msg.read_checks:
            root = self.site.objects.get(check.object_uid)
            if root is None:
                return False, f"unknown object {check.object_uid}", ()
            try:
                target = propagation.resolve_path(root, check.path)
            except InvalidPath as exc:
                return False, str(exc), ()
            ok, reason, against = self._check_and_reserve(
                target, root, vt, check.read_vt, check.graph_vt, is_write=False
            )
            if not ok:
                return False, reason, against
        return True, "", ()

    def _decide_as_delegate(self, msg: TxnPropagateMsg, ok: bool, reason: str) -> None:
        """Delegated commit: this site broadcasts the summary decision."""
        assert msg.delegate is not None
        vt = msg.txn_vt
        if ok:
            for dst in msg.delegate.all_sites:
                self.site.send(dst, CommitMsg(txn_vt=vt, clock=self.site.clock.counter))
            self._apply_commit_locally(vt)
        else:
            for dst in msg.delegate.all_sites:
                self.site.send(
                    dst, AbortMsg(txn_vt=vt, clock=self.site.clock.counter, reason=reason)
                )
            self.site.views.begin_batch()
            self._apply_abort_locally(vt, reason=reason)
            self.site.views.end_batch()

    # ------------------------------------------------------------------
    # Confirm / commit / abort handlers
    # ------------------------------------------------------------------

    def on_confirm(self, src: int, msg: ConfirmMsg) -> None:
        record = self.records.get(msg.txn_vt)
        if record is None or record.state not in (TxnState.AWAITING,):
            return
        if not msg.ok:
            self._abort_origin(record, f"denied by site {msg.site}: {msg.reason}")
            return
        record.pending_confirm_sites.discard(msg.site)
        if record.all_confirmed():
            self._commit_origin(record)

    def on_commit(self, src: int, msg: CommitMsg) -> None:
        vt = msg.txn_vt
        record = self.records.get(vt)
        if record is not None and record.state == TxnState.DELEGATED:
            # Our delegate committed the transaction for us.
            record.state = TxnState.COMMITTED
            self._apply_commit_locally(vt)
            self.record_commit_outcome(record.outcome)
            return
        self._apply_commit_locally(vt)

    def on_abort(self, src: int, msg: AbortMsg) -> None:
        vt = msg.txn_vt
        record = self.records.get(vt)
        if record is not None and record.state == TxnState.DELEGATED:
            record.state = TxnState.AWAITING  # reopen so _abort_origin can run
            record.involved_sites = set()  # delegate already told everyone
            self._abort_origin(record, f"delegate denied: {msg.reason}")
            return
        self.site.views.begin_batch()
        self._apply_abort_locally(vt, reason=msg.reason)
        self.site.views.end_batch()

    # ------------------------------------------------------------------
    # Site-local commit/abort application (shared origin/remote)
    # ------------------------------------------------------------------

    def _apply_commit_locally(self, vt: VirtualTime) -> None:
        if self.status.get(vt) == COMMITTED:
            return
        if self.status.get(vt) == ABORTED:
            raise ProtocolError(f"commit arrived for aborted transaction {vt}")
        self.status[vt] = COMMITTED
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "committed",
                site=self.site.site_id,
                time_ms=self.site.transport.now(),
                txn_vt=vt,
                ops=len(self.applied.get(vt, [])),
            )
        self.site.views.begin_batch()
        for obj, op in self.applied.get(vt, []):
            propagation.commit_op(obj, op, vt)
        self.site.views.end_batch()
        self.deps.resolve_commit(vt)
        self.site.views.on_txn_resolved(vt, committed=True)
        self._garbage_collect(vt)

    def _apply_abort_locally(self, vt: VirtualTime, reason: str = "") -> None:
        if self.status.get(vt) in (COMMITTED, ABORTED):
            return
        self.status[vt] = ABORTED
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "aborted",
                site=self.site.site_id,
                time_ms=self.site.transport.now(),
                txn_vt=vt,
                reason=reason,
                kind="conflict",
            )
        self._rollback_applied(vt)
        for obj in self.reserved.pop(vt, []):
            obj.value_reservations.release_owner(vt)
            obj.graph_reservations.release_owner(vt)
        self.deps.resolve_abort(vt)
        self.site.views.on_txn_resolved(vt, committed=False)

    def _rollback_applied(self, vt: VirtualTime) -> None:
        ops = self.applied.pop(vt, [])
        for obj, op in reversed(ops):
            propagation.undo_op(obj, op, vt)

    def _rollback_local(self, record: TxnRecord) -> None:
        """Rollback after a user exception during execute (nothing sent yet)."""
        self._rollback_applied(record.vt)
        for obj in self.reserved.pop(record.vt, []):
            obj.value_reservations.release_owner(record.vt)
            obj.graph_reservations.release_owner(record.vt)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def _garbage_collect(self, vt: VirtualTime) -> None:
        """Commit-driven history GC and reservation pruning (section 3).

        Committal alone does not make old versions or reservations
        collectable: a site with a stale Lamport clock may still submit a
        transaction whose VT lands *below* already committed state, and the
        primary must still be able to check its RL/NC guesses against that
        past.  The safe floor is the site's ``stability_bound`` — the
        minimum clock heard from every replica site — additionally capped
        by the local views' snapshot retention floor.
        """
        for obj, _op in self.applied.get(vt, []):
            try:
                floor = self.site.stability_bound(obj.replica_sites())
            except ProtocolError:
                continue
            view_floor = self.site.views.retention_floor(obj)
            if view_floor is not None and view_floor < floor:
                floor = view_floor
            try:
                obj.history.gc(floor)
            except ProtocolError:
                pass
            obj.value_reservations.prune_before(floor)
            obj.graph_reservations.prune_before(floor)
            obj.subtree_reservations.prune_before(floor)
        # Applied-op records for committed transactions are no longer
        # needed for rollback; keep the status entry, drop the op list.
        self.applied.pop(vt, None)
        self.reserved.pop(vt, None)
        record = self.records.get(vt)
        if record is not None and record.state in (TxnState.COMMITTED, TxnState.ABORTED):
            self.records.pop(vt, None)
