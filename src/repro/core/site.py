"""The per-site DECAF runtime.

A :class:`SiteRuntime` is one collaborating application instance: it owns
the site's Lamport clock, the registry of local model objects, the
transaction engine, the view manager, the collaboration-establishment
manager, and the failure manager, and it routes transport messages to
them.  Application code interacts with a site through:

* object factories (``create_int`` … ``create_association``),
* ``run(txn)`` / ``transact(fn)`` for atomic updates,
* ``join`` / ``leave`` for dynamic collaboration,
* model-object ``attach`` for views.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set

from repro.core.association import Association, Invitation
from repro.core.commit import TransactionEngine
from repro.core.composites import DList, DMap
from repro.core.messages import (
    AbortMsg,
    CommitMsg,
    ConfirmMsg,
    Envelope,
    FailQueryMsg,
    FailQueryReplyMsg,
    FailResolutionMsg,
    GraphRepairAckMsg,
    GraphRepairApplyMsg,
    GraphRepairProposeMsg,
    JoinRequestMsg,
    JoinReplyMsg,
    SnapshotConfirmMsg,
    SnapshotReplyMsg,
    TxnPropagateMsg,
    WriteConfirmedMsg,
)
from repro.core.model import ModelObject
from repro.core.repgraph import ReplicationGraph, default_primary_selector
from repro.core.scalars import DFloat, DInt, DString
from repro.core.transaction import (
    FunctionTransaction,
    Transaction,
    TransactionContext,
    TransactionOutcome,
)
from repro.core.views import ViewManager
from repro.errors import ObjectNotFound, ProtocolError, ReproError
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.transport.base import Transport
from repro.vtime import LamportClock, VirtualTime
from repro.wire.batch import Outbox

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import Session


class SiteRuntime:
    """One DECAF application instance bound to a transport site id."""

    def __init__(
        self,
        site_id: int,
        transport: Transport,
        name: str = "",
        principal: str = "",
        session: Optional["Session"] = None,
        max_retries: int = 50,
        delegation_enabled: bool = True,
        eager_view_confirms: bool = False,
        batching: bool = False,
    ) -> None:
        from repro.core.failures import FailureManager
        from repro.core.join import JoinManager

        self.site_id = site_id
        self.name = name or f"site{site_id}"
        self.principal = principal or self.name
        self.transport = transport
        self.session = session
        #: Per-site metrics registry; engine/failure counters are
        #: registry-backed properties, so this must exist before them.
        self.metrics = MetricsRegistry(site_id)
        #: Protocol event bus — shared with the session (and through it the
        #: simulated network) so one timeline covers the whole run.
        if session is not None:
            self.bus: EventBus = session.bus
        else:
            transport_bus = getattr(transport, "bus", None)
            self.bus = transport_bus if transport_bus is not None else EventBus()
        self.clock = LamportClock(site_id)
        #: All outgoing protocol messages funnel through the outbox; with
        #: batching enabled, one protocol turn's fan-out coalesces into one
        #: Envelope per destination (see :mod:`repro.wire.batch`).
        self.outbox = Outbox(self, enabled=batching)
        self.objects: Dict[str, ModelObject] = {}
        self.views = ViewManager(self)
        self.engine = TransactionEngine(
            self,
            max_retries=max_retries,
            delegation_enabled=delegation_enabled,
            eager_view_confirms=eager_view_confirms,
        )
        self.joins = JoinManager(self)
        self.failures = FailureManager(self)
        #: All site ids in the session (used by the failure protocol).
        self.roster: Set[int] = {site_id}
        #: Highest Lamport counter heard from each peer.  Because clocks
        #: are monotone, no future message from site s can carry a VT at or
        #: below ``last_heard[s]`` — the stability bound that makes
        #: reservation and history garbage collection safe.
        self.last_heard: Dict[int, int] = {}
        self._current_txn: Optional[TransactionContext] = None
        #: Exact-type route table for incoming protocol messages.  Message
        #: classes are never subclassed, so a single dict lookup on
        #: ``type(payload)`` replaces the isinstance chain on the hottest
        #: receive path.
        self._routes: Dict[type, Callable[[int, Any], None]] = {
            TxnPropagateMsg: self.engine.on_propagate,
            ConfirmMsg: self.engine.on_confirm,
            CommitMsg: self.engine.on_commit,
            AbortMsg: self.engine.on_abort,
            SnapshotConfirmMsg: self.views.on_confirm_request,
            SnapshotReplyMsg: self.views.on_confirm_reply,
            WriteConfirmedMsg: self.views.on_write_confirmed,
            JoinRequestMsg: self.joins.on_join_request,
            JoinReplyMsg: self.joins.on_join_reply,
            FailQueryMsg: self.failures.on_query,
            FailQueryReplyMsg: self.failures.on_query_reply,
            FailResolutionMsg: self.failures.on_resolution,
            GraphRepairProposeMsg: self.failures.on_repair_propose,
            GraphRepairAckMsg: self.failures.on_repair_ack,
            GraphRepairApplyMsg: self.failures.on_repair_apply,
        }
        transport.register(site_id, self.dispatch)
        transport.add_failure_listener(self._on_failure_notice)

    # ------------------------------------------------------------------
    # Object factories
    # ------------------------------------------------------------------

    def _check_fresh(self, name: str) -> None:
        uid = f"s{self.site_id}:{name}"
        if uid in self.objects:
            raise ReproError(f"object named {name!r} already exists at {self.name}")

    def create_int(self, name: str, initial: int = 0) -> DInt:
        """Create a local integer model object."""
        self._check_fresh(name)
        return DInt(self, name, initial)

    def create_float(self, name: str, initial: float = 0.0) -> DFloat:
        """Create a local real-number model object."""
        self._check_fresh(name)
        return DFloat(self, name, float(initial))

    def create_string(self, name: str, initial: str = "") -> DString:
        """Create a local string model object."""
        self._check_fresh(name)
        return DString(self, name, initial)

    def create_list(self, name: str) -> DList:
        """Create a local (initially empty) list composite."""
        self._check_fresh(name)
        return DList(self, name)

    def create_map(self, name: str) -> DMap:
        """Create a local (initially empty) keyed composite."""
        self._check_fresh(name)
        return DMap(self, name)

    def create_association(self, name: str) -> Association:
        """Create a local association object for collaboration membership."""
        self._check_fresh(name)
        return Association(self, name)

    def register_object(self, obj: ModelObject) -> None:
        """Called by :class:`ModelObject` on construction."""
        self.objects[obj.uid] = obj

    def unregister_subtree(self, obj: ModelObject) -> None:
        """Drop an object (and any embedded children) from the registry."""
        from repro.core.views import _children_of

        for child in _children_of(obj):
            self.unregister_subtree(child)
        self.objects.pop(obj.uid, None)

    def lookup(self, uid: str) -> ModelObject:
        obj = self.objects.get(uid)
        if obj is None:
            raise ObjectNotFound(f"no object {uid} at {self.name}")
        return obj

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @property
    def current_txn(self) -> Optional[TransactionContext]:
        return self._current_txn

    def require_txn(self, operation: str) -> TransactionContext:
        if self._current_txn is None:
            raise ReproError(
                f"{operation} must run inside a transaction; use site.transact(...)"
            )
        return self._current_txn

    @contextlib.contextmanager
    def install_txn(self, ctx: TransactionContext):
        if self._current_txn is not None:
            raise ReproError("transactions do not nest")
        self._current_txn = ctx
        try:
            yield ctx
        finally:
            self._current_txn = None

    def run(self, txn: Transaction) -> TransactionOutcome:
        """Execute a :class:`Transaction` object atomically."""
        return self.engine.run(txn)

    def transact(
        self, fn: Callable[[], Any], on_abort: Optional[Callable[[Exception], None]] = None
    ) -> TransactionOutcome:
        """Execute a plain callable as a transaction."""
        return self.engine.run(FunctionTransaction(fn, on_abort))

    # ------------------------------------------------------------------
    # Collaboration establishment
    # ------------------------------------------------------------------

    def import_invitation(self, invitation: Invitation, name: str) -> Association:
        """Instantiate a local association joined to the inviter's (section 2.6)."""
        return self.joins.import_invitation(invitation, name)

    def join(self, assoc: Association, rel_id: str, obj: ModelObject) -> TransactionOutcome:
        """Join ``obj`` into the replica relationship ``rel_id`` (section 3.3)."""
        return self.joins.join(assoc, rel_id, obj)

    def leave(self, assoc: Association, rel_id: str, obj: ModelObject) -> TransactionOutcome:
        """Remove ``obj`` from its replica relationship."""
        return self.joins.leave(assoc, rel_id, obj)

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------

    def send(self, dst: int, payload: Any) -> None:
        self.outbox.send(dst, payload)

    def defer(self, action: Callable[[], None], delay_ms: float = 0.0) -> None:
        self.transport.defer(action, delay_ms, site=self.site_id)

    def dispatch(self, src: int, payload: Any) -> None:
        """Transport delivery handler: unpack envelopes, route each message.

        One delivery is one protocol turn: with batching enabled, every
        reply this turn produces leaves coalesced when the turn ends.  The
        turn window is opened inline (not via ``auto_turn``) — this handler
        runs once per delivered frame, and the context-manager generator
        was measurable churn in the turn-loop profile.
        """
        outbox = self.outbox
        batching = outbox.enabled
        if batching:
            outbox.begin_turn()
        try:
            if isinstance(payload, Envelope):
                for message in payload.messages:
                    self._dispatch_one(src, message)
            else:
                self._dispatch_one(src, payload)
        finally:
            if batching:
                outbox.end_turn()

    def _dispatch_one(self, src: int, payload: Any) -> None:
        """Merge clocks and route one protocol message by type."""
        clock = getattr(payload, "clock", None)
        if clock is not None:
            self.clock.observe_counter(clock)
            if clock > self.last_heard.get(src, -1):
                self.last_heard[src] = clock
        handler = self._routes.get(type(payload))
        if handler is None:
            raise ProtocolError(f"unroutable payload {type(payload).__name__}")
        handler(src, payload)
        # New structure may unblock buffered indirect propagations.
        self.engine.retry_pending_propagates()
        # A repaired graph may name a live primary for orphaned view checks.
        self.views.maybe_retry_orphans()

    def _on_failure_notice(self, failed_site: int) -> None:
        if failed_site == self.site_id:
            return
        if self.bus.active:
            self.bus.emit(
                "failure_notice",
                site=self.site_id,
                time_ms=self.transport.now(),
                failed_site=failed_site,
            )
        with self.outbox.auto_turn():
            self.failures.on_site_failed(failed_site)
            self.views.on_site_failed(failed_site)

    # ------------------------------------------------------------------
    # Bookkeeping services used by the engines
    # ------------------------------------------------------------------

    def note_applied(self, vt: VirtualTime, obj: ModelObject, op: Any) -> None:
        self.engine.applied.setdefault(vt, []).append((obj, op))

    def stability_bound(self, sites: List[int]) -> VirtualTime:
        """The VT below which no future transaction from ``sites`` can land.

        Every transaction's VT comes from its origin's Lamport clock, which
        never regresses, so ``min`` of the counters last heard from each
        site bounds all future VTs from them.  Used to garbage-collect
        reservations and history versions that stragglers might otherwise
        still need (commit alone is NOT sufficient: a stale-clocked site
        may still submit a write with an old VT).
        """
        counters = []
        for s in sites:
            if s == self.site_id:
                counters.append(self.clock.counter)
            else:
                counters.append(self.last_heard.get(s, 0))
        bound = min(counters) if counters else 0
        return VirtualTime(bound, -1)

    def primary_site_of(self, graph: ReplicationGraph) -> int:
        selector = None
        if self.session is not None:
            selector = self.session.primary_selector
        return (selector or default_primary_selector)(graph).site

    # ------------------------------------------------------------------
    # Introspection / metrics
    # ------------------------------------------------------------------

    def state_digest(self) -> Dict[str, Any]:
        """Committed state of every replicated root, keyed relationship-wide.

        The key is the minimum uid in the root's replication graph, which is
        the same at every member site, so digests from different live sites
        are directly comparable: converged replicas produce identical
        digests.  Used by the conformance explorer's convergence oracle.
        """
        from repro.vtime import VT_ZERO

        horizon = VirtualTime(2**62, 2**30)
        digest: Dict[str, Any] = {}
        for obj in self.objects.values():
            if not obj.has_own_graph():
                continue
            graph = obj.graph()
            key = min(graph.uids()) if graph.uids() else obj.uid
            try:
                committed_vt = obj.history.committed_current().vt
            except ProtocolError:
                committed_vt = VT_ZERO
            digest[key] = (committed_vt.key, repr(obj.value_at(horizon, committed_only=True)))
        return digest

    def protocol_residue(self) -> Dict[str, List[str]]:
        """Protocol state that must be empty once the system is quiescent.

        Any entry left after ``run_until_quiescent`` is a leak: a guess that
        never resolved, a reservation owned by an aborted transaction, an
        undelivered pessimistic snapshot, or an uncommitted history entry.
        Used by the conformance explorer's residue oracle.
        """
        from repro.core.transaction import TxnState
        from repro.core.views import PessimisticProxy

        residue: Dict[str, List[str]] = {}

        def add(category: str, item: str) -> None:
            residue.setdefault(category, []).append(item)

        for vt, record in self.engine.records.items():
            if record.state not in (TxnState.COMMITTED, TxnState.ABORTED):
                add(
                    "unresolved-transactions",
                    f"{vt} state={record.state} pending_confirm={sorted(record.pending_confirm_sites)}",
                )
        for pending in self.engine.pending_propagates:
            add("pending-propagates", f"{pending.msg.txn_vt} remaining={len(pending.remaining)}")
        for vt in sorted(self.engine.deps.pending_vts()):
            add("dangling-dependencies", str(vt))
        for snap_id, rec in sorted(self.views.records.items()):
            add(
                "open-snapshot-records",
                f"snap{snap_id} ts={rec.ts} pending_sites={sorted(rec.pending_sites)} "
                f"pending_rc={len(rec.pending_rc)} denied={rec.denied}",
            )
        for snap_id, reply in sorted(self.views.outstanding.items()):
            add("primary-outstanding-replies", f"snap{snap_id} unresolved={reply.unresolved}")
        for deferred in self.views.deferred:
            add("deferred-primary-checks", f"snap{deferred.snap_id} on {deferred.check.object_uid}")
        for proxy in self.views.proxies:
            if isinstance(proxy, PessimisticProxy) and proxy.pending:
                add(
                    "undelivered-pessimistic-snapshots",
                    f"{type(proxy.view).__name__}: {sorted(str(vt) for vt in proxy.pending)}",
                )
        for uid in sorted(self.objects):
            obj = self.objects[uid]
            for entry in obj.history:
                if not entry.committed:
                    add("uncommitted-history", f"{uid} at {entry.vt}")
            for table_name, table in (
                ("value", obj.value_reservations),
                ("graph", obj.graph_reservations),
            ):
                for interval in table:
                    owner = interval.owner
                    if (
                        isinstance(owner, VirtualTime)
                        and self.engine.status.get(owner) == "aborted"
                    ):
                        add(
                            "leaked-reservations",
                            f"{uid} {table_name} ({interval.lo},{interval.hi}) owner={owner}",
                        )
        return residue

    def counters(self) -> Dict[str, int]:
        """Per-site protocol counters for the bench harness."""
        out = {
            "commits": self.engine.commits,
            "aborts_conflict": self.engine.aborts_conflict,
            "aborts_user": self.engine.aborts_user,
            "retries": self.engine.retries,
        }
        out.update(self.views.total_counters())
        return out

    def __repr__(self) -> str:
        return f"SiteRuntime(id={self.site_id}, name={self.name!r}, objects={len(self.objects)})"
