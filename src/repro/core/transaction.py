"""Transactions: the atomic update units of DECAF (paper section 2.4).

Application programmers subclass :class:`Transaction` and put arbitrary
reads/writes of model objects in :meth:`Transaction.execute`.  The
execution is an atomic action: it behaves as if all its operations take
place at a single virtual time with respect to all other transactions.

During execution a :class:`TransactionContext` records every access:

* reads record the VT at which the current value was written (``read_vt``,
  the RL guess evidence) and the graph VT (``graph_vt``),
* reads of uncommitted values record RC dependencies,
* writes are applied locally at the transaction's VT immediately
  (optimistic execution) and queued for propagation.

The distributed protocol — propagation, guess checking at primaries,
summary commit/abort, automatic re-execution — lives in
:mod:`repro.core.commit`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set

from repro.core.guesses import ReadAccess, WriteAccess
from repro.core.messages import OpPayload
from repro.errors import ProtocolError
from repro.vtime import VirtualTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import ModelObject
    from repro.core.site import SiteRuntime


class Transaction:
    """User-defined atomic action over model objects (paper Fig. 2).

    Subclass and implement :meth:`execute`; optionally override
    :meth:`handle_abort`, which is called when the transaction aborts
    *without retry* because ``execute`` raised an exception (paper: "any
    uncaught exceptions are turned into transaction aborts ... and a
    standard method, called handleAbort(), is called").

    Aborts caused by concurrency-control conflicts are NOT delivered to
    ``handle_abort``; those transactions are automatically re-executed.
    """

    def execute(self) -> None:
        """The transaction body: arbitrary reads and writes of model objects."""
        raise NotImplementedError

    def handle_abort(self, exc: Exception) -> None:
        """Called on explicit (exception) abort; default does nothing."""


class FunctionTransaction(Transaction):
    """Adapter turning a plain callable into a :class:`Transaction`."""

    def __init__(self, fn: Callable[[], Any], on_abort: Optional[Callable[[Exception], None]] = None):
        self._fn = fn
        self._on_abort = on_abort
        self.result: Any = None

    def execute(self) -> None:
        self.result = self._fn()

    def handle_abort(self, exc: Exception) -> None:
        if self._on_abort is not None:
            self._on_abort(exc)


class TxnState(enum.Enum):
    """Lifecycle of one execution attempt of a transaction."""

    EXECUTING = "executing"
    AWAITING = "awaiting-confirms"
    DELEGATED = "delegated"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TransactionOutcome:
    """Final status of a transaction as observed by its initiator.

    ``handle.committed`` flips True when the summary commit is issued;
    ``vt`` is the VT of the *successful* attempt (retries get fresh VTs).
    """

    committed: bool = False
    aborted_no_retry: bool = False
    vt: Optional[VirtualTime] = None
    attempts: int = 0
    start_time_ms: float = 0.0
    local_apply_time_ms: Optional[float] = None
    commit_time_ms: Optional[float] = None
    abort_reason: str = ""
    _commit_callbacks: List[Callable[["TransactionOutcome"], None]] = field(default_factory=list)

    @property
    def commit_latency_ms(self) -> Optional[float]:
        """Commit latency of the successful attempt, in transport ms."""
        if self.commit_time_ms is None:
            return None
        return self.commit_time_ms - self.start_time_ms

    def on_commit(self, callback: Callable[["TransactionOutcome"], None]) -> None:
        """Register a callback fired when the transaction commits."""
        if self.committed:
            callback(self)
        else:
            self._commit_callbacks.append(callback)

    def _fire_commit(self) -> None:
        callbacks, self._commit_callbacks = self._commit_callbacks, []
        for callback in callbacks:
            callback(self)


class TransactionContext:
    """Recorder for one execution attempt: accesses, RC deps, local applies."""

    def __init__(self, site: "SiteRuntime", vt: VirtualTime) -> None:
        self.site = site
        self.vt = vt
        self.reads: Dict[int, ReadAccess] = {}
        self.writes: List[WriteAccess] = []
        self.rc_deps: Set[VirtualTime] = set()
        #: Objects written (identity map) — lets later reads in the same
        #: transaction see their own writes without creating RC deps.
        self._written: Dict[int, "ModelObject"] = {}
        self._slot_seq = 0

    def next_slot_seq(self) -> int:
        """Allocate the identity sequence number for an embedded child.

        Several structural ops in one transaction share its VT; the
        sequence number keeps slot identities unique (nested initial-value
        specs use negative numbers, a disjoint namespace).
        """
        seq = self._slot_seq
        self._slot_seq += 1
        return seq

    # ------------------------------------------------------------------
    # Read recording
    # ------------------------------------------------------------------

    def _record_read(self, obj: "ModelObject", read_vt: VirtualTime) -> None:
        key = id(obj)
        if key not in self.reads:
            obj.check_read(self.site.principal)
            self.reads[key] = ReadAccess(target=obj, read_vt=read_vt, graph_vt=obj.graph_vt())
        self._note_rc(obj)

    def _note_rc(self, obj: "ModelObject") -> None:
        """Record RC dependencies on uncommitted current value and graph."""
        entry = obj.history.current()
        if not entry.committed and entry.vt != self.vt and entry.vt not in self.rc_deps:
            self.rc_deps.add(entry.vt)
            self._emit_rc_guess(obj, entry.vt)
        graph_entry = obj.graph_history().current()
        if (
            not graph_entry.committed
            and graph_entry.vt != self.vt
            and graph_entry.vt not in self.rc_deps
        ):
            self.rc_deps.add(graph_entry.vt)
            self._emit_rc_guess(obj, graph_entry.vt)

    def _emit_rc_guess(self, obj: "ModelObject", dep_vt: VirtualTime) -> None:
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "guess_made",
                site=self.site.site_id,
                time_ms=self.site.transport.now(),
                txn_vt=self.vt,
                guess="RC",
                obj=obj.uid,
                depends_on=dep_vt,
            )

    def read_scalar(self, obj: "ModelObject") -> Any:
        """Record a scalar read; returns the current (optimistic) value."""
        entry = obj.history.current()
        self._record_read(obj, entry.vt)
        return entry.value

    def read_structure(self, obj: "ModelObject") -> None:
        """Record a read of a composite's structure (insert/remove/index)."""
        entry = obj.history.current()
        self._record_read(obj, entry.vt)

    # ------------------------------------------------------------------
    # Write recording
    # ------------------------------------------------------------------

    def write(self, obj: "ModelObject", op: OpPayload) -> Any:
        """Record a write and apply it locally at the transaction's VT.

        Returns whatever the local apply produced (e.g. the child object
        created by a composite insert).
        """
        obj.check_write(self.site.principal)
        prior_read = self.reads.get(id(obj))
        if prior_read is not None:
            read_vt = prior_read.read_vt
        else:
            # Blind write: "t_R is defined as equal to t_T" (section 3.1).
            # No RC dependency either — the write does not depend on the
            # current (possibly uncommitted) value it overwrites.
            read_vt = self.vt
        access = WriteAccess(target=obj, op=op, read_vt=read_vt, graph_vt=obj.graph_vt())
        self.writes.append(access)
        self._written[id(obj)] = obj
        from repro.core import propagation  # local import; cycle with model layer

        result = propagation.apply_op(obj, op, self.vt, committed=False)
        # A write makes the object's current value our own; a subsequent
        # read in this transaction must use our own VT as its read time.
        self.reads[id(obj)] = ReadAccess(target=obj, read_vt=self.vt, graph_vt=obj.graph_vt())
        return result

    # ------------------------------------------------------------------
    # Introspection used by the commit engine
    # ------------------------------------------------------------------

    def touched_roots(self) -> List["ModelObject"]:
        """Distinct propagation roots among all accessed objects."""
        roots: List["ModelObject"] = []
        seen: Set[int] = set()
        for access in list(self.reads.values()) + list(self.writes):
            root = access.target.propagation_root()
            if id(root) not in seen:
                seen.add(id(root))
                roots.append(root)
        return roots

    def written_objects(self) -> List["ModelObject"]:
        out: List["ModelObject"] = []
        seen: Set[int] = set()
        for access in self.writes:
            if id(access.target) not in seen:
                seen.add(id(access.target))
                out.append(access.target)
        return out

    def read_only_accesses(self) -> List[ReadAccess]:
        """Reads of objects the transaction did not also write."""
        written_ids = set(self._written)
        return [r for r in self.reads.values() if id(r.target) not in written_ids]


@dataclass
class TxnRecord:
    """Originating-site protocol state for one execution attempt."""

    vt: VirtualTime
    txn: Transaction
    ctx: TransactionContext
    outcome: TransactionOutcome
    state: TxnState = TxnState.EXECUTING
    involved_sites: Set[int] = field(default_factory=set)
    pending_confirm_sites: Set[int] = field(default_factory=set)
    pending_rc: Set[VirtualTime] = field(default_factory=set)
    pending_join: bool = False
    denied_reason: str = ""
    retry_of: Optional[VirtualTime] = None
    #: Protocol-extension hook re-run on every retry (join/leave).
    post_execute: Optional[Callable[["TxnRecord"], None]] = None

    def all_confirmed(self) -> bool:
        return not self.pending_confirm_sites and not self.pending_rc and not self.pending_join
