"""Update propagation: applying, undoing, and committing operations.

This module is the single place where an :class:`~repro.core.messages.OpPayload`
touches object state.  The same functions run at the originating site
(optimistic local apply during execution) and at remote sites (applying a
``TxnPropagateMsg``), which guarantees replicas interpret every operation
identically.

It also builds the per-destination-site message batches for a transaction:
WRITE ops go to every replica site of each touched propagation root
(*indirect propagation* — child updates are addressed root-relative with
VT-tagged paths, section 3.2); CONFIRM-READ checks go only to primary
sites.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.messages import (
    DelegateGrant,
    OpPayload,
    PathStep,
    ReadCheck,
    SlotId,
    TxnPropagateMsg,
    WriteOp,
)
from repro.errors import InvalidPath, ProtocolError
from repro.vtime import VirtualTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import ModelObject
    from repro.core.site import SiteRuntime
    from repro.core.transaction import TxnRecord


# ---------------------------------------------------------------------------
# Op application / undo / commit (shared by local execute and remote apply)
# ---------------------------------------------------------------------------


def apply_op(obj: "ModelObject", op: OpPayload, vt: VirtualTime, committed: bool) -> Any:
    """Apply ``op`` to ``obj`` at ``vt``; returns any created child object.

    Raises :class:`InvalidPath` when a structural dependency (predecessor
    slot, remove target) has not arrived yet; callers buffer and retry.
    """
    from repro.core.association import Association
    from repro.core.composites import DList, DMap

    kind = op.kind
    result: Any = None
    if kind == "set":
        if obj.history.entry_at(vt) is not None:
            obj.history.set_value_at(vt, op.args[0])
        else:
            obj.history.insert(vt, op.args[0], committed=committed)
    elif kind == "insert":
        if not isinstance(obj, DList):
            raise ProtocolError(f"insert targeted non-list {obj.uid}")
        after_id, spec, seq = op.args
        result = obj.apply_insert(SlotId(vt, seq), after_id, spec)
        if committed:
            obj.commit_structural(vt)
    elif kind == "remove":
        if not isinstance(obj, DList):
            raise ProtocolError(f"remove targeted non-list {obj.uid}")
        (target,) = op.args
        obj.apply_remove(vt, target)
        if committed:
            obj.commit_structural(vt)
    elif kind == "put":
        if not isinstance(obj, DMap):
            raise ProtocolError(f"put targeted non-map {obj.uid}")
        key, spec = op.args
        result = obj.apply_put(vt, key, spec)
        if committed:
            obj.commit_structural(vt)
    elif kind == "delete":
        if not isinstance(obj, DMap):
            raise ProtocolError(f"delete targeted non-map {obj.uid}")
        (key,) = op.args
        obj.apply_delete(vt, key)
        if committed:
            obj.commit_structural(vt)
    elif kind == "graph":
        (graph,) = op.args
        history = obj.graph_history()
        if history.entry_at(vt) is not None:
            history.set_value_at(vt, graph)
        else:
            history.insert(vt, graph, committed=committed)
    elif kind == "assoc":
        if not isinstance(obj, Association):
            raise ProtocolError(f"assoc op targeted non-association {obj.uid}")
        result = obj.apply_assoc(vt, op.args, committed=committed)
    elif kind == "sync":
        from repro.core import sync as syncmod

        (spec,) = op.args
        syncmod.import_state(obj, spec, vt)
    else:
        raise ProtocolError(f"unknown op kind {kind!r}")
    # Record which op was applied so abort/commit processing can reverse or
    # finalize it without re-deriving intent from message logs.
    obj.site.note_applied(vt, obj, op)
    bus = obj.site.bus
    if bus.active:
        bus.emit(
            "op_applied",
            site=obj.site.site_id,
            time_ms=obj.site.transport.now(),
            txn_vt=vt,
            obj=obj.uid,
            op=kind,
            committed=committed,
        )
    obj.notify_proxies("apply", vt)
    return result


def undo_op(obj: "ModelObject", op: OpPayload, vt: VirtualTime) -> None:
    """Roll back ``op`` applied at ``vt`` (transaction abort)."""
    from repro.core.association import Association
    from repro.core.composites import CompositeObject

    kind = op.kind
    if kind == "set":
        obj.history.purge(vt)
    elif kind in ("insert", "remove", "put", "delete", "structural"):
        assert isinstance(obj, CompositeObject)
        obj.undo_structural(vt)
    elif kind == "graph":
        obj.graph_history().purge(vt)
    elif kind == "assoc":
        assert isinstance(obj, Association)
        obj.undo_assoc(vt)
    elif kind == "sync":
        from repro.core import sync as syncmod

        syncmod.restore_state(obj, vt)
    else:
        raise ProtocolError(f"unknown op kind {kind!r}")
    obj.notify_proxies("undo", vt)


def commit_op(obj: "ModelObject", op: OpPayload, vt: VirtualTime) -> None:
    """Mark ``op`` applied at ``vt`` as committed."""
    from repro.core.association import Association
    from repro.core.composites import CompositeObject

    kind = op.kind
    if kind == "set":
        obj.history.commit(vt)
    elif kind in ("insert", "remove", "put", "delete", "structural"):
        assert isinstance(obj, CompositeObject)
        obj.commit_structural(vt)
    elif kind == "graph":
        obj.graph_history().commit(vt)
    elif kind == "assoc":
        assert isinstance(obj, Association)
        obj.commit_assoc(vt)
    elif kind == "sync":
        # The imported committed entries are already final; any imported
        # uncommitted entries are finalized by their own writers' COMMITs.
        pass
    else:
        raise ProtocolError(f"unknown op kind {kind!r}")
    obj.notify_proxies("commit", vt)


# ---------------------------------------------------------------------------
# Path resolution
# ---------------------------------------------------------------------------


def resolve_path(root: "ModelObject", path: Tuple[PathStep, ...]) -> "ModelObject":
    """Walk a VT-tagged path from a propagation root to the embedded target.

    Raises :class:`InvalidPath` if any step's child has not arrived yet
    ("the propagation will block until the earlier update is received" —
    section 3.2.1); the commit engine buffers the operation and retries.
    """
    from repro.core.composites import CompositeObject

    node = root
    for step in path:
        if not isinstance(node, CompositeObject):
            raise ProtocolError(f"path step {step} descends into non-composite {node.uid}")
        child = node.resolve_step(step)
        if child is None:
            raise InvalidPath(f"path step {step} unresolved in {node.uid}")
        node = child
    return node


# ---------------------------------------------------------------------------
# Batch construction at the originating site
# ---------------------------------------------------------------------------


def build_batches(
    record: "TxnRecord", site: "SiteRuntime"
) -> Tuple[Dict[int, Tuple[List[WriteOp], List[ReadCheck]]], Dict[int, List[Tuple[str, ...]]]]:
    """Build per-site WRITE/CONFIRM-READ batches for one transaction.

    Returns ``(batches, primary_checks)`` where ``batches`` maps each
    destination site to its ops, and ``primary_checks`` maps each *primary*
    site (possibly including the origin) to the list of check descriptors
    it must validate — used to compute the confirmation wait set.
    """
    origin = site.site_id
    batches: Dict[int, Tuple[List[WriteOp], List[ReadCheck]]] = {}
    primary_sites: Dict[int, List[Tuple[str, ...]]] = {}

    def batch_for(dst: int) -> Tuple[List[WriteOp], List[ReadCheck]]:
        if dst not in batches:
            batches[dst] = ([], [])
        return batches[dst]

    for access in record.ctx.writes:
        target = access.target
        root = target.propagation_root()
        path = target.path_from_root()
        graph = root.graph()
        primary = site.primary_site_of(graph)
        primary_sites.setdefault(primary, []).append(("write", target.uid))
        for dst in graph.sites():
            if dst == origin:
                continue
            dst_uid = graph.uid_at_site(dst)
            if dst_uid is None:
                raise ProtocolError(f"graph of {root.uid} lacks a replica at site {dst}")
            writes, _ = batch_for(dst)
            writes.append(
                WriteOp(
                    object_uid=dst_uid,
                    op=access.op,
                    read_vt=access.read_vt,
                    graph_vt=access.graph_vt,
                    path=path,
                )
            )

    for access in record.ctx.read_only_accesses():
        target = access.target
        root = target.propagation_root()
        path = target.path_from_root()
        graph = root.graph()
        primary = site.primary_site_of(graph)
        primary_sites.setdefault(primary, []).append(("read", target.uid))
        if primary == origin:
            continue
        dst_uid = graph.uid_at_site(primary)
        if dst_uid is None:
            raise ProtocolError(f"graph of {root.uid} lacks a replica at primary {primary}")
        _, checks = batch_for(primary)
        checks.append(
            ReadCheck(
                object_uid=dst_uid,
                read_vt=access.read_vt,
                graph_vt=access.graph_vt,
                path=path,
            )
        )

    return batches, primary_sites
