"""Replication graphs and the primary-copy selection function.

A *replication graph* is "a connected multigraph whose nodes are references
to model objects, and whose multi-edges are the replication relations built
by the users" (paper section 3).  The graph determines:

* the set of sites an update must be propagated to, and
* the *primary copy* — a deterministically selected node whose site checks
  RL/NC guesses.  The paper emphasizes that there is no election: "each
  node is able to map a given multigraph to the identity of the primary
  site" (section 3.3).  Our selection function is the minimum
  ``(site, uid)`` node; sessions may override it.

Graphs are immutable; graph changes are writes to the graph history,
concurrency-controlled exactly like value writes (with their own RL
reservations at the primary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ProtocolError


@dataclass(frozen=True, order=True)
class GraphNode:
    """A reference to one replica: the hosting site and the object's uid.

    The same node appears in every graph mentioning that replica, so the
    wire codec interns decoded instances (``__wire_intern__``).
    """

    #: Opt-in marker for the wire codec's intern / encode caches.
    __wire_intern__ = True

    site: int
    uid: str


@dataclass(frozen=True)
class ReplicationGraph:
    """An immutable replication multigraph.

    ``edges`` are unordered uid pairs recording user-built join relations;
    they are retained so that leaves can split a graph along its remaining
    connectivity, and so the multigraph structure of the paper is
    faithfully represented.
    """

    nodes: FrozenSet[GraphNode]
    edges: FrozenSet[FrozenSet[str]] = frozenset()

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ProtocolError("a replication graph must contain at least one node")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def singleton(uid: str, site: int) -> "ReplicationGraph":
        """The initial graph of a standalone (unreplicated) object."""
        return ReplicationGraph(nodes=frozenset({GraphNode(site=site, uid=uid)}))

    def merge(
        self, other: "ReplicationGraph", join_edge: Tuple[str, str]
    ) -> "ReplicationGraph":
        """Union two graphs, adding the user-built edge that joins them."""
        a, b = join_edge
        uids = {n.uid for n in self.nodes} | {n.uid for n in other.nodes}
        if a not in uids or b not in uids:
            raise ProtocolError(f"join edge ({a}, {b}) references unknown nodes")
        return ReplicationGraph(
            nodes=self.nodes | other.nodes,
            edges=self.edges | other.edges | {frozenset({a, b})},
        )

    def without_site(self, site: int) -> Optional["ReplicationGraph"]:
        """The graph with a failed site's nodes removed, or None if empty."""
        remaining = frozenset(n for n in self.nodes if n.site != site)
        if not remaining:
            return None
        keep_uids = {n.uid for n in remaining}
        edges = frozenset(e for e in self.edges if all(u in keep_uids for u in e))
        return ReplicationGraph(nodes=remaining, edges=edges)

    def without_node(self, uid: str) -> Optional["ReplicationGraph"]:
        """The graph with one replica removed (a ``leave``), or None if empty."""
        remaining = frozenset(n for n in self.nodes if n.uid != uid)
        if not remaining:
            return None
        edges = frozenset(e for e in self.edges if uid not in e)
        return ReplicationGraph(nodes=remaining, edges=edges)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def sites(self) -> List[int]:
        """All hosting sites, sorted ascending."""
        return sorted({n.site for n in self.nodes})

    def uids(self) -> List[str]:
        """All member uids, sorted."""
        return sorted(n.uid for n in self.nodes)

    def uid_at_site(self, site: int) -> Optional[str]:
        """The uid of this relationship's replica at ``site`` (None if absent).

        DECAF applications host at most one replica of a relationship per
        site runtime; the join protocol enforces this.
        """
        matches = [n.uid for n in self.nodes if n.site == site]
        if len(matches) > 1:
            raise ProtocolError(f"multiple replicas of one relationship at site {site}")
        return matches[0] if matches else None

    def site_of(self, uid: str) -> int:
        for node in self.nodes:
            if node.uid == uid:
                return node.site
        raise ProtocolError(f"uid {uid} is not in this replication graph")

    def contains_uid(self, uid: str) -> bool:
        return any(n.uid == uid for n in self.nodes)

    def is_singleton(self) -> bool:
        return len(self.nodes) == 1

    def __len__(self) -> int:
        return len(self.nodes)


PrimarySelector = Callable[[ReplicationGraph], GraphNode]


def default_primary_selector(graph: ReplicationGraph) -> GraphNode:
    """The default constant primary-selection function: min ``(site, uid)``.

    Any pure function of the graph works (the paper only requires that
    every site computes the same answer); minimum site gives benchmarks a
    predictable primary placement.
    """
    return min(graph.nodes)


def primary_site(graph: ReplicationGraph, selector: Optional[PrimarySelector] = None) -> int:
    """The site hosting the primary copy under ``selector``."""
    chosen = (selector or default_primary_selector)(graph)
    return chosen.site
