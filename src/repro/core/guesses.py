"""Guess bookkeeping: access records and the RC dependency index.

The validity of an optimistic transaction rests on three guess families
(paper section 3.1):

* **RC (Read Committed)** — each value (or graph) read was written by a
  transaction that will commit.  Tracked *locally at the originating site*:
  "the originating site simply records the VT of the transaction that wrote
  the uncommitted value ... and will not commit its transaction until the
  transaction at the recorded VT commits."
* **RL (Read Latest)** — no write occurred at the primary copy between the
  read time and the transaction's VT.  Checked remotely at primaries.
* **NC (No Conflict)** — no other transaction reserved a write-free region
  containing the write's VT.  Checked remotely at primaries.

This module holds the originating-site data structures: per-transaction
access records (converted into WRITE/CONFIRM-READ messages by
:mod:`repro.core.propagation`) and the :class:`DependencyIndex` mapping each
uncommitted transaction to the local transactions and snapshots that have
guessed it will commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.messages import OpPayload, PathStep
from repro.vtime import VirtualTime


@dataclass
class ReadAccess:
    """A transaction's read of one model object (for CONFIRM-READ)."""

    target: Any  # the local ModelObject read
    read_vt: VirtualTime
    graph_vt: VirtualTime


@dataclass
class WriteAccess:
    """A transaction's write of one model object (for WRITE propagation).

    ``read_vt`` is the VT at which the transaction last read the object
    before writing, or the transaction's own VT for blind writes (which
    makes the RL interval empty — "for blind writes, the RL guess check is
    trivially satisfied").
    """

    target: Any  # the local ModelObject written
    op: OpPayload
    read_vt: VirtualTime
    graph_vt: VirtualTime


class DependencyIndex:
    """Tracks which local work units depend on which uncommitted transactions.

    "For each uncommitted transaction T at a site, a list of other
    transactions at the site which have guessed that T will commit is
    maintained" (section 3.1).  We generalize the dependents to arbitrary
    callbacks so both transactions (RC guesses) and view snapshots use the
    same index.
    """

    def __init__(self) -> None:
        # txn VT -> list of (on_commit, on_abort) callbacks
        self._waiters: Dict[VirtualTime, List[Tuple[Callable[[], None], Callable[[], None]]]] = {}

    def wait_for(
        self,
        vt: VirtualTime,
        on_commit: Callable[[], None],
        on_abort: Callable[[], None],
    ) -> None:
        """Register callbacks fired when the transaction at ``vt`` resolves."""
        self._waiters.setdefault(vt, []).append((on_commit, on_abort))

    def resolve_commit(self, vt: VirtualTime) -> int:
        """Fire commit callbacks for ``vt``; returns how many fired."""
        waiters = self._waiters.pop(vt, [])
        for on_commit, _ in waiters:
            on_commit()
        return len(waiters)

    def resolve_abort(self, vt: VirtualTime) -> int:
        """Fire abort callbacks for ``vt``; returns how many fired."""
        waiters = self._waiters.pop(vt, [])
        for _, on_abort in waiters:
            on_abort()
        return len(waiters)

    def pending_vts(self) -> Set[VirtualTime]:
        """Transactions still being waited on (diagnostics/tests)."""
        return set(self._waiters)

    def __len__(self) -> int:
        return len(self._waiters)
