"""Dynamic collaboration establishment: the join/leave protocol (section 3.3).

Joining model object A to a replica relationship containing object B runs,
inside one transaction at A's site:

1. The association value is read and optimistically updated (a normal
   transactional write, confirmed by the association's primary copy).
2. A remote call carries A's replication graph g_A to B.
3. B merges g_A into g_B, applies the merged graph at the transaction's VT,
   propagates it to its replicas, and returns its exported value, the
   merged graph, and any pending-commit caveats.
4. The graph change is validated by *both* old primaries: g_B's primary
   (B checks locally or forwards with ``force_confirm``) and g_A's primary
   (likewise on A's side).  B's value-read is validated over the interval
   ``(sync_vt, txn_vt)`` so no committed straggler can hide from the joiner.
5. A imports B's state, propagates the merged graph and state to its own
   replicas, and commits once the association primary, both graph
   primaries, and all RC dependencies have confirmed.

There is no primary election: every site maps the merged graph to its
primary with the same pure function.

Leaving is simpler: a graph write removing A's node, validated by the old
primary, with the association updated in the same transaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core import sync as syncmod
from repro.core.association import Association, Invitation
from repro.core.messages import (
    AbortMsg,
    ConfirmMsg,
    JoinReplyMsg,
    JoinRequestMsg,
    OpPayload,
    ReadCheck,
    TxnPropagateMsg,
    WriteOp,
)
from repro.core.repgraph import ReplicationGraph
from repro.core.transaction import FunctionTransaction, TransactionOutcome, TxnRecord, TxnState
from repro.errors import ProtocolError, ReproError
from repro.vtime import VirtualTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import ModelObject
    from repro.core.site import SiteRuntime


class PendingJoin:
    """Joiner-side state between the remote call and its reply."""

    def __init__(
        self,
        record: TxnRecord,
        obj: "ModelObject",
        old_graph: ReplicationGraph,
        old_graph_vt: VirtualTime,
    ) -> None:
        self.record = record
        self.obj = obj
        self.old_graph = old_graph
        self.old_graph_vt = old_graph_vt


class JoinManager:
    """Implements joins, leaves, and invitation import for one site."""

    def __init__(self, site: "SiteRuntime") -> None:
        self.site = site
        self._req_seq = 0
        self.pending: Dict[Tuple[int, int], PendingJoin] = {}

    def _next_request_id(self) -> Tuple[int, int]:
        self._req_seq += 1
        return (self.site.site_id, self._req_seq)

    # ==================================================================
    # Joiner side
    # ==================================================================

    def join(
        self, assoc: Association, rel_id: str, obj: "ModelObject"
    ) -> TransactionOutcome:
        """Join ``obj`` into relationship ``rel_id`` through ``assoc``."""
        if obj.parent is not None and not obj.has_own_graph():
            # The Fig. 7 case: an embedded object joining its own
            # collaboration switches to direct propagation.
            obj.enable_direct_propagation()
        captured: Dict[str, Any] = {}

        def body() -> None:
            members = assoc.members(rel_id)
            if not any(rel_id == r for r in _rel_ids(assoc)):
                raise ReproError(f"relationship {rel_id!r} does not exist in {assoc.uid}")
            assoc.record_join(rel_id, obj.uid, self.site.site_id)
            captured["members"] = members

        def post(record: TxnRecord) -> None:
            members = [m for m in captured["members"] if m[0] != obj.uid]
            if not members:
                return  # First member: nothing to merge.
            target_uid, target_site = min(members, key=lambda m: (m[1], m[0]))
            request_id = self._next_request_id()
            self.pending[request_id] = PendingJoin(
                record=record,
                obj=obj,
                old_graph=obj.graph(),
                old_graph_vt=obj.graph_vt(),
            )
            record.pending_join = True
            record.involved_sites.add(target_site)
            self.site.send(
                target_site,
                JoinRequestMsg(
                    request_id=request_id,
                    origin=self.site.site_id,
                    txn_vt=record.vt,
                    target_uid=target_uid,
                    joiner_uid=obj.uid,
                    joiner_graph=obj.graph(),
                    clock=self.site.clock.counter,
                ),
            )

        return self.site.engine.run(FunctionTransaction(body), post_execute=post)

    def import_invitation(self, invitation: Invitation, name: str) -> Association:
        """Instantiate a local association replica from an invitation.

        The local association joins the inviter's association through the
        same join machinery (associations are model objects too); the
        association's value — all relationship memberships — arrives with
        the state sync.
        """
        local = Association(self.site, name)

        def body() -> None:
            pass  # The join transaction carries only the graph/state merge.

        def post(record: TxnRecord) -> None:
            request_id = self._next_request_id()
            self.pending[request_id] = PendingJoin(
                record=record,
                obj=local,
                old_graph=local.graph(),
                old_graph_vt=local.graph_vt(),
            )
            record.pending_join = True
            record.involved_sites.add(invitation.inviter_site)
            self.site.send(
                invitation.inviter_site,
                JoinRequestMsg(
                    request_id=request_id,
                    origin=self.site.site_id,
                    txn_vt=record.vt,
                    target_uid=invitation.assoc_uid,
                    joiner_uid=local.uid,
                    joiner_graph=local.graph(),
                    clock=self.site.clock.counter,
                ),
            )

        self.site.engine.run(FunctionTransaction(body), post_execute=post)
        return local

    # ==================================================================
    # Member (B) side
    # ==================================================================

    def on_join_request(self, src: int, msg: JoinRequestMsg) -> None:
        engine = self.site.engine
        target = self.site.objects.get(msg.target_uid)
        if target is None:
            self._reply_error(src, msg, f"unknown object {msg.target_uid}", retryable=False)
            return
        try:
            target.check_join(f"site{msg.origin}")
        except Exception as exc:  # noqa: BLE001
            self._reply_error(src, msg, str(exc), retryable=False)
            return
        root = target.propagation_root()
        if root is not target:
            self._reply_error(
                src, msg, f"{msg.target_uid} is not a propagation root", retryable=False
            )
            return
        gb = target.graph()
        gb_vt = target.graph_vt()
        gb_primary = self.site.primary_site_of(gb)
        merged = gb.merge(msg.joiner_graph, (msg.joiner_uid, msg.target_uid))
        spec, sync_vt, pending_vts = syncmod.export_state(target)
        graph_entry = target.graph_history().current()
        if not graph_entry.committed and graph_entry.vt not in pending_vts:
            pending_vts = list(pending_vts) + [graph_entry.vt]

        me = self.site.site_id
        vt = msg.txn_vt
        if not (sync_vt < vt and gb_vt < vt):
            # The joiner's clock lags our state; deny so it retries with a
            # fresh VT (our reply's clock merges into the joiner's clock).
            self._reply_error(
                src, msg, f"stale join VT {vt}: member state is at {sync_vt}/{gb_vt}"
            )
            return
        if gb_primary == me:
            # Validate here: graph RL/NC plus the joiner's value read over
            # (sync_vt, txn_vt).
            ok, reason, _against = engine._check_and_reserve(
                target, root, vt, read_vt=sync_vt, graph_vt=gb_vt, is_write=False
            )
            if not ok:
                self._reply_error(src, msg, reason)
                return

        # Apply the merged graph optimistically under the join transaction.
        from repro.core import propagation

        self.site.views.begin_batch()
        try:
            propagation.apply_op(target, OpPayload(kind="graph", args=(merged,)), vt, committed=False)
        finally:
            self.site.views.end_batch()

        # Propagate the merged graph to the old g_B replicas.
        for dst in gb.sites():
            if dst in (me, msg.origin):
                continue
            dst_uid = gb.uid_at_site(dst)
            if dst_uid is None:
                continue
            force = dst == gb_primary
            checks: Tuple[ReadCheck, ...] = ()
            if force:
                checks = (
                    ReadCheck(object_uid=dst_uid, read_vt=sync_vt, graph_vt=gb_vt, path=()),
                )
            self.site.send(
                dst,
                TxnPropagateMsg(
                    txn_vt=vt,
                    origin=msg.origin,
                    writes=(
                        WriteOp(
                            object_uid=dst_uid,
                            op=OpPayload(kind="graph", args=(merged,)),
                            read_vt=vt,
                            graph_vt=gb_vt,
                            path=(),
                        ),
                    ),
                    read_checks=checks,
                    clock=self.site.clock.counter,
                    force_confirm=force,
                ),
            )

        # Forward outcomes of pending transactions to the joiner ("this
        # fact is remembered at B").
        for dep_vt in pending_vts:
            state = engine.status.get(dep_vt)
            if state == "committed":
                continue
            if state == "aborted":
                self.site.send(
                    msg.origin,
                    AbortMsg(txn_vt=dep_vt, clock=self.site.clock.counter, reason="forwarded"),
                )
                continue
            engine.deps.wait_for(
                dep_vt,
                on_commit=lambda d=dep_vt, o=msg.origin: self.site.send(
                    o, _commit_msg(d, self.site)
                ),
                on_abort=lambda d=dep_vt, o=msg.origin: self.site.send(
                    o, AbortMsg(txn_vt=d, clock=self.site.clock.counter, reason="forwarded")
                ),
            )

        self.site.send(
            src,
            JoinReplyMsg(
                request_id=msg.request_id,
                ok=True,
                sync_spec=spec,
                merged_graph=merged,
                graph_vt=gb_vt,
                sync_vt=sync_vt,
                pending_vts=tuple(pending_vts),
                gb_primary=gb_primary,
                clock=self.site.clock.counter,
            ),
        )
        if gb_primary == me:
            # Our checks passed above; confirm to the origin (after the
            # reply on the same FIFO channel, so the origin registers the
            # pending confirmation first).
            self.site.send(
                msg.origin,
                ConfirmMsg(
                    txn_vt=vt, site=me, ok=True, clock=self.site.clock.counter
                ),
            )

    def _reply_error(
        self, src: int, msg: JoinRequestMsg, reason: str, retryable: bool = True
    ) -> None:
        self.site.send(
            src,
            JoinReplyMsg(
                request_id=msg.request_id,
                ok=False,
                sync_spec=None,
                merged_graph=None,
                graph_vt=msg.txn_vt,
                sync_vt=msg.txn_vt,
                pending_vts=(),
                gb_primary=-1,
                clock=self.site.clock.counter,
                reason=reason,
                retryable=retryable,
            ),
        )

    # ==================================================================
    # Joiner side: reply processing
    # ==================================================================

    def on_join_reply(self, src: int, msg: JoinReplyMsg) -> None:
        pending = self.pending.pop(msg.request_id, None)
        if pending is None:
            return
        engine = self.site.engine
        record = pending.record
        if record.state in (TxnState.ABORTED,):
            # The transaction died (association conflict, RC abort) while
            # the remote call was in flight; clean up the B side.
            if msg.ok and msg.merged_graph is not None:
                for dst in msg.merged_graph.sites():
                    if dst != self.site.site_id:
                        self.site.send(
                            dst,
                            AbortMsg(
                                txn_vt=record.vt,
                                clock=self.site.clock.counter,
                                reason="join transaction aborted",
                            ),
                        )
            return
        if not msg.ok:
            record.pending_join = False
            engine._abort_origin(record, f"join denied: {msg.reason}", retry=msg.retryable)
            return

        obj = pending.obj
        merged: ReplicationGraph = msg.merged_graph
        vt = record.vt
        me = self.site.site_id
        ga = pending.old_graph
        ga_vt = pending.old_graph_vt
        ga_primary = self.site.primary_site_of(ga)

        record.involved_sites |= set(merged.sites()) - {me}
        record.pending_confirm_sites.add(msg.gb_primary)

        # RC caveats: wait for B-side pending transactions (B forwards
        # their outcomes to us).
        for dep_vt in msg.pending_vts:
            state = engine.status.get(dep_vt)
            if state == "committed":
                continue
            if state == "aborted":
                record.pending_join = False
                engine._abort_origin(record, f"join dependency {dep_vt} aborted")
                return
            if dep_vt not in record.pending_rc:
                record.pending_rc.add(dep_vt)
                engine.deps.wait_for(
                    dep_vt,
                    on_commit=lambda d=dep_vt, r=record: engine._rc_resolved(r, d),
                    on_abort=lambda d=dep_vt, r=record: engine._rc_aborted(r, d),
                )

        # Local validation of our own old graph's primary, if that is us.
        if ga_primary == me:
            ok, reason, _against = engine._check_and_reserve(
                obj, obj, vt, read_vt=vt, graph_vt=ga_vt, is_write=True
            )
            if not ok:
                record.pending_join = False
                engine._abort_origin(record, reason)
                return
        else:
            record.pending_confirm_sites.add(ga_primary)

        # Adopt B's value and the merged graph locally.
        from repro.core import propagation

        self.site.views.begin_batch()
        try:
            propagation.apply_op(obj, OpPayload(kind="graph", args=(merged,)), vt, committed=False)
            propagation.apply_op(obj, OpPayload(kind="sync", args=(msg.sync_spec,)), vt, committed=False)
        finally:
            self.site.views.end_batch()

        # Propagate graph + state to our own old replicas (g_A side).
        for dst in ga.sites():
            if dst == me:
                continue
            dst_uid = ga.uid_at_site(dst)
            if dst_uid is None:
                continue
            force = dst == ga_primary
            self.site.send(
                dst,
                TxnPropagateMsg(
                    txn_vt=vt,
                    origin=me,
                    writes=(
                        WriteOp(
                            object_uid=dst_uid,
                            op=OpPayload(kind="graph", args=(merged,)),
                            read_vt=vt,
                            graph_vt=ga_vt,
                            path=(),
                        ),
                        WriteOp(
                            object_uid=dst_uid,
                            op=OpPayload(kind="sync", args=(msg.sync_spec,)),
                            read_vt=vt,
                            graph_vt=ga_vt,
                            path=(),
                        ),
                    ),
                    read_checks=(),
                    clock=self.site.clock.counter,
                    force_confirm=force,
                ),
            )

        record.pending_join = False
        if record.state == TxnState.AWAITING and record.all_confirmed():
            engine._commit_origin(record)

    # ==================================================================
    # Leave
    # ==================================================================

    def leave(
        self, assoc: Association, rel_id: str, obj: "ModelObject"
    ) -> TransactionOutcome:
        """Withdraw ``obj`` from its replica relationship."""

        def body() -> None:
            assoc.record_leave(rel_id, obj.uid)

        def post(record: TxnRecord) -> None:
            old_graph = obj.graph()
            if old_graph.is_singleton():
                return
            old_vt = obj.graph_vt()
            old_primary = self.site.primary_site_of(old_graph)
            remaining = old_graph.without_node(obj.uid)
            me = self.site.site_id
            vt = record.vt

            from repro.core import propagation

            singleton = ReplicationGraph.singleton(obj.uid, me)
            if old_primary == me:
                ok, reason, _against = self.site.engine._check_and_reserve(
                    obj, obj, vt, read_vt=vt, graph_vt=old_vt, is_write=True
                )
                if not ok:
                    self.site.engine._abort_origin(record, reason)
                    return
            else:
                record.pending_confirm_sites.add(old_primary)
            self.site.views.begin_batch()
            try:
                propagation.apply_op(
                    obj, OpPayload(kind="graph", args=(singleton,)), vt, committed=False
                )
            finally:
                self.site.views.end_batch()
            for dst in old_graph.sites():
                if dst == me:
                    continue
                dst_uid = old_graph.uid_at_site(dst)
                if dst_uid is None or remaining is None:
                    continue
                record.involved_sites.add(dst)
                self.site.send(
                    dst,
                    TxnPropagateMsg(
                        txn_vt=vt,
                        origin=me,
                        writes=(
                            WriteOp(
                                object_uid=dst_uid,
                                op=OpPayload(kind="graph", args=(remaining,)),
                                read_vt=vt,
                                graph_vt=old_vt,
                                path=(),
                            ),
                        ),
                        read_checks=(),
                        clock=self.site.clock.counter,
                        force_confirm=dst == old_primary,
                    ),
                )

        return self.site.engine.run(FunctionTransaction(body), post_execute=post)


def _rel_ids(assoc: Association) -> List[str]:
    return assoc.relationships()


def _commit_msg(vt: VirtualTime, site: "SiteRuntime"):
    from repro.core.messages import CommitMsg

    return CommitMsg(txn_vt=vt, clock=site.clock.counter)
