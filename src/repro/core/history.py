"""Value histories: the per-object multi-version store.

Each model object holds a *value history* — "a set of pairs of values and
VTs, sorted by VT" (paper section 3) — plus a similarly indexed
*replication graph history*.  The value with the latest VT is the *current*
value.  Histories support:

* optimistic insertion of uncommitted values at a transaction's VT,
* reads "as of" a snapshot VT (pessimistic views read past versions),
* purging on abort (rollback),
* commit marking and commit-driven garbage collection.

The same structure stores scalar values, association values, and
replication graphs; composites use one history per embedded leaf plus
VT-tagged child slots (see :mod:`repro.core.composites`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, List, Optional, TypeVar

from repro.errors import ProtocolError
from repro.vtime import VT_ZERO, VirtualTime

V = TypeVar("V")


@dataclass
class HistoryEntry(Generic[V]):
    """One version: the value written at ``vt`` by the transaction at ``vt``."""

    vt: VirtualTime
    value: V
    committed: bool = False

    def __repr__(self) -> str:
        flag = "c" if self.committed else "u"
        return f"<{self.vt}={self.value!r}:{flag}>"


class ValueHistory(Generic[V]):
    """A VT-sorted multi-version history for one model object.

    The history always contains at least one entry (the initial value at
    ``VT_ZERO``, committed), so ``current()`` and ``read_at()`` are total.
    """

    def __init__(self, initial: V, initial_vt: VirtualTime = VT_ZERO) -> None:
        self._entries: List[HistoryEntry[V]] = [
            HistoryEntry(vt=initial_vt, value=initial, committed=True)
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[HistoryEntry[V]]:
        return iter(self._entries)

    def current(self) -> HistoryEntry[V]:
        """The entry with the latest VT (the paper's *current value*)."""
        return self._entries[-1]

    def committed_current(self) -> HistoryEntry[V]:
        """The latest committed entry."""
        for entry in reversed(self._entries):
            if entry.committed:
                return entry
        raise ProtocolError("history lost its committed base entry")

    def read_at(self, vt: VirtualTime) -> HistoryEntry[V]:
        """The entry in effect at ``vt``: latest entry with ``entry.vt <= vt``."""
        result: Optional[HistoryEntry[V]] = None
        for entry in self._entries:
            if entry.vt <= vt:
                result = entry
            else:
                break
        if result is None:
            raise ProtocolError(
                f"no value at or before {vt}; history begins at {self._entries[0].vt}"
            )
        return result

    def committed_read_at(self, vt: VirtualTime) -> HistoryEntry[V]:
        """The latest *committed* entry with ``entry.vt <= vt``."""
        result: Optional[HistoryEntry[V]] = None
        for entry in self._entries:
            if entry.vt <= vt and entry.committed:
                result = entry
            if entry.vt > vt:
                break
        if result is None:
            raise ProtocolError(f"no committed value at or before {vt}")
        return result

    def entry_at(self, vt: VirtualTime) -> Optional[HistoryEntry[V]]:
        """The exact entry written at ``vt``, if present."""
        for entry in self._entries:
            if entry.vt == vt:
                return entry
            if entry.vt > vt:
                return None
        return None

    def entries_in_open_interval(
        self, lo: VirtualTime, hi: VirtualTime, committed_only: bool = False
    ) -> List[HistoryEntry[V]]:
        """Entries with ``lo < vt < hi`` — the RL guess check's evidence."""
        found = []
        for entry in self._entries:
            if lo < entry.vt < hi and (entry.committed or not committed_only):
                found.append(entry)
        return found

    def has_uncommitted_in_open_interval(self, lo: VirtualTime, hi: VirtualTime) -> bool:
        """True if an unresolved value sits inside ``(lo, hi)``."""
        return any(lo < e.vt < hi and not e.committed for e in self._entries)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, vt: VirtualTime, value: V, committed: bool = False) -> HistoryEntry[V]:
        """Insert a version at ``vt`` keeping the history sorted.

        Duplicate VTs are a protocol violation (VTs are globally unique and
        each transaction's write reaches a site exactly once).
        """
        entry = HistoryEntry(vt=vt, value=value, committed=committed)
        for i in range(len(self._entries) - 1, -1, -1):
            existing = self._entries[i]
            if existing.vt == vt:
                raise ProtocolError(f"duplicate history entry at {vt}")
            if existing.vt < vt:
                self._entries.insert(i + 1, entry)
                return entry
        self._entries.insert(0, entry)
        return entry

    def set_value_at(self, vt: VirtualTime, value: V) -> None:
        """Replace the value stored at an existing entry (same-txn overwrite)."""
        entry = self.entry_at(vt)
        if entry is None:
            raise ProtocolError(f"no entry at {vt} to overwrite")
        entry.value = value

    def commit(self, vt: VirtualTime) -> bool:
        """Mark the entry at ``vt`` committed; returns False if absent."""
        entry = self.entry_at(vt)
        if entry is None:
            return False
        entry.committed = True
        return True

    def purge(self, vt: VirtualTime) -> bool:
        """Remove the (aborted) entry at ``vt``; returns False if absent."""
        for i, entry in enumerate(self._entries):
            if entry.vt == vt:
                if len(self._entries) == 1:
                    raise ProtocolError("cannot purge the last remaining history entry")
                del self._entries[i]
                return True
        return False

    def gc(self, floor: Optional[VirtualTime] = None) -> int:
        """Garbage-collect versions older than the retention ``floor``.

        Keeps the latest committed entry at or before ``floor`` (still
        readable by snapshots pinned at ``floor``) and everything after it.
        With no floor, collects up to the latest committed entry — the
        paper's "committal makes old values no longer needed".
        Returns the number of entries dropped.
        """
        if floor is None:
            floor = self.committed_current().vt
        base_index = None
        for i, entry in enumerate(self._entries):
            if entry.committed and entry.vt <= floor:
                base_index = i
        if base_index is None or base_index == 0:
            return 0
        dropped = base_index
        self._entries = self._entries[base_index:]
        return dropped

    def __repr__(self) -> str:
        return f"ValueHistory({self._entries!r})"
