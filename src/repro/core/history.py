"""Value histories: the per-object multi-version store.

Each model object holds a *value history* — "a set of pairs of values and
VTs, sorted by VT" (paper section 3) — plus a similarly indexed
*replication graph history*.  The value with the latest VT is the *current*
value.  Histories support:

* optimistic insertion of uncommitted values at a transaction's VT,
* reads "as of" a snapshot VT (pessimistic views read past versions),
* purging on abort (rollback),
* commit marking and commit-driven garbage collection.

The same structure stores scalar values, association values, and
replication graphs; composites use one history per embedded leaf plus
VT-tagged child slots (see :mod:`repro.core.composites`).

Implementation: alongside the entry list the history maintains a parallel
list of ``VirtualTime.key`` tuples, kept in the same order, so every
VT-positional query (``read_at``, ``committed_read_at``, ``entry_at``,
``entries_in_open_interval``, ``insert``) runs in O(log n) via
:mod:`bisect` instead of a linear scan.  A cached index of the latest
committed entry makes ``committed_current()`` O(1).  The naive linear
implementation is preserved verbatim in :mod:`repro.bench.reference` as
the equivalence/benchmark baseline.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.errors import ProtocolError
from repro.vtime import VT_ZERO, VirtualTime

V = TypeVar("V")


@dataclass
class HistoryEntry(Generic[V]):
    """One version: the value written at ``vt`` by the transaction at ``vt``."""

    vt: VirtualTime
    value: V
    committed: bool = False

    def __repr__(self) -> str:
        flag = "c" if self.committed else "u"
        return f"<{self.vt}={self.value!r}:{flag}>"


class ValueHistory(Generic[V]):
    """A VT-sorted multi-version history for one model object.

    The history always contains at least one entry (the initial value at
    ``VT_ZERO``, committed), so ``current()`` and ``read_at()`` are total.
    """

    __slots__ = ("_entries", "_keys", "_latest_committed")

    def __init__(self, initial: V, initial_vt: VirtualTime = VT_ZERO) -> None:
        self._entries: List[HistoryEntry[V]] = [
            HistoryEntry(vt=initial_vt, value=initial, committed=True)
        ]
        # Parallel bisect index: _keys[i] == _entries[i].vt.key, always sorted.
        self._keys: List[Tuple[int, int]] = [initial_vt.key]
        # Index of the latest committed entry, or None if none remains.
        self._latest_committed: Optional[int] = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[HistoryEntry[V]]:
        return iter(self._entries)

    def current(self) -> HistoryEntry[V]:
        """The entry with the latest VT (the paper's *current value*)."""
        return self._entries[-1]

    def committed_current(self) -> HistoryEntry[V]:
        """The latest committed entry."""
        if self._latest_committed is None:
            raise ProtocolError("history lost its committed base entry")
        return self._entries[self._latest_committed]

    def read_at(self, vt: VirtualTime) -> HistoryEntry[V]:
        """The entry in effect at ``vt``: latest entry with ``entry.vt <= vt``."""
        i = bisect_right(self._keys, vt.key) - 1
        if i < 0:
            raise ProtocolError(
                f"no value at or before {vt}; history begins at {self._entries[0].vt}"
            )
        return self._entries[i]

    def committed_read_at(self, vt: VirtualTime) -> HistoryEntry[V]:
        """The latest *committed* entry with ``entry.vt <= vt``."""
        i = bisect_right(self._keys, vt.key) - 1
        entries = self._entries
        while i >= 0 and not entries[i].committed:
            i -= 1
        if i < 0:
            raise ProtocolError(f"no committed value at or before {vt}")
        return entries[i]

    def entry_at(self, vt: VirtualTime) -> Optional[HistoryEntry[V]]:
        """The exact entry written at ``vt``, if present."""
        key = vt.key
        i = bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return self._entries[i]
        return None

    def entries_in_open_interval(
        self, lo: VirtualTime, hi: VirtualTime, committed_only: bool = False
    ) -> List[HistoryEntry[V]]:
        """Entries with ``lo < vt < hi`` — the RL guess check's evidence."""
        start = bisect_right(self._keys, lo.key)
        stop = bisect_left(self._keys, hi.key)
        window = self._entries[start:stop]
        if committed_only:
            return [e for e in window if e.committed]
        return window

    def has_uncommitted_in_open_interval(self, lo: VirtualTime, hi: VirtualTime) -> bool:
        """True if an unresolved value sits inside ``(lo, hi)``."""
        start = bisect_right(self._keys, lo.key)
        stop = bisect_left(self._keys, hi.key)
        entries = self._entries
        return any(not entries[i].committed for i in range(start, stop))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, vt: VirtualTime, value: V, committed: bool = False) -> HistoryEntry[V]:
        """Insert a version at ``vt`` keeping the history sorted.

        Duplicate VTs are a protocol violation (VTs are globally unique and
        each transaction's write reaches a site exactly once).
        """
        key = vt.key
        i = bisect_right(self._keys, key)
        if i > 0 and self._keys[i - 1] == key:
            raise ProtocolError(f"duplicate history entry at {vt}")
        entry = HistoryEntry(vt=vt, value=value, committed=committed)
        self._entries.insert(i, entry)
        self._keys.insert(i, key)
        lc = self._latest_committed
        if lc is not None and i <= lc:
            lc += 1
        if committed and (lc is None or i > lc):
            lc = i
        self._latest_committed = lc
        return entry

    def set_value_at(self, vt: VirtualTime, value: V) -> None:
        """Replace the value stored at an existing entry (same-txn overwrite)."""
        entry = self.entry_at(vt)
        if entry is None:
            raise ProtocolError(f"no entry at {vt} to overwrite")
        entry.value = value

    def commit(self, vt: VirtualTime) -> bool:
        """Mark the entry at ``vt`` committed; returns False if absent."""
        key = vt.key
        i = bisect_left(self._keys, key)
        if i >= len(self._keys) or self._keys[i] != key:
            return False
        self._entries[i].committed = True
        if self._latest_committed is None or i > self._latest_committed:
            self._latest_committed = i
        return True

    def purge(self, vt: VirtualTime) -> bool:
        """Remove the (aborted) entry at ``vt``; returns False if absent."""
        key = vt.key
        i = bisect_left(self._keys, key)
        if i >= len(self._keys) or self._keys[i] != key:
            return False
        if len(self._entries) == 1:
            raise ProtocolError("cannot purge the last remaining history entry")
        del self._entries[i]
        del self._keys[i]
        lc = self._latest_committed
        if lc is not None:
            if i < lc:
                self._latest_committed = lc - 1
            elif i == lc:
                self._latest_committed = self._rescan_latest_committed(i - 1)
        return True

    def _rescan_latest_committed(self, start: int) -> Optional[int]:
        for j in range(start, -1, -1):
            if self._entries[j].committed:
                return j
        return None

    def gc(self, floor: Optional[VirtualTime] = None) -> int:
        """Garbage-collect versions older than the retention ``floor``.

        Keeps the latest committed entry at or before ``floor`` (still
        readable by snapshots pinned at ``floor``) and everything after it.
        With no floor, collects up to the latest committed entry — the
        paper's "committal makes old values no longer needed".
        Returns the number of entries dropped.
        """
        if floor is None:
            if self._latest_committed is None:
                raise ProtocolError("history lost its committed base entry")
            base_index: Optional[int] = self._latest_committed
        else:
            i = bisect_right(self._keys, floor.key) - 1
            while i >= 0 and not self._entries[i].committed:
                i -= 1
            base_index = i if i >= 0 else None
        if base_index is None or base_index == 0:
            return 0
        dropped = base_index
        self._entries = self._entries[base_index:]
        self._keys = self._keys[base_index:]
        lc = self._latest_committed
        self._latest_committed = lc - base_index if lc is not None and lc >= base_index else None
        return dropped

    def __repr__(self) -> str:
        return f"ValueHistory({self._entries!r})"
