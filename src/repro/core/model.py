"""The model-object base class.

Model objects hold application state (paper section 2.1).  Every model
object — scalar, composite, or association — carries:

* a **value history** (VT-sorted versions; for composites the history
  records structure versions and children carry their own histories),
* a **replication graph history** (roots and direct-propagation nodes only;
  embedded objects inherit the root's graph by default — section 3.2),
* **reservation tables** used when the local site is the object's primary
  copy (write-free value intervals and change-free graph intervals),
* the set of attached **view proxies** notified on updates and commits.

Reads and writes inside a transaction route through the site's current
transaction context, which records read times and propagates writes; reads
outside a transaction return the current (optimistic) value directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.core.history import ValueHistory
from repro.core.messages import PathStep
from repro.core.repgraph import GraphNode, ReplicationGraph
from repro.errors import NotAuthorized, ProtocolError
from repro.vtime import IntervalSet, VT_ZERO, VirtualTime

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.auth import AuthorizationMonitor
    from repro.core.site import SiteRuntime
    from repro.core.views import View, ViewProxy


def embed_tag(embed: Any) -> str:
    """A stable textual tag for an embed identity (SlotId or VirtualTime)."""
    vt = getattr(embed, "vt", embed)
    seq = getattr(embed, "seq", None)
    base = f"{vt.counter}@{vt.site}"
    return f"{base}.{seq}" if seq is not None else base


class ModelObject:
    """Base class for all DECAF model objects.

    Subclasses define the value representation and the user-facing
    operations; this base owns identity, replication-graph plumbing,
    reservations, and view attachment.
    """

    kind: str = "abstract"

    def __init__(
        self,
        site: "SiteRuntime",
        name: str,
        parent: Optional["ModelObject"] = None,
        embed_vt: Optional[VirtualTime] = None,
        key: Any = None,
    ) -> None:
        self.site = site
        self.name = name
        self.parent = parent
        #: VT of the transaction that embedded this object in its parent
        #: (None for root objects).  This is the paper's fragile-path tag.
        self.embed_vt = embed_vt
        #: The key under which this object sits in its parent (list slot
        #: identity is the embed VT itself; map children carry their key).
        self.key = key
        if parent is None:
            self.uid = f"s{site.site_id}:{name}"
        else:
            tag = embed_tag(embed_vt) if embed_vt is not None else "?"
            self.uid = f"{parent.uid}[{key if key is not None else ''}#{tag}]"
        # Replication graph history: roots always have one (initially a
        # singleton graph); embedded objects have None until they switch to
        # direct propagation by joining their own collaboration.
        self._graph_history: Optional[ValueHistory[ReplicationGraph]] = None
        if parent is None:
            self._graph_history = ValueHistory(ReplicationGraph.singleton(self.uid, site.site_id))
        #: Write-free reservations, consulted when this site is primary.
        self.value_reservations = IntervalSet()
        #: Change-free graph reservations, consulted when this site is primary.
        self.graph_reservations = IntervalSet()
        #: Subtree-wide write-free reservations made by *pessimistic view
        #: snapshots* at the primary: they block writes anywhere in this
        #: object's subtree (monotonicity protection, section 4.2).
        self.subtree_reservations = IntervalSet()
        #: Attached view proxies (always local — section 4).
        self.proxies: List["ViewProxy"] = []
        #: Primary-side deferred snapshot checks awaiting commit/abort.
        self.pending_snapshot_checks: List[Any] = []
        #: Optional authorization monitor gating access (section 1).
        self.auth: Optional["AuthorizationMonitor"] = None
        site.register_object(self)

    # ------------------------------------------------------------------
    # Replication graph plumbing
    # ------------------------------------------------------------------

    def has_own_graph(self) -> bool:
        """True for roots and embedded nodes switched to direct propagation."""
        return self._graph_history is not None

    def propagation_root(self) -> "ModelObject":
        """The nearest ancestor (or self) that owns a replication graph.

        Updates to this object propagate indirectly through that root
        unless the object itself has switched to direct propagation
        (paper section 3.2).
        """
        node: ModelObject = self
        while not node.has_own_graph():
            if node.parent is None:
                raise ProtocolError(f"object {self.uid} has no propagation root")
            node = node.parent
        return node

    def graph_history(self) -> ValueHistory:
        """The replication graph history of this object's propagation root."""
        root = self.propagation_root()
        assert root._graph_history is not None
        return root._graph_history

    def graph(self) -> ReplicationGraph:
        """The current replication graph (possibly uncommitted)."""
        return self.graph_history().current().value

    def graph_vt(self) -> VirtualTime:
        """The VT at which the replication graph was last changed."""
        return self.graph_history().current().vt

    def enable_direct_propagation(self) -> None:
        """Give this embedded object its own graph (the Fig. 7 switch).

        Called when an embedded node joins a collaboration of its own, so
        its replicas can differ from its root's.  The node starts with a
        singleton graph; the join protocol then merges in the peer's graph.
        """
        if self._graph_history is None:
            self._graph_history = ValueHistory(
                ReplicationGraph.singleton(self.uid, self.site.site_id)
            )

    def replica_sites(self) -> List[int]:
        """All sites holding replicas of this object's propagation root."""
        return self.graph().sites()

    def primary_site(self) -> int:
        """The site of this object's primary copy under the session selector."""
        return self.site.primary_site_of(self.graph())

    def is_primary_here(self) -> bool:
        return self.primary_site() == self.site.site_id

    # ------------------------------------------------------------------
    # Paths (indirect propagation addressing)
    # ------------------------------------------------------------------

    def path_from_root(self) -> Tuple[PathStep, ...]:
        """The VT-tagged path from this object's propagation root to itself."""
        steps: List[PathStep] = []
        node: ModelObject = self
        root = self.propagation_root()
        while node is not root:
            if node.embed_vt is None:
                raise ProtocolError(f"embedded object {node.uid} lacks an embed VT tag")
            steps.append(PathStep(key=node.key, embed_vt=node.embed_vt))
            assert node.parent is not None
            node = node.parent
        steps.reverse()
        return tuple(steps)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def attach(self, view: "View", mode: str = "optimistic") -> "ViewProxy":
        """Attach a view to this object (and, for composites, its subtree).

        ``mode`` is ``"optimistic"`` or ``"pessimistic"`` (section 2.5.1).
        Returns the proxy managing the view's notifications.
        """
        return self.site.views.attach(view, [self], mode)

    def notify_proxies(self, event: str, vt: VirtualTime) -> None:
        """Inform attached proxies (and ancestors' proxies) of an event at ``vt``.

        ``event`` is ``"apply"`` (a value arrived, possibly uncommitted),
        ``"undo"`` (an abort rolled a value back), or ``"commit"``.
        Proxies attached to any ancestor also observe the event, because a
        view attached to a composite tracks "changes to the composite as
        well as to any of its children" (section 2.5).
        """
        node: Optional[ModelObject] = self
        seen = set()
        while node is not None:
            for proxy in node.proxies:
                if id(proxy) not in seen:
                    seen.add(id(proxy))
                    proxy.on_object_event(self, event, vt)
            node = node.parent

    # ------------------------------------------------------------------
    # Authorization
    # ------------------------------------------------------------------

    def set_authorization(self, monitor: Optional["AuthorizationMonitor"]) -> None:
        """Install (or clear) an authorization monitor for this object."""
        self.auth = monitor

    def check_read(self, principal: str) -> None:
        if self.auth is not None and not self.auth.can_read(principal, self):
            raise NotAuthorized(f"{principal} may not read {self.uid}")

    def check_write(self, principal: str) -> None:
        if self.auth is not None and not self.auth.can_write(principal, self):
            raise NotAuthorized(f"{principal} may not write {self.uid}")

    def check_join(self, principal: str) -> None:
        if self.auth is not None and not self.auth.can_join(principal, self):
            raise NotAuthorized(f"{principal} may not join {self.uid}")

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------

    def value_at(self, vt: VirtualTime, committed_only: bool = False) -> Any:
        """Materialize this object's value as of ``vt`` (snapshot read)."""
        raise NotImplementedError

    def current_value_vt(self) -> VirtualTime:
        """The VT of the latest update affecting this object's value."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.uid})"
