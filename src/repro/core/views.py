"""View notification: optimistic and pessimistic views (paper section 4).

A *view object* is user code attached to one or more model objects; it is
notified of changes through its ``update`` method and reads state through a
consistent :class:`Snapshot`.  The infrastructure manages, per attached
view, a *view proxy* and per notification a *snapshot object* stamped with
a virtual time ``t_S``; a snapshot's validity rests on the same RC/RL guess
machinery as transactions (section 4):

* **Optimistic views** are notified as soon as a transaction executes
  locally — possibly of uncommitted state.  The proxy keeps at most one
  uncommitted snapshot (the latest); when its RC guesses (writers commit)
  and RL guesses (no straggler hides in the read intervals, confirmed by
  the primaries) all hold, the view's ``commit`` method is called.  Aborts
  and stragglers simply trigger superseding update notifications.
* **Pessimistic views** are notified only of committed state, losslessly,
  in monotonic VT order.  The proxy creates one snapshot per VT at which an
  attached object receives an update, eagerly requests RL confirmations
  (concurrently with the transaction's own commit protocol — this is what
  makes pessimistic notification latency 2t at the origin and 3t elsewhere,
  section 5.1.2), and delivers snapshots in VT order once the writing
  transaction has committed and every guess is confirmed.  Confirmed
  pessimistic intervals are *reserved* at the primary so no straggler can
  later commit inside them (monotonicity protection).

The module also implements the primary-copy side of snapshot CONFIRM-READ:
immediate verdicts for optimistic checks, and deferred verdicts for
pessimistic checks that must wait for in-interval uncommitted values to
resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.core.messages import SnapshotCheck, SnapshotConfirmMsg, SnapshotReplyMsg
from repro.errors import InvalidPath, ProtocolError
from repro.vtime import VT_ZERO, VirtualTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import ModelObject
    from repro.core.site import SiteRuntime


# ---------------------------------------------------------------------------
# User-facing classes
# ---------------------------------------------------------------------------


class View:
    """Base class for user view objects (paper Fig. 3).

    Implement :meth:`update`; optimistic views may also implement
    :meth:`commit`, called when the most recent update notification is
    known to have shown committed state.
    """

    def update(self, changed: List["ModelObject"], snapshot: "Snapshot") -> None:
        """Notification of a change.  ``changed`` lists exactly the attached
        objects whose value changed since the last notification; read state
        through ``snapshot`` for a consistent picture."""
        raise NotImplementedError

    def commit(self) -> None:
        """The most recent update notification is now known committed."""


class OptimisticView(View):
    """Marker base class for views intended to be attached optimistically."""


class PessimisticView(View):
    """Marker base class for views intended to be attached pessimistically."""


@dataclass
class Snapshot:
    """A consistent read of model state at virtual time ``ts``.

    Reads behave as if instantaneous at ``ts`` with respect to all update
    transactions (section 2.5).  Pessimistic snapshots read committed state
    only.
    """

    ts: VirtualTime
    committed_only: bool

    def read(self, obj: "ModelObject") -> Any:
        """The value of ``obj`` as of this snapshot's virtual time."""
        return obj.value_at(self.ts, self.committed_only)


# ---------------------------------------------------------------------------
# Subtree helpers (a view of a composite tracks the whole subtree)
# ---------------------------------------------------------------------------


def subtree_has_entry_in_interval(
    obj: "ModelObject", lo: VirtualTime, hi: VirtualTime, committed_only: bool
) -> bool:
    """Any value/structure entry with ``lo < vt < hi`` anywhere in the subtree?"""
    for entry in obj.history.entries_in_open_interval(lo, hi, committed_only):
        return True
    for child in _children_of(obj):
        if subtree_has_entry_in_interval(child, lo, hi, committed_only):
            return True
    return False


def subtree_uncommitted_in_interval(
    obj: "ModelObject", lo: VirtualTime, hi: VirtualTime
) -> List[VirtualTime]:
    """Uncommitted entry VTs with ``lo < vt < hi`` anywhere in the subtree."""
    found = [
        e.vt
        for e in obj.history.entries_in_open_interval(lo, hi)
        if not e.committed
    ]
    for child in _children_of(obj):
        found.extend(subtree_uncommitted_in_interval(child, lo, hi))
    return found


def subtree_uncommitted_upto(obj: "ModelObject", ts: VirtualTime) -> List[VirtualTime]:
    """Uncommitted entry VTs with ``vt <= ts`` anywhere in the subtree."""
    found = [e.vt for e in obj.history if not e.committed and e.vt <= ts]
    for child in _children_of(obj):
        found.extend(subtree_uncommitted_upto(child, ts))
    return found


def _children_of(obj: "ModelObject") -> List["ModelObject"]:
    from repro.core.composites import DList, DMap

    if isinstance(obj, DList):
        return [slot.child for slot in obj._slots]
    if isinstance(obj, DMap):
        return [
            slot.child
            for slots in obj._keys.values()
            for slot in slots
            if slot.child is not None
        ]
    return []


def blocking_subtree_reservation(target: "ModelObject", vt: VirtualTime) -> Optional[Any]:
    """NC helper: a pessimistic-snapshot reservation covering ``vt`` on the
    target or any ancestor (snapshot reservations protect whole subtrees)."""
    node: Optional["ModelObject"] = target
    while node is not None:
        blocking = node.subtree_reservations.blocking_reservation(vt)
        if blocking is not None:
            return blocking
        node = node.parent
    return None


# ---------------------------------------------------------------------------
# Snapshot records (requester side)
# ---------------------------------------------------------------------------


@dataclass
class SnapshotRecord:
    """Internal guess-tracking for one view notification's snapshot."""

    snap_id: Tuple[int, int]
    proxy: "ViewProxy"
    ts: VirtualTime
    committed_only: bool
    #: Transport time at record creation (pessimistic delivery latency).
    created_ms: float = 0.0
    pending_sites: Set[int] = field(default_factory=set)
    pending_rc: Set[VirtualTime] = field(default_factory=set)
    denied: bool = False
    dead: bool = False
    changed: List["ModelObject"] = field(default_factory=list)
    delivered: bool = False  # pessimistic: update() already called
    #: Remote checks still awaiting a verdict: (primary site, check, local
    #: object).  Eager write confirmations resolve entries early.
    outstanding: List[Tuple[int, SnapshotCheck, Any]] = field(default_factory=list)

    def ready(self) -> bool:
        return not self.denied and not self.pending_sites and not self.pending_rc


@dataclass
class DeferredCheck:
    """Primary-side pessimistic check waiting for in-interval values to resolve."""

    snap_id: Tuple[int, int]
    origin: int
    check: SnapshotCheck
    target: "ModelObject"


@dataclass
class OutstandingReply:
    """Primary-side aggregation: one reply per (snapshot, this site)."""

    snap_id: Tuple[int, int]
    origin: int
    unresolved: int
    ok: bool = True
    denials: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Proxies
# ---------------------------------------------------------------------------


class ViewProxy:
    """Base proxy: event buffering shared by both notification disciplines."""

    mode = "abstract"

    def __init__(self, manager: "ViewManager", view: View, objects: List["ModelObject"]) -> None:
        self.manager = manager
        self.view = view
        self.objects = list(objects)
        self.site = manager.site
        # Metrics (read by the bench harness).
        self.notifications = 0
        self.commit_notifications = 0
        self.lost_updates = 0
        self.update_inconsistencies = 0
        self.read_inconsistencies = 0
        self._events: List[Tuple["ModelObject", str, VirtualTime]] = []

    def on_object_event(self, obj: "ModelObject", event: str, vt: VirtualTime) -> None:
        """Buffer an event; the manager flushes at the end of the batch."""
        self._events.append((obj, event, vt))
        self.manager.mark_dirty(self)

    def _record_straggler(self, flavor: str, vt: VirtualTime) -> None:
        """Count a straggler symptom in the site registry and the event bus.

        The per-proxy integer counters (incremented by callers) remain the
        bench harness's per-view numbers; this adds the site-wide rollup
        and the timeline event.
        """
        self.site.metrics.inc(f"view.{flavor}")
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "straggler_detected",
                site=self.site.site_id,
                time_ms=self.site.transport.now(),
                txn_vt=vt,
                flavor=flavor,
                mode=self.mode,
            )

    def _record_notify(self, kind: str, ts: VirtualTime, changed: int) -> None:
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "view_notified",
                site=self.site.site_id,
                time_ms=self.site.transport.now(),
                txn_vt=ts,
                mode=self.mode,
                kind=kind,
                changed=changed,
            )

    def flush(self) -> None:
        events, self._events = self._events, []
        self.process_events(events)

    def process_events(self, events: List[Tuple["ModelObject", str, VirtualTime]]) -> None:
        raise NotImplementedError

    def on_snapshot_reply(self, record: SnapshotRecord, ok: bool) -> None:
        raise NotImplementedError

    def attached_root_of(self, obj: "ModelObject") -> "ModelObject":
        """Map an event's (possibly embedded) object to the attached ancestor."""
        node: Optional["ModelObject"] = obj
        while node is not None:
            if any(node is attached for attached in self.objects):
                return node
            node = node.parent
        raise ProtocolError(f"event object {obj.uid} not under any attached object")

    # -- guess plumbing shared by subclasses ----------------------------

    def _register_rc(self, record: SnapshotRecord, dep_vt: VirtualTime) -> None:
        engine = self.site.engine
        state = engine.status.get(dep_vt)
        if state == "committed":
            return
        if state == "aborted":
            record.dead = True
            return
        record.pending_rc.add(dep_vt)
        engine.deps.wait_for(
            dep_vt,
            on_commit=lambda: self._rc_done(record, dep_vt),
            on_abort=lambda: self._rc_abort(record, dep_vt),
        )

    def _rc_done(self, record: SnapshotRecord, dep_vt: VirtualTime) -> None:
        record.pending_rc.discard(dep_vt)
        if not record.dead and record.ready():
            self.on_snapshot_ready(record)

    def _rc_abort(self, record: SnapshotRecord, dep_vt: VirtualTime) -> None:
        record.dead = True
        self.on_snapshot_dead(record, dep_vt)

    def on_snapshot_ready(self, record: SnapshotRecord) -> None:
        raise NotImplementedError

    def on_snapshot_dead(self, record: SnapshotRecord, dep_vt: VirtualTime) -> None:
        """Default: the undo event rolls state back and re-notifies."""


class OptimisticProxy(ViewProxy):
    """Proxy implementing the optimistic discipline of section 4.1."""

    mode = "optimistic"

    def __init__(self, manager: "ViewManager", view: View, objects: List["ModelObject"]) -> None:
        super().__init__(manager, view, objects)
        self.latest: Optional[SnapshotRecord] = None
        self.last_ts: VirtualTime = VT_ZERO

    def bootstrap(self) -> None:
        """Initial notification at attach time."""
        self._notify(changed=list(self.objects))

    def process_events(self, events: List[Tuple["ModelObject", str, VirtualTime]]) -> None:
        changed: List["ModelObject"] = []
        superseding = False
        for obj, event, vt in events:
            if event == "commit":
                continue  # RC resolution is handled through the dep index
            attached = self.attached_root_of(obj)
            if event == "undo":
                # A previously shown value was rolled back: an *update
                # inconsistency* (section 5.1.2); re-notify with the
                # restored state.
                if vt <= self.last_ts:
                    self.update_inconsistencies += 1
                    self._record_straggler("update_inconsistency", vt)
                superseding = True
                if all(attached is not c for c in changed):
                    changed.append(attached)
                continue
            # event == "apply"
            if vt < obj.current_value_vt():
                # A straggler hidden behind a later update of the same
                # object: "the message with the earlier virtual time does
                # not yield a notification" — a *lost update*.
                self.lost_updates += 1
                self._record_straggler("lost_update", vt)
                continue
            if vt < self.last_ts:
                # Visible straggler for a different attached object: the
                # earlier snapshot was inconsistent; supersede it.
                self.read_inconsistencies += 1
                self._record_straggler("read_inconsistency", vt)
            superseding = True
            if all(attached is not c for c in changed):
                changed.append(attached)
        if superseding:
            self._notify(changed)

    def _notify(self, changed: List["ModelObject"]) -> None:
        """Create the (single) latest snapshot and call ``view.update``."""
        ts = max(obj.current_value_vt() for obj in self.objects)
        if self.latest is not None:
            # "An optimistic view proxy maintains at most one uncommitted
            # snapshot — the one with the latest t_S" (section 4.1).
            self.manager.discard_record(self.latest)
            self.latest = None
        record = self.manager.new_record(self, ts, committed_only=False, changed=changed)
        self.latest = record
        self.last_ts = ts
        # RC guesses: every uncommitted contributor at or before ts.
        for obj in self.objects:
            for dep_vt in set(subtree_uncommitted_upto(obj, ts)):
                self._register_rc(record, dep_vt)
        # RL guesses: per attached object, interval (current value VT, ts).
        checks: List[Tuple[int, SnapshotCheck, Any]] = []
        for obj in self.objects:
            lo = obj.current_value_vt()
            if not lo < ts:
                continue
            root = obj.propagation_root()
            primary = self.site.primary_site_of(root.graph())
            dst_uid = root.graph().uid_at_site(primary)
            checks.append(
                (
                    primary,
                    SnapshotCheck(
                        object_uid=dst_uid if dst_uid else root.uid,
                        lo_vt=lo,
                        hi_vt=ts,
                        committed_only=False,
                        path=obj.path_from_root(),
                    ),
                    obj,
                )
            )
        self.notifications += 1
        self._record_notify("update", ts, len(changed))
        self.view.update(changed, Snapshot(ts=ts, committed_only=False))
        self.manager.dispatch_checks(record, checks)
        if record.ready() and not record.dead:
            self.on_snapshot_ready(record)

    def on_snapshot_ready(self, record: SnapshotRecord) -> None:
        if record is not self.latest or record.dead:
            return
        # "An optimistic view will receive a commit notification whenever
        # its most recent update notification is known to have been from a
        # committed state."
        self.latest = None
        self.manager.discard_record(record)
        self.commit_notifications += 1
        self._record_notify("commit", record.ts, len(record.changed))
        self.view.commit()

    def on_snapshot_reply(self, record: SnapshotRecord, ok: bool) -> None:
        if record is not self.latest:
            return
        if not ok:
            # A straggler is on its way; it will supersede this snapshot.
            record.denied = True
            return
        if record.ready() and not record.dead:
            self.on_snapshot_ready(record)


class PessimisticProxy(ViewProxy):
    """Proxy implementing the pessimistic discipline of section 4.2."""

    mode = "pessimistic"

    def __init__(self, manager: "ViewManager", view: View, objects: List["ModelObject"]) -> None:
        super().__init__(manager, view, objects)
        #: VT of the last delivered update notification.
        self.last_notified_vt: VirtualTime = VT_ZERO
        #: Pending snapshots keyed by ts, kept in sorted order for delivery.
        self.pending: Dict[VirtualTime, SnapshotRecord] = {}
        self.monotonicity_skips = 0

    def bootstrap(self) -> None:
        """Deliver the initial committed state and track in-flight updates."""
        ts0 = max(
            (obj.history.committed_current().vt for obj in self.objects), default=VT_ZERO
        )
        for obj in self.objects:
            committed_vt = obj.history.committed_current().vt
            if committed_vt > ts0:
                ts0 = committed_vt
        self.last_notified_vt = ts0
        self.notifications += 1
        self._record_notify("update", ts0, len(self.objects))
        self.view.update(list(self.objects), Snapshot(ts=ts0, committed_only=True))
        # Uncommitted values already applied locally become pending snapshots.
        seen: Set[VirtualTime] = set()
        for obj in self.objects:
            for vt in subtree_uncommitted_upto(obj, VirtualTime(2**62, 2**30)):
                if vt > ts0 and vt not in seen:
                    seen.add(vt)
                    self._create_snapshot(vt, [obj])

    def process_events(self, events: List[Tuple["ModelObject", str, VirtualTime]]) -> None:
        for obj, event, vt in events:
            attached = self.attached_root_of(obj)
            if event == "apply":
                if vt <= self.last_notified_vt:
                    # A committed straggler below the delivered frontier is
                    # prevented by snapshot reservations; an *uncommitted*
                    # one will be denied at the primary and abort.  Either
                    # way it can never be shown monotonically.
                    self.monotonicity_skips += 1
                    self._record_straggler("monotonicity_skip", vt)
                    continue
                existing = self.pending.get(vt)
                if existing is not None:
                    if all(attached is not c for c in existing.changed):
                        existing.changed.append(attached)
                    continue
                self._create_snapshot(vt, [attached])
            elif event == "undo":
                record = self.pending.pop(vt, None)
                if record is not None:
                    self.manager.discard_record(record)
                    self._revise_successor_of(vt)
            elif event == "commit":
                # RC resolution flows through the dep index; nothing here.
                pass
        self._deliver_ready()

    # -- snapshot lifecycle ---------------------------------------------

    def _sorted_pending(self) -> List[SnapshotRecord]:
        return [self.pending[vt] for vt in sorted(self.pending)]

    def _predecessor_ts(self, ts: VirtualTime) -> VirtualTime:
        prior = [vt for vt in self.pending if vt < ts]
        return max(prior) if prior else self.last_notified_vt

    def _successor(self, ts: VirtualTime) -> Optional[SnapshotRecord]:
        later = [vt for vt in self.pending if vt > ts]
        return self.pending[min(later)] if later else None

    def _create_snapshot(self, ts: VirtualTime, changed: List["ModelObject"]) -> None:
        record = self.manager.new_record(self, ts, committed_only=True, changed=list(changed))
        self.pending[ts] = record
        # RC guess: the updating transaction must commit.
        self._register_rc(record, ts)
        self._send_checks(record)
        # A snapshot inserted between existing ones narrows its successor's
        # interval; revise the successor ("the RL guess made by the
        # succeeding snapshot ... is revised" — section 4.2).
        successor = self._successor(ts)
        if successor is not None:
            self._revise(successor)

    def _send_checks(self, record: SnapshotRecord) -> None:
        lo_default = self._predecessor_ts(record.ts)
        checks: List[Tuple[int, SnapshotCheck, Any]] = []
        for obj in self.objects:
            lo = lo_default
            if not lo < record.ts:
                continue
            root = obj.propagation_root()
            primary = self.site.primary_site_of(root.graph())
            dst_uid = root.graph().uid_at_site(primary)
            checks.append(
                (
                    primary,
                    SnapshotCheck(
                        object_uid=dst_uid if dst_uid else root.uid,
                        lo_vt=lo,
                        hi_vt=record.ts,
                        committed_only=True,
                        path=obj.path_from_root(),
                    ),
                    obj,
                )
            )
        self.manager.dispatch_checks(record, checks)

    def _revise(self, record: SnapshotRecord) -> None:
        """Recompute and resend a snapshot's RL checks with a narrower lo."""
        if record.delivered:
            return
        fresh = self.manager.new_record(
            self, record.ts, committed_only=True, changed=list(record.changed)
        )
        fresh.pending_rc = record.pending_rc  # RC waits carry over by ts
        self.manager.discard_record(record)
        self.pending[record.ts] = fresh
        # Re-register RC in case the old record's callbacks were tied to it.
        state = self.site.engine.status.get(record.ts)
        if state != "committed":
            self._register_rc(fresh, record.ts)
        self._send_checks(fresh)

    def _revise_successor_of(self, ts: VirtualTime) -> None:
        successor = self._successor(ts)
        if successor is not None:
            self._revise(successor)

    # -- delivery ----------------------------------------------------------

    def _deliver_ready(self) -> None:
        """Deliver pending snapshots in VT order while they are ready."""
        pre_commit_mutant = "views_pre_commit" in self.site.engine.mutations
        while self.pending:
            first_ts = min(self.pending)
            record = self.pending[first_ts]
            if record.dead:
                self.pending.pop(first_ts)
                self.manager.discard_record(record)
                self._revise_successor_of(first_ts)
                continue
            if pre_commit_mutant:
                # Deliberately broken gating (conformance-canary tests
                # only): deliver as soon as the remote checks are answered,
                # ignoring RC guesses and the commit gate.  The explorer's
                # pessimistic-view oracle must catch this.
                if record.denied or record.pending_sites:
                    return
            else:
                if not record.ready():
                    return
                if self.site.engine.status.get(first_ts) != "committed":
                    return
            self.pending.pop(first_ts)
            self.manager.discard_record(record)
            self.last_notified_vt = first_ts
            record.delivered = True
            self.notifications += 1
            self.site.metrics.observe(
                "view.pessimistic_delivery_ms",
                self.site.transport.now() - record.created_ms,
            )
            self._record_notify("update", first_ts, len(record.changed))
            self.view.update(record.changed, Snapshot(ts=first_ts, committed_only=True))

    def on_snapshot_ready(self, record: SnapshotRecord) -> None:
        self._deliver_ready()

    def on_snapshot_dead(self, record: SnapshotRecord, dep_vt: VirtualTime) -> None:
        # The undo event (same batch) removes the pending snapshot; if the
        # abort resolved through the dep index first, clean up here.
        existing = self.pending.get(record.ts)
        if existing is record:
            self.pending.pop(record.ts, None)
            self.manager.discard_record(record)
            self._revise_successor_of(record.ts)
        self._deliver_ready()

    def on_snapshot_reply(self, record: SnapshotRecord, ok: bool) -> None:
        if self.pending.get(record.ts) is not record:
            return
        if not ok:
            # A committed straggler hides inside our interval; its local
            # arrival will insert an earlier snapshot and revise this one.
            record.denied = True
            return
        self._deliver_ready()


# ---------------------------------------------------------------------------
# The per-site view manager
# ---------------------------------------------------------------------------


class ViewManager:
    """Owns proxies, snapshot bookkeeping, and the CONFIRM-READ protocol."""

    def __init__(self, site: "SiteRuntime") -> None:
        self.site = site
        self.proxies: List[ViewProxy] = []
        self._batch_depth = 0
        self._dirty: List[ViewProxy] = []
        self._snap_seq = 0
        #: Requester-side snapshot records by id.
        self.records: Dict[Tuple[int, int], SnapshotRecord] = {}
        #: Primary-side reply aggregation by (snap_id).
        self.outstanding: Dict[Tuple[int, int], OutstandingReply] = {}
        #: Primary-side deferred pessimistic checks.
        self.deferred: List[DeferredCheck] = []
        #: Snapshot ids whose CONFIRM-READ was addressed to a primary that
        #: failed; re-dispatched once graph repair names a live primary.
        self._orphans: List[Tuple[int, int]] = []

    # -- attachment ------------------------------------------------------

    def attach(self, view: View, objects: List["ModelObject"], mode: str) -> ViewProxy:
        if mode == "optimistic":
            proxy: ViewProxy = OptimisticProxy(self, view, objects)
        elif mode == "pessimistic":
            proxy = PessimisticProxy(self, view, objects)
        else:
            raise ValueError(f"unknown view mode {mode!r}")
        self.proxies.append(proxy)
        for obj in objects:
            obj.proxies.append(proxy)
        proxy.bootstrap()
        return proxy

    def detach(self, proxy: ViewProxy) -> None:
        if proxy in self.proxies:
            self.proxies.remove(proxy)
        for obj in proxy.objects:
            if proxy in obj.proxies:
                obj.proxies.remove(proxy)
        for snap_id, record in list(self.records.items()):
            if record.proxy is proxy:
                del self.records[snap_id]

    # -- batching ----------------------------------------------------------

    def begin_batch(self) -> None:
        self._batch_depth += 1

    def end_batch(self) -> None:
        if self._batch_depth <= 0:
            raise ProtocolError("unbalanced view batch")
        self._batch_depth -= 1
        if self._batch_depth == 0:
            while self._dirty:
                proxy = self._dirty.pop(0)
                proxy.flush()

    def mark_dirty(self, proxy: ViewProxy) -> None:
        if self._batch_depth == 0:
            proxy.flush()
        elif proxy not in self._dirty:
            self._dirty.append(proxy)

    # -- snapshot records (requester side) ---------------------------------

    def new_record(
        self,
        proxy: ViewProxy,
        ts: VirtualTime,
        committed_only: bool,
        changed: List["ModelObject"],
    ) -> SnapshotRecord:
        self._snap_seq += 1
        snap_id = (self.site.site_id, self._snap_seq)
        record = SnapshotRecord(
            snap_id=snap_id,
            proxy=proxy,
            ts=ts,
            committed_only=committed_only,
            created_ms=self.site.transport.now(),
            changed=changed,
        )
        self.records[snap_id] = record
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "snapshot_taken",
                site=self.site.site_id,
                time_ms=record.created_ms,
                txn_vt=ts,
                mode=proxy.mode,
                committed_only=committed_only,
            )
        return record

    def discard_record(self, record: SnapshotRecord) -> None:
        self.records.pop(record.snap_id, None)

    def dispatch_checks(
        self, record: SnapshotRecord, checks: List[Tuple[int, SnapshotCheck, Any]]
    ) -> None:
        """Evaluate local checks and send one CONFIRM-READ per remote primary."""
        by_site: Dict[int, List[Tuple[SnapshotCheck, Any]]] = {}
        for primary, check, obj in checks:
            by_site.setdefault(primary, []).append((check, obj))
        me = self.site.site_id
        for primary, site_checks in sorted(by_site.items()):
            record.pending_sites.add(primary)
            if primary != me and primary in self.site.failures.failed:
                # The current graph still names a dead primary (repair has
                # not committed yet); park the checks and re-dispatch once
                # a live primary is implied by the repaired graph.
                for check, obj in site_checks:
                    record.outstanding.append((primary, check, obj))
                self._orphan(record.snap_id)
                continue
            msg = SnapshotConfirmMsg(
                snap_id=record.snap_id,
                origin=me,
                checks=tuple(check for check, _obj in site_checks),
                clock=self.site.clock.counter,
            )
            if primary == me:
                # Local-primary fast path: same aggregation logic, no
                # network round trip.
                self.on_confirm_request(me, msg)
            else:
                for check, obj in site_checks:
                    record.outstanding.append((primary, check, obj))
                self.site.send(primary, msg)

    # -- failure handling (requester and primary side) ---------------------

    def _orphan(self, snap_id: Tuple[int, int]) -> None:
        if snap_id not in self._orphans:
            self._orphans.append(snap_id)

    def on_site_failed(self, failed: int) -> None:
        """React to a fail-stop notification (paper section 3.4).

        Primary-side state owed to the dead site is dropped (its reply has
        nowhere to go); requester-side records whose CONFIRM-READ was
        addressed to the dead primary are queued for re-dispatch against
        the post-repair graph — without this, a pessimistic view whose
        primary crashes mid-check would block forever.
        """
        for snap_id, reply in list(self.outstanding.items()):
            if reply.origin == failed:
                del self.outstanding[snap_id]
        self.deferred = [d for d in self.deferred if d.origin != failed]
        for record in self.records.values():
            if failed in record.pending_sites:
                self._orphan(record.snap_id)
        self.maybe_retry_orphans()

    def maybe_retry_orphans(self) -> None:
        """Re-dispatch orphaned checks whose object now has a live primary."""
        if not self._orphans:
            return
        failed = self.site.failures.failed
        pending, self._orphans = self._orphans, []
        still: List[Tuple[int, int]] = []
        for snap_id in pending:
            record = self.records.get(snap_id)
            if record is None or record.dead or record.delivered:
                continue  # superseded, revised, or resolved meanwhile
            if not record.pending_sites & failed:
                continue
            if record.pending_sites - failed:
                # Replies from live primaries are still in flight; wait for
                # them so one primary never aggregates two requests for the
                # same snapshot at once.
                still.append(snap_id)
                continue
            entries = [e for e in record.outstanding if e[0] in failed]
            new_checks: List[Tuple[int, SnapshotCheck, Any]] = []
            repaired = True
            for _old_primary, check, obj in entries:
                root = obj.propagation_root()
                primary = self.site.primary_site_of(root.graph())
                if primary in failed:
                    repaired = False
                    break
                dst_uid = root.graph().uid_at_site(primary)
                new_checks.append(
                    (
                        primary,
                        SnapshotCheck(
                            object_uid=dst_uid if dst_uid else root.uid,
                            lo_vt=check.lo_vt,
                            hi_vt=check.hi_vt,
                            committed_only=check.committed_only,
                            path=check.path,
                        ),
                        obj,
                    )
                )
            if not repaired:
                still.append(snap_id)  # graph repair has not committed yet
                continue
            record.outstanding = [e for e in record.outstanding if e[0] not in failed]
            record.pending_sites -= failed
            self.dispatch_checks(record, new_checks)
            if record.ready() and not record.dead:
                record.proxy.on_snapshot_ready(record)
        # dispatch_checks above may have re-orphaned records (e.g. the new
        # primary is dead too); keep those alongside the still-waiting ones.
        for snap_id in self._orphans:
            if snap_id not in still:
                still.append(snap_id)
        self._orphans = still

    # -- primary side --------------------------------------------------------

    def on_confirm_request(self, src: int, msg: SnapshotConfirmMsg) -> None:
        reply = OutstandingReply(
            snap_id=msg.snap_id, origin=msg.origin, unresolved=len(msg.checks)
        )
        self.outstanding[msg.snap_id] = reply
        for check in msg.checks:
            verdict = self._evaluate_remote_check(msg.snap_id, msg.origin, check)
            if verdict is not None:
                reply.unresolved -= 1
                if not verdict:
                    reply.ok = False
                    reply.denials.append(check.object_uid)
        self._maybe_reply(reply)

    def _resolve_target(self, check: SnapshotCheck) -> Optional["ModelObject"]:
        from repro.core import propagation

        root = self.site.objects.get(check.object_uid)
        if root is None:
            return None
        try:
            return propagation.resolve_path(root, check.path)
        except InvalidPath:
            return None

    def _evaluate_remote_check(
        self, snap_id: Tuple[int, int], origin: int, check: SnapshotCheck
    ) -> Optional[bool]:
        """True/False verdict, or None if deferred (pessimistic only)."""
        target = self._resolve_target(check)
        if target is None:
            return False
        if not check.committed_only:
            # Optimistic: any in-interval entry denies immediately; no
            # reservation is made (a straggler simply supersedes the view).
            return not subtree_has_entry_in_interval(
                target, check.lo_vt, check.hi_vt, committed_only=False
            )
        return self._evaluate_pessimistic(snap_id, origin, check, target)

    def _evaluate_pessimistic(
        self,
        snap_id: Tuple[int, int],
        origin: int,
        check: SnapshotCheck,
        target: "ModelObject",
    ) -> Optional[bool]:
        if subtree_has_entry_in_interval(target, check.lo_vt, check.hi_vt, committed_only=True):
            return False
        unresolved = subtree_uncommitted_in_interval(target, check.lo_vt, check.hi_vt)
        if unresolved:
            # Defer: the answer depends on whether those transactions commit.
            self.deferred.append(
                DeferredCheck(snap_id=snap_id, origin=origin, check=check, target=target)
            )
            return None
        # Confirmed: reserve the interval so no straggler can ever commit
        # inside it (monotonicity protection for delivered snapshots).
        target.subtree_reservations.reserve(check.lo_vt, check.hi_vt, owner=("snap",) + snap_id)
        return True

    def _maybe_reply(self, reply: OutstandingReply) -> None:
        if reply.unresolved > 0:
            return
        self.outstanding.pop(reply.snap_id, None)
        if reply.origin == self.site.site_id:
            record = self.records.get(reply.snap_id)
            if record is not None:
                record.pending_sites.discard(self.site.site_id)
                if not reply.ok:
                    record.denied = True
                record.proxy.on_snapshot_reply(record, ok=reply.ok)
            return
        self.site.send(
            reply.origin,
            SnapshotReplyMsg(
                snap_id=reply.snap_id,
                ok=reply.ok,
                denials=tuple(reply.denials),
                clock=self.site.clock.counter,
            ),
        )

    def on_txn_resolved(self, vt: VirtualTime, committed: bool) -> None:
        """Re-evaluate deferred pessimistic checks after a commit/abort."""
        still_deferred: List[DeferredCheck] = []
        resolved: List[Tuple[DeferredCheck, bool]] = []
        for deferred in self.deferred:
            check = deferred.check
            if subtree_has_entry_in_interval(
                deferred.target, check.lo_vt, check.hi_vt, committed_only=True
            ):
                resolved.append((deferred, False))
                continue
            if subtree_uncommitted_in_interval(deferred.target, check.lo_vt, check.hi_vt):
                still_deferred.append(deferred)
                continue
            deferred.target.subtree_reservations.reserve(
                check.lo_vt, check.hi_vt, owner=("snap",) + deferred.snap_id
            )
            resolved.append((deferred, True))
        self.deferred = still_deferred
        for deferred, ok in resolved:
            reply = self.outstanding.get(deferred.snap_id)
            if reply is None:
                continue
            reply.unresolved -= 1
            if not ok:
                reply.ok = False
                reply.denials.append(deferred.check.object_uid)
            self._maybe_reply(reply)
        # A commit may be the graph-repair transaction that names a new
        # primary for orphaned snapshot checks.
        self.maybe_retry_orphans()

    # -- requester side: replies -------------------------------------------

    def on_confirm_reply(self, src: int, msg: SnapshotReplyMsg) -> None:
        record = self.records.get(msg.snap_id)
        if record is None:
            return  # superseded snapshot; stale reply
        record.pending_sites.discard(src)
        record.outstanding = [e for e in record.outstanding if e[0] != src]
        if not msg.ok:
            record.denied = True
        record.proxy.on_snapshot_reply(record, ok=msg.ok)

    def on_write_confirmed(self, src: int, msg) -> None:
        """Eager write confirmation (section 5.3 "faster commit of snapshots").

        The primary vouches that ``(lo_vt, hi_vt)`` is write-free for the
        named object; any outstanding snapshot check whose interval lies
        inside it is resolved locally, without waiting for its own reply.
        (The CONFIRM-READ already in flight still installs the monotonicity
        reservation at the primary; its late reply is ignored.)
        """
        obj = self.site.objects.get(msg.object_uid)
        if obj is None:
            return
        for record in list(self.records.values()):
            if not record.outstanding:
                continue
            satisfied = [
                entry
                for entry in record.outstanding
                if entry[2] is obj
                and msg.lo_vt <= entry[1].lo_vt
                and entry[1].hi_vt <= msg.hi_vt
            ]
            if not satisfied:
                continue
            record.outstanding = [e for e in record.outstanding if e not in satisfied]
            resolved_sites = {site for site, _c, _o in satisfied}
            for site_id in resolved_sites:
                if all(e[0] != site_id for e in record.outstanding):
                    record.pending_sites.discard(site_id)
            if not record.dead:
                record.proxy.on_snapshot_reply(record, ok=True)

    # -- GC support -----------------------------------------------------------

    def retention_floor(self, obj: "ModelObject") -> Optional[VirtualTime]:
        """The oldest VT any local pending snapshot may still read for ``obj``."""
        floor: Optional[VirtualTime] = None
        node: Optional["ModelObject"] = obj
        while node is not None:
            for proxy in node.proxies:
                if isinstance(proxy, PessimisticProxy):
                    candidate = proxy.last_notified_vt
                    if proxy.pending:
                        pending_min = min(proxy.pending)
                        if pending_min < candidate:
                            candidate = pending_min
                    if floor is None or candidate < floor:
                        floor = candidate
            node = node.parent
        return floor

    # -- aggregate metrics ------------------------------------------------

    def total_counters(self) -> Dict[str, int]:
        totals = {
            "notifications": 0,
            "commit_notifications": 0,
            "lost_updates": 0,
            "update_inconsistencies": 0,
            "read_inconsistencies": 0,
        }
        for proxy in self.proxies:
            totals["notifications"] += proxy.notifications
            totals["commit_notifications"] += proxy.commit_notifications
            totals["lost_updates"] += proxy.lost_updates
            totals["update_inconsistencies"] += proxy.update_inconsistencies
            totals["read_inconsistencies"] += proxy.read_inconsistencies
        return totals
