"""Sessions: wiring site runtimes, transports, and convenience helpers.

A :class:`Session` owns the transport and the roster of sites.  It also
provides the common setup helpers used by tests, examples, and benchmarks —
notably :meth:`replicate`, which builds a fully joined replica relationship
across sites using the real association/invitation/join protocol of
sections 2.6 and 3.3 (no back-door state copying).

Replicable kinds are a class-keyed registry: ``session.replicate(DInt, ...)``
names the type directly, and applications extend the vocabulary with
:func:`register_replicable`.  The historical string kinds (``"int"``,
``"list"``, ...) remain as deprecated aliases.
"""

from __future__ import annotations

import contextlib
import warnings
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Type, Union

from repro.core.association import Association
from repro.core.composites import DList, DMap
from repro.core.model import ModelObject
from repro.core.repgraph import PrimarySelector
from repro.core.scalars import DFloat, DInt, DString
from repro.core.site import SiteRuntime
from repro.errors import ReproError
from repro.obs.events import EventBus
from repro.sim.network import Network
from repro.sim.scheduler import Scheduler
from repro.transport.base import Transport
from repro.transport.memory import MemoryTransport
from repro.transport.simnet import SimTransport

# ---------------------------------------------------------------------------
# Replicable-kind registry
# ---------------------------------------------------------------------------

#: Factory signature: ``factory(site, name, initial) -> ModelObject``.
ReplicableFactory = Callable[[SiteRuntime, str, Any], ModelObject]

_REPLICABLE: Dict[type, ReplicableFactory] = {}
#: Deprecated string kinds -> registered class.
_KIND_ALIASES: Dict[str, type] = {}


def register_replicable(
    cls: Type[ModelObject],
    factory: ReplicableFactory,
    alias: Optional[str] = None,
) -> None:
    """Teach :meth:`Session.replicate` to build objects of ``cls``.

    ``factory(site, name, initial)`` must create a *local* object at
    ``site``; the replicate helper handles association, invitation, and
    join.  ``alias`` additionally registers a deprecated string kind for
    the legacy ``replicate("int", ...)`` spelling.
    """
    _REPLICABLE[cls] = factory
    if alias is not None:
        _KIND_ALIASES[alias] = cls


register_replicable(
    DInt, lambda s, name, initial: s.create_int(name, initial if initial is not None else 0),
    alias="int",
)
register_replicable(
    DFloat,
    lambda s, name, initial: s.create_float(name, initial if initial is not None else 0.0),
    alias="float",
)
register_replicable(
    DString,
    lambda s, name, initial: s.create_string(name, initial if initial is not None else ""),
    alias="string",
)
register_replicable(DList, lambda s, name, initial: s.create_list(name), alias="list")
register_replicable(DMap, lambda s, name, initial: s.create_map(name), alias="map")


class Session:
    """A collaboration session: a transport plus its participating sites."""

    def __init__(
        self,
        transport: Optional[Transport] = None,
        primary_selector: Optional[PrimarySelector] = None,
        max_retries: int = 50,
        delegation_enabled: bool = True,
        eager_view_confirms: bool = False,
        batching: bool = False,
        roster: Optional[Iterable[int]] = None,
    ) -> None:
        self.transport = transport if transport is not None else MemoryTransport()
        self.primary_selector = primary_selector
        self.max_retries = max_retries
        self.delegation_enabled = delegation_enabled
        #: The "faster commit of snapshots" optimization (section 5.3):
        #: primaries eagerly broadcast confirmed write intervals so remote
        #: pessimistic views resolve RL guesses without their own round trip.
        self.eager_view_confirms = eager_view_confirms
        #: When True, each site's outbox coalesces every protocol turn's
        #: fan-out into one Envelope per destination (repro.wire.batch).
        self.batching = batching
        #: Site ids known to belong to the collaboration but hosted
        #: elsewhere (other processes); merged into every site's roster so
        #: the failure protocol and fan-outs see the full membership.
        self.base_roster: set = set(roster) if roster is not None else set()
        self.sites: List[SiteRuntime] = []
        #: The protocol event bus (repro.obs).  Shared with the transport's
        #: network when there is one, so site-level protocol events and
        #: network-level message_sent events interleave on one timeline.
        transport_bus = getattr(self.transport, "bus", None)
        self.bus: EventBus = transport_bus if transport_bus is not None else EventBus()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def simulated(
        latency_ms: float = 50.0, seed: int = 0, **kwargs: Any
    ) -> "Session":
        """A session over a discrete-event network with fixed latency."""
        from repro.sim.network import FixedLatency

        scheduler = Scheduler()
        network = Network(scheduler, latency=FixedLatency(latency_ms), seed=seed)
        return Session(transport=SimTransport(network), **kwargs)

    @property
    def scheduler(self) -> Optional[Scheduler]:
        """The transport's deterministic scheduler, or None.

        Delegates to the transport capability protocol
        (:meth:`repro.transport.base.Transport.scheduler`) instead of the
        old ``isinstance(transport, SimTransport)`` sniffing, so wrapper
        transports (e.g. :class:`~repro.transport.base.TenantTransport`)
        surface the capability transparently.
        """
        return self.transport.scheduler()

    @property
    def network(self) -> Optional[Network]:
        """The transport's simulated network capability, or None."""
        return self.transport.network()

    def add_site(
        self,
        name: str = "",
        principal: str = "",
        site_id: Optional[int] = None,
    ) -> SiteRuntime:
        """Create a site runtime and update every roster.

        ``site_id`` defaults to the next local index; cross-process sessions
        pass explicit ids so each process hosts its own slice of one global
        numbering (the transport routes by these ids).
        """
        if site_id is None:
            site_id = len(self.sites)
        if any(s.site_id == site_id for s in self.sites):
            raise ReproError(f"site id {site_id} already exists in this session")
        site = SiteRuntime(
            site_id,
            self.transport,
            name=name,
            principal=principal,
            session=self,
            max_retries=self.max_retries,
            delegation_enabled=self.delegation_enabled,
            eager_view_confirms=self.eager_view_confirms,
            batching=self.batching,
        )
        self.sites.append(site)
        roster = self.base_roster | {s.site_id for s in self.sites}
        for s in self.sites:
            s.roster = set(roster)
        return site

    def add_sites(self, count: int, prefix: str = "site") -> List[SiteRuntime]:
        base = len(self.sites)
        return [self.add_site(f"{prefix}{base + i}") for i in range(count)]

    # ------------------------------------------------------------------
    # Progress helpers
    # ------------------------------------------------------------------

    def settle(self, max_events: int = 10_000_000) -> None:
        """Deliver all in-flight messages (quiesce the system).

        Delegates to the transport's own :meth:`~repro.transport.base.Transport.quiesce`;
        event-loop transports raise and must be awaited via ``aquiesce()``.
        """
        self.transport.quiesce(max_events=max_events)

    def run_for(self, ms: float) -> None:
        """Advance a simulated session by ``ms`` milliseconds."""
        scheduler = self.scheduler
        if scheduler is None:
            raise ReproError("run_for requires a simulated transport")
        scheduler.run(until=scheduler.now + ms)

    @contextlib.contextmanager
    def batched(self):
        """An explicit coalescing window across every local site.

        All messages sent inside the block leave as one envelope per
        (site, destination) pair when it closes — independent of the
        session-level ``batching`` flag, so callers can batch a known
        burst (bulk loading, many small transactions) ad hoc.
        """
        for site in self.sites:
            site.outbox.begin_turn()
        try:
            yield self
        finally:
            for site in self.sites:
                site.outbox.end_turn()

    # ------------------------------------------------------------------
    # Replication setup (uses the real join protocol)
    # ------------------------------------------------------------------

    def replicate(
        self,
        kind: Union[Type[ModelObject], str],
        name: str,
        sites: Sequence[SiteRuntime],
        initial: Any = None,
    ) -> List[ModelObject]:
        """Create one object per site and join them all into one relationship.

        ``kind`` is a registered model-object class (``DInt``, ``DList``,
        ...; extend with :func:`register_replicable`).  The first site
        creates the object, an association, and a relationship; every other
        site imports an invitation and joins its own local object.  Returns
        the objects in site order.  The session is settled between steps,
        so on return the relationship is established and committed.
        """
        if not sites:
            raise ReproError("replicate requires at least one site")
        if isinstance(kind, str):
            cls = _KIND_ALIASES.get(kind)
            if cls is None:
                raise ReproError(f"cannot replicate objects of kind {kind!r}")
            warnings.warn(
                f"Session.replicate({kind!r}, ...) is deprecated; "
                f"pass the class (Session.replicate({cls.__name__}, ...)). "
                "String kinds will be removed on 2026-12-31.",
                DeprecationWarning,
                stacklevel=2,
            )
            kind = cls
        factory = _REPLICABLE.get(kind)
        if factory is None:
            raise ReproError(
                f"cannot replicate objects of kind {kind!r}; "
                "register the class with repro.core.session.register_replicable"
            )
        owner = sites[0]
        objects = [factory(owner, name, initial)]
        assoc = owner.create_association(f"{name}.assoc")
        rel_id = f"{name}.rel"

        def create_rel() -> None:
            assoc.create_relationship(rel_id)

        owner.transact(create_rel)
        self.settle()
        owner.join(assoc, rel_id, objects[0])
        self.settle()
        invitation = assoc.make_invitation()
        for site in sites[1:]:
            local_assoc = site.import_invitation(invitation, f"{name}.assoc")
            self.settle()
            obj = factory(site, name, initial)
            objects.append(obj)
            site.join(local_assoc, rel_id, obj)
            self.settle()
        return objects

    # ------------------------------------------------------------------
    # Observability / metrics
    # ------------------------------------------------------------------

    def observe(self) -> EventBus:
        """Start recording the protocol event timeline; returns the bus."""
        self.bus.enable()
        return self.bus

    def metrics_snapshot(self) -> List[Dict[str, Any]]:
        """Deterministic per-site metrics registry dumps, in site order.

        When the transport owns its own registry (the site −1 registry of
        the TCP/asyncio transports: frame counters, dial telemetry), its
        snapshot is appended after the sites so host-level wire metrics
        are not silently dropped from rollups.
        """
        snaps = [site.metrics.snapshot() for site in self.sites]
        transport_metrics = getattr(self.transport, "metrics", None)
        if transport_metrics is not None:
            snaps.append(transport_metrics.snapshot())
        return snaps

    def counters(self) -> Dict[str, int]:
        """Aggregated protocol counters across all sites.

        Includes the transport-level (site −1) registry's counters when
        the transport has one, namespaced under their own ``transport.*``
        keys, so wire-plane totals ride along with the protocol counters.
        """
        totals: Dict[str, int] = {}
        for site in self.sites:
            for key, value in site.counters().items():
                totals[key] = totals.get(key, 0) + value
        transport_metrics = getattr(self.transport, "metrics", None)
        if transport_metrics is not None:
            for key, value in transport_metrics.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def __repr__(self) -> str:
        return f"Session(sites={[s.name for s in self.sites]})"
