"""Client failure handling (paper section 3.4).

The communication layer presents crashes and disconnections as fail-stop
failures.  On a failure notification, three things happen:

1. **Blocked local transactions.**  Transactions this site originated that
   are waiting on a confirmation from the failed site (it was a primary or
   our delegate) are aborted and queued for re-execution once the
   replication graphs have been repaired and a new primary is implied
   ("it is retried later after the graph update has committed and a new
   primary site is identified").
2. **In-flight transactions of the failed origin.**  The surviving sites
   "determine if any of them received a commit message ... If so, the
   transaction is committed at all the sites; else, it is aborted."  A
   deterministic coordinator (the minimum surviving site) queries all
   survivors, unions their in-flight lists, decides, and broadcasts the
   resolution.
3. **Graph repair.**  Every replication graph containing the failed site
   is rewritten without it.  If the graph's primary survives, that primary
   runs an ordinary timestamped transaction.  If the *primary itself*
   failed (the circularity case), the coordinator runs a two-round
   consensus: propose an apply-VT, collect acknowledgements from all
   survivors, then order the graph update applied as a committed write at
   that common virtual time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.core.messages import (
    FailQueryMsg,
    FailQueryReplyMsg,
    FailResolutionMsg,
    GraphRepairAckMsg,
    GraphRepairApplyMsg,
    GraphRepairProposeMsg,
    OpPayload,
)
from repro.core.transaction import TxnState
from repro.errors import ProtocolError
from repro.obs.metrics import counter_property
from repro.vtime import VirtualTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import ModelObject
    from repro.core.site import SiteRuntime


class _QueryState:
    """Coordinator-side aggregation for one failure-resolution round.

    ``kind`` is "origin" for the site-wide resolution of a failed origin's
    in-flight transactions, or "delegated" for an originating site
    resolving its own transaction whose DELEGATE failed (the delegate may
    have broadcast COMMIT before dying — paper section 3.4: commit if any
    survivor logged it, abort otherwise).
    """

    def __init__(
        self,
        failed_site: int,
        awaiting: Set[int],
        kind: str = "origin",
        record: Any = None,
    ) -> None:
        self.failed_site = failed_site
        self.awaiting = set(awaiting)
        self.committed: Set[VirtualTime] = set()
        self.pending: Set[VirtualTime] = set()
        self.kind = kind
        self.record = record


class _RepairState:
    """Coordinator-side aggregation for one graph-repair consensus round."""

    def __init__(self, failed_site: int, apply_vt: VirtualTime, awaiting: Set[int]) -> None:
        self.failed_site = failed_site
        self.apply_vt = apply_vt
        self.awaiting = set(awaiting)


class FailureManager:
    """Per-site driver of the section 3.4 failure protocols."""

    # Registry-backed metrics (see repro.obs.metrics).
    resolutions_committed = counter_property("fail.resolutions_committed")
    resolutions_aborted = counter_property("fail.resolutions_aborted")
    graphs_repaired = counter_property("fail.graphs_repaired")

    def __init__(self, site: "SiteRuntime") -> None:
        self.site = site
        self.failed: Set[int] = set()
        self._seq = 0
        self.queries: Dict[Tuple[int, int], _QueryState] = {}
        self.repairs: Dict[Tuple[int, int], _RepairState] = {}
        #: Transactions to re-run once repair completes.
        self.deferred_retries: List[Tuple[Any, Any, Any]] = []

    def _next_id(self) -> Tuple[int, int]:
        self._seq += 1
        return (self.site.site_id, self._seq)

    def survivors(self) -> Set[int]:
        return set(self.site.roster) - self.failed

    # ==================================================================
    # Entry point
    # ==================================================================

    def on_site_failed(self, failed_site: int) -> None:
        if failed_site in self.failed:
            return
        self.failed.add(failed_site)
        self.site.roster.discard(failed_site)
        # A failed site can never answer or ack an in-progress round; drop
        # it from every wait set ("the protocol is repeated until all the
        # fail notifications are successfully applied" — section 3.4).
        for state in list(self.queries.values()):
            state.awaiting.discard(failed_site)
        for query_id, state in list(self.queries.items()):
            if not state.awaiting:
                self._finish_resolution(query_id)
        for state in list(self.repairs.values()):
            state.awaiting.discard(failed_site)
        for proposal_id, state in list(self.repairs.items()):
            if not state.awaiting:
                self._finish_repair(proposal_id)
        self._abort_blocked_transactions(failed_site)
        survivors = self.survivors()
        coordinator = min(survivors) if survivors else self.site.site_id
        if self.site.site_id == coordinator:
            # Re-run resolution for EVERY known failed site: an earlier
            # round may have died with its coordinator.
            for dead in sorted(self.failed):
                self._start_resolution(dead)
        self._repair_graphs(failed_site, coordinator)

    # ------------------------------------------------------------------
    # 1. Local transactions blocked on the failed site
    # ------------------------------------------------------------------

    def _abort_blocked_transactions(self, failed_site: int) -> None:
        engine = self.site.engine
        for record in list(engine.records.values()):
            if failed_site not in record.pending_confirm_sites:
                continue
            if record.state == TxnState.DELEGATED:
                # The failed site held the COMMIT DECISION and may have
                # broadcast it before dying: run the section 3.4
                # resolution instead of aborting unilaterally.
                self._resolve_delegated(record, failed_site)
                continue
            if record.state != TxnState.AWAITING:
                continue
            # AWAITING: the decision still rests here, so nobody can have
            # committed; abort and re-run after graph repair ("it is
            # retried later after the graph update has committed and a new
            # primary site is identified").
            txn, outcome = record.txn, record.outcome
            post = record.post_execute
            engine._abort_origin(
                record, f"primary site {failed_site} failed", retry=False
            )
            # Undo the no-retry flag: we re-run after graph repair.
            outcome.aborted_no_retry = False
            outcome.abort_reason = ""
            self.deferred_retries.append((txn, outcome, post))

    def _resolve_delegated(self, record, failed_delegate: int) -> None:
        """Origin-run resolution for a transaction whose delegate failed."""
        others = self.survivors() - {self.site.site_id}
        query_id = self._next_id()
        state = _QueryState(
            failed_delegate, awaiting=others, kind="delegated", record=record
        )
        local_status = self.site.engine.status.get(record.vt)
        if local_status == "committed":
            state.committed.add(record.vt)
        state.pending.add(record.vt)
        self.queries[query_id] = state
        if not others:
            self._finish_resolution(query_id)
            return
        for dst in sorted(others):
            self.site.send(
                dst,
                FailQueryMsg(
                    query_id=query_id,
                    origin=self.site.site_id,
                    failed_site=failed_delegate,
                    txn_vts=(record.vt,),
                    clock=self.site.clock.counter,
                ),
            )

    def _run_deferred_retries(self) -> None:
        retries, self.deferred_retries = self.deferred_retries, []
        for txn, outcome, post in retries:
            self.site.defer(
                lambda t=txn, o=outcome, p=post: self.site.engine.run(t, o, post_execute=p)
            )

    # ------------------------------------------------------------------
    # 2. Resolution of in-flight transactions from the failed origin
    # ------------------------------------------------------------------

    def _local_inflight_of(self, failed_site: int) -> Tuple[Set[VirtualTime], Set[VirtualTime]]:
        """(committed, pending) transactions of ``failed_site`` known locally."""
        engine = self.site.engine
        committed: Set[VirtualTime] = set()
        pending: Set[VirtualTime] = set()
        for vt in engine.applied:
            if vt.site != failed_site:
                continue
            state = engine.status.get(vt)
            if state == "committed":
                committed.add(vt)
            elif state is None:
                pending.add(vt)
        for vt, state in engine.status.items():
            if vt.site == failed_site and state == "committed":
                committed.add(vt)
        return committed, pending

    def _start_resolution(self, failed_site: int) -> None:
        committed, pending = self._local_inflight_of(failed_site)
        others = self.survivors() - {self.site.site_id}
        query_id = self._next_id()
        state = _QueryState(failed_site, awaiting=others)
        state.committed |= committed
        state.pending |= pending
        self.queries[query_id] = state
        if not others:
            self._finish_resolution(query_id)
            return
        for dst in sorted(others):
            self.site.send(
                dst,
                FailQueryMsg(
                    query_id=query_id,
                    origin=self.site.site_id,
                    failed_site=failed_site,
                    txn_vts=tuple(sorted(pending)),
                    clock=self.site.clock.counter,
                ),
            )

    def on_query(self, src: int, msg: FailQueryMsg) -> None:
        committed, pending = self._local_inflight_of(msg.failed_site)
        # Also report on explicitly listed transactions (delegated-commit
        # resolution asks about VTs whose origin is the ASKER, not the
        # failed site).
        for vt in msg.txn_vts:
            state = self.site.engine.status.get(vt)
            if state == "committed":
                committed.add(vt)
            elif state is None and vt in self.site.engine.applied:
                pending.add(vt)
        self.site.send(
            src,
            FailQueryReplyMsg(
                query_id=msg.query_id,
                site=self.site.site_id,
                committed=tuple(sorted(committed)),
                pending=tuple(sorted(pending)),
                clock=self.site.clock.counter,
            ),
        )

    def on_query_reply(self, src: int, msg: FailQueryReplyMsg) -> None:
        state = self.queries.get(msg.query_id)
        if state is None:
            return
        state.awaiting.discard(msg.site)
        state.committed |= set(msg.committed)
        state.pending |= set(msg.pending)
        if not state.awaiting:
            self._finish_resolution(msg.query_id)

    def _finish_resolution(self, query_id: Tuple[int, int]) -> None:
        state = self.queries.pop(query_id)
        if state.kind == "delegated":
            self._finish_delegated_resolution(state)
            return
        commit_vts = tuple(sorted(state.committed & state.pending | state.committed))
        abort_vts = tuple(sorted(state.pending - state.committed))
        resolution = FailResolutionMsg(
            query_id=query_id,
            commit_vts=commit_vts,
            abort_vts=abort_vts,
            clock=self.site.clock.counter,
        )
        for dst in sorted(self.survivors() - {self.site.site_id}):
            self.site.send(dst, resolution)
        self._apply_resolution(resolution)

    def _finish_delegated_resolution(self, state: _QueryState) -> None:
        """Commit or abort a delegated transaction after polling survivors."""
        from repro.core.messages import AbortMsg, CommitMsg

        engine = self.site.engine
        record = state.record
        vt = record.vt
        if engine.status.get(vt) in ("committed", "aborted"):
            return  # resolved while we were querying
        survivors = sorted(self.survivors() - {self.site.site_id})
        if vt in state.committed:
            # Someone logged the delegate's COMMIT: commit everywhere.
            record.state = TxnState.COMMITTED
            for dst in survivors:
                self.site.send(dst, CommitMsg(txn_vt=vt, clock=self.site.clock.counter))
            engine._apply_commit_locally(vt)
            engine.record_commit_outcome(record.outcome)
            engine.records.pop(vt, None)
            return
        # Nobody saw a commit: abort everywhere and re-run after repair.
        record.state = TxnState.AWAITING
        txn, outcome, post = record.txn, record.outcome, record.post_execute
        for dst in survivors:
            self.site.send(
                dst,
                AbortMsg(
                    txn_vt=vt,
                    clock=self.site.clock.counter,
                    reason=f"delegate {state.failed_site} failed before committing",
                ),
            )
        record.involved_sites = set()  # aborts already sent above
        engine._abort_origin(record, f"delegate {state.failed_site} failed", retry=False)
        outcome.aborted_no_retry = False
        outcome.abort_reason = ""
        self.deferred_retries.append((txn, outcome, post))

    def on_resolution(self, src: int, msg: FailResolutionMsg) -> None:
        self._apply_resolution(msg)

    def _apply_resolution(self, msg: FailResolutionMsg) -> None:
        engine = self.site.engine
        for vt in msg.commit_vts:
            if engine.status.get(vt) is None:
                engine._apply_commit_locally(vt)
                self.resolutions_committed += 1
        for vt in msg.abort_vts:
            if engine.status.get(vt) is None:
                self.site.views.begin_batch()
                try:
                    engine._apply_abort_locally(vt)
                finally:
                    self.site.views.end_batch()
                self.resolutions_aborted += 1

    # ------------------------------------------------------------------
    # 3. Graph repair
    # ------------------------------------------------------------------

    def _roots_with_failed_site(self, failed_site: int) -> List["ModelObject"]:
        roots = []
        for obj in list(self.site.objects.values()):
            if not obj.has_own_graph():
                continue
            graph = obj.graph()
            if failed_site in graph.sites():
                roots.append(obj)
        return roots

    def _repair_graphs(self, failed_site: int, coordinator: int) -> None:
        me = self.site.site_id
        consensus_needed = False
        for obj in self._roots_with_failed_site(failed_site):
            graph = obj.graph()
            primary = self.site.primary_site_of(graph)
            if primary in self.failed:
                # The circularity case — possibly via an EARLIER failure
                # whose repair round died with its coordinator.
                consensus_needed = True
                continue
            if primary == me:
                # Ordinary timestamped transaction: the surviving primary
                # coordinates the graph update.
                self.site.defer(lambda o=obj, f=failed_site: self._repair_by_txn(o, f))
        if consensus_needed and me == coordinator:
            self.site.defer(lambda f=failed_site: self._start_repair_consensus(f))
        if not consensus_needed:
            # No consensus round to wait for; blocked transactions can
            # retry as soon as the deferred repair transactions have run.
            self.site.defer(self._run_deferred_retries)

    def _repair_by_txn(self, obj: "ModelObject", failed_site: int) -> None:
        graph = obj.graph()
        if failed_site not in graph.sites():
            return  # already repaired
        new_graph = graph
        for dead in sorted(self.failed):
            if new_graph is not None and dead in new_graph.sites():
                new_graph = new_graph.without_site(dead)
        if new_graph is None or new_graph.sites() == graph.sites():
            return

        def body() -> None:
            ctx = self.site.require_txn("graph repair")
            ctx.write(obj, OpPayload(kind="graph", args=(new_graph,)))

        self.site.transact(body)
        self.graphs_repaired += 1
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "repair_committed",
                site=self.site.site_id,
                time_ms=self.site.transport.now(),
                method="txn",
                obj=obj.uid,
                failed_site=failed_site,
            )

    def _start_repair_consensus(self, failed_site: int) -> None:
        others = self.survivors() - {self.site.site_id}
        proposal_id = self._next_id()
        apply_vt = self.site.clock.tick()
        self.repairs[proposal_id] = _RepairState(failed_site, apply_vt, awaiting=others)
        if not others:
            self._finish_repair(proposal_id)
            return
        propose = GraphRepairProposeMsg(
            proposal_id=proposal_id,
            coordinator=self.site.site_id,
            failed_site=failed_site,
            object_uids=(),
            apply_vt=apply_vt,
            clock=self.site.clock.counter,
            failed_sites=tuple(sorted(self.failed)),
        )
        for dst in sorted(others):
            self.site.send(dst, propose)

    def on_repair_propose(self, src: int, msg: GraphRepairProposeMsg) -> None:
        self.site.send(
            src,
            GraphRepairAckMsg(
                proposal_id=msg.proposal_id,
                site=self.site.site_id,
                ok=True,
                clock=self.site.clock.counter,
            ),
        )

    def on_repair_ack(self, src: int, msg: GraphRepairAckMsg) -> None:
        state = self.repairs.get(msg.proposal_id)
        if state is None:
            return
        state.awaiting.discard(msg.site)
        if not state.awaiting:
            self._finish_repair(msg.proposal_id)

    def _finish_repair(self, proposal_id: Tuple[int, int]) -> None:
        state = self.repairs.pop(proposal_id)
        apply_msg = GraphRepairApplyMsg(
            proposal_id=proposal_id,
            failed_site=state.failed_site,
            object_uids=(),
            apply_vt=state.apply_vt,
            clock=self.site.clock.counter,
            failed_sites=tuple(sorted(self.failed)),
        )
        for dst in sorted(self.survivors() - {self.site.site_id}):
            self.site.send(dst, apply_msg)
        self.on_repair_apply(self.site.site_id, apply_msg)

    def on_repair_apply(self, src: int, msg: GraphRepairApplyMsg) -> None:
        """Apply the consensus graph update as a committed write at apply_vt.

        The removal set comes from the MESSAGE (not local knowledge), so
        every survivor applies exactly the same graph regardless of the
        order failure notifications reached it.
        """
        from repro.core import propagation

        dead = set(msg.failed_sites) | {msg.failed_site}
        self.site.clock.observe(msg.apply_vt)
        # Mark the consensus write committed *before* applying: the apply
        # events reach attached views, and a pessimistic proxy creating a
        # snapshot at apply_vt must see committed status rather than
        # registering an RC wait that nothing would ever resolve.
        self.site.engine.status[msg.apply_vt] = "committed"
        self.site.views.begin_batch()
        try:
            for obj in list(self.site.objects.values()):
                if not obj.has_own_graph():
                    continue
                graph = obj.graph()
                if not dead & set(graph.sites()):
                    continue
                if self.site.primary_site_of(graph) not in dead:
                    continue  # a live primary repairs this one by txn
                new_graph = graph
                for d in sorted(dead):
                    if new_graph is not None and d in new_graph.sites():
                        new_graph = new_graph.without_site(d)
                if new_graph is None or new_graph.sites() == graph.sites():
                    continue
                propagation.apply_op(
                    obj, OpPayload(kind="graph", args=(new_graph,)), msg.apply_vt, committed=True
                )
                self.graphs_repaired += 1
        finally:
            self.site.views.end_batch()
        # The consensus write commits outside the normal commit path; fire
        # any dependents waiting on apply_vt and let the view manager
        # re-evaluate deferred checks and re-dispatch any snapshot checks
        # orphaned by the dead primary.
        self.site.engine.deps.resolve_commit(msg.apply_vt)
        self.site.views.on_txn_resolved(msg.apply_vt, committed=True)
        bus = self.site.bus
        if bus.active:
            bus.emit(
                "repair_committed",
                site=self.site.site_id,
                time_ms=self.site.transport.now(),
                txn_vt=msg.apply_vt,
                method="consensus",
                failed_site=msg.failed_site,
            )
        self._run_deferred_retries()
