"""State synchronization for the join protocol (paper section 3.3).

When object A joins a collaboration containing object B, B returns its
value to A.  For scalars this is one value; for composites the exported
state must preserve the VT tags of embedded children (slot identities), or
future indirect-propagation paths would not resolve at the joiner.

``export_state`` serializes a subtree — including commit flags and any
uncommitted suffix of each history — into a wire-encodable spec;
``import_state`` replaces the local subtree with that state, registering
uncommitted entries with the site's applied-op log so the standard
commit/abort machinery finalizes or rolls them back.  The previous state is
stashed so an abort of the joining transaction restores it exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Tuple

from repro.core.history import ValueHistory
from repro.core.messages import OpPayload
from repro.errors import ProtocolError
from repro.vtime import VT_ZERO, VirtualTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import ModelObject


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


def export_state(obj: "ModelObject") -> Tuple[Any, VirtualTime, List[VirtualTime]]:
    """Serialize ``obj``'s subtree.

    Returns ``(spec, sync_vt, pending_vts)`` where ``sync_vt`` is the latest
    VT appearing anywhere in the exported state (the joiner's effective read
    time of B's value) and ``pending_vts`` are the uncommitted transaction
    VTs the state depends on.
    """
    pending: List[VirtualTime] = []
    spec = _export_node(obj, pending)
    sync_vt = obj.current_value_vt()
    # Deduplicate while preserving order.
    seen = set()
    unique = []
    for vt in pending:
        if vt not in seen:
            seen.add(vt)
            unique.append(vt)
    return spec, sync_vt, unique


def _export_history(history: ValueHistory, pending: List[VirtualTime]) -> Tuple:
    """Export the committed-current entry plus everything after it."""
    base = history.committed_current()
    entries = []
    for entry in history:
        if entry.vt < base.vt:
            continue
        entries.append((entry.vt, entry.value, entry.committed))
        if not entry.committed:
            pending.append(entry.vt)
    return tuple(entries)


def _export_node(obj: "ModelObject", pending: List[VirtualTime]) -> Tuple:
    from repro.core.association import Association
    from repro.core.composites import DList, DMap
    from repro.core.scalars import ScalarObject

    if isinstance(obj, DList):
        slots = []
        for slot in obj._slots:
            if not slot.embed_committed:
                pending.append(slot.slot_id.vt)
            for event in slot.removes:
                if not event.committed:
                    pending.append(event.vt)
            slots.append(
                (
                    slot.slot_id,
                    slot.embed_committed,
                    tuple((e.vt, e.committed) for e in slot.removes),
                    _export_node(slot.child, pending),
                )
            )
        return ("list", _export_history(obj.history, pending), tuple(slots))
    if isinstance(obj, DMap):
        keys = []
        for key, key_slots in sorted(obj._keys.items(), key=lambda kv: repr(kv[0])):
            exported = []
            for slot in key_slots:
                if not slot.committed:
                    pending.append(slot.vt)
                child_spec = (
                    _export_node(slot.child, pending) if slot.child is not None else None
                )
                exported.append((slot.vt, slot.committed, child_spec))
            keys.append((key, tuple(exported)))
        return ("map", _export_history(obj.history, pending), tuple(keys))
    if isinstance(obj, Association):
        return ("association", _export_history(obj.history, pending))
    if isinstance(obj, ScalarObject):
        return (obj.kind, _export_history(obj.history, pending))
    raise ProtocolError(f"cannot export state of {type(obj).__name__}")


# ---------------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------------


def import_state(obj: "ModelObject", spec: Tuple, sync_txn_vt: VirtualTime) -> None:
    """Replace ``obj``'s subtree with the exported state.

    The previous state is stashed under ``sync_txn_vt`` so
    :func:`restore_state` (abort) can bring it back.  Uncommitted imported
    entries are registered with the site's applied-op log under *their own*
    VTs, so forwarded COMMIT/ABORT messages for those transactions finalize
    them through the normal machinery.
    """
    stash = getattr(obj, "_sync_undo", None)
    if stash is None:
        stash = {}
        obj._sync_undo = stash  # type: ignore[attr-defined]
    undo_pending: List[VirtualTime] = []
    stash[sync_txn_vt] = _export_node(obj, undo_pending)
    _import_node(obj, spec)


def restore_state(obj: "ModelObject", sync_txn_vt: VirtualTime) -> None:
    """Abort path: restore the state stashed by :func:`import_state`."""
    stash = getattr(obj, "_sync_undo", {})
    old_spec = stash.pop(sync_txn_vt, None)
    if old_spec is None:
        raise ProtocolError(f"no stashed state for sync at {sync_txn_vt} on {obj.uid}")
    _import_node(obj, old_spec)


def _import_history(obj: "ModelObject", entries: Tuple) -> None:
    first_vt, first_value, first_committed = entries[0]
    history = ValueHistory(first_value, initial_vt=first_vt)
    if not first_committed:
        raise ProtocolError("imported history must begin with a committed entry")
    for vt, value, committed in entries[1:]:
        history.insert(vt, value, committed=committed)
        if not committed:
            # Register with the applied log so the writer's forwarded
            # COMMIT/ABORT finalizes this entry.
            obj.site.note_applied(vt, obj, OpPayload(kind="set", args=(value,)))
    obj.history = history


def _import_node(obj: "ModelObject", spec: Tuple) -> None:
    from repro.core.composites import CompositeObject, DList, DMap, ListSlot, KeySlot

    kind = spec[0]
    if kind == "list":
        if not isinstance(obj, DList):
            raise ProtocolError(f"sync spec kind list does not match {type(obj).__name__}")
        _, entries, slots = spec
        _import_structure_history(obj, entries)
        for slot in obj._slots:
            obj.site.unregister_subtree(slot.child)
        obj._slots = []
        from repro.core.composites import RemoveEvent

        for slot_id, embed_committed, removes, child_spec in slots:
            child = _build_imported_child(obj, None, slot_id, child_spec)
            obj._slots.append(
                ListSlot(
                    slot_id=slot_id,
                    child=child,
                    embed_committed=embed_committed,
                    removes=[RemoveEvent(vt=vt, committed=c) for vt, c in removes],
                )
            )
    elif kind == "map":
        if not isinstance(obj, DMap):
            raise ProtocolError(f"sync spec kind map does not match {type(obj).__name__}")
        _, entries, keys = spec
        _import_structure_history(obj, entries)
        for key_slots in obj._keys.values():
            for slot in key_slots:
                if slot.child is not None:
                    obj.site.unregister_subtree(slot.child)
        obj._keys = {}
        for key, exported in keys:
            rebuilt = []
            for slot_vt, committed, child_spec in exported:
                child = (
                    _build_imported_child(obj, key, slot_vt, child_spec)
                    if child_spec is not None
                    else None
                )
                rebuilt.append(KeySlot(vt=slot_vt, child=child, committed=committed))
            obj._keys[key] = rebuilt
    else:
        # Scalar or association: kinds must match the local object.
        if obj.kind != kind:
            raise ProtocolError(f"sync spec kind {kind!r} does not match {obj.kind!r}")
        _import_history(obj, spec[1])


def _import_structure_history(obj: "ModelObject", entries: Tuple) -> None:
    if not entries:
        obj.history = ValueHistory("init")
        return
    first_vt, first_value, first_committed = entries[0]
    history = ValueHistory(first_value, initial_vt=first_vt)
    for vt, value, committed in entries[1:]:
        history.insert(vt, value, committed=committed)
        if not committed:
            # Pseudo-op: only the kind matters for undo/commit dispatch.
            obj.site.note_applied(vt, obj, OpPayload(kind="structural", args=()))
    obj.history = history


def _build_imported_child(
    parent: "ModelObject", key: Any, embed: Any, child_spec: Tuple
) -> "ModelObject":
    from repro.core.composites import DList, DMap
    from repro.core.model import embed_tag
    from repro.core.scalars import scalar_class_for

    kind = child_spec[0]
    child_name = f"{parent.name}.{key if key is not None else embed_tag(embed)}"
    if kind == "list":
        child = DList(parent.site, child_name, parent=parent, embed_vt=embed, key=key)
    elif kind == "map":
        child = DMap(parent.site, child_name, parent=parent, embed_vt=embed, key=key)
    elif kind in ("int", "float", "string"):
        cls = scalar_class_for(kind)
        first_value = child_spec[1][0][1]
        child = cls(parent.site, child_name, first_value, parent=parent, embed_vt=embed, key=key)
    else:
        raise ProtocolError(f"cannot import child of kind {kind!r}")
    _import_node(child, child_spec)
    return child
