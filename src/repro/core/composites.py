"""Composite model objects: lists and keyed tuples (paper section 2.1, 3.2).

Composites embed child model objects.  Two kinds are provided:

* :class:`DList` — a linearly indexed sequence of children,
* :class:`DMap`  — a collection of children indexed by a key (the paper's
  *tuples*).

**Identity and fragile paths.**  Every embedded list child is tagged with a
:class:`~repro.core.messages.SlotId` — the VT of the embedding transaction
(the paper's index tag, section 3.2.1) extended with a per-transaction
sequence number so one transaction can embed several children.  Map
children are identified by their key plus put VT.  Propagation messages
address children by these VT-tagged paths, so they resolve correctly
regardless of the order in which structure-changing operations arrive; an
operation whose path references a not-yet-arrived insert blocks (is
buffered) until the earlier update arrives.

**Ordering.**  List inserts are positioned relative to the identity of
their predecessor element (``after_id``), not a raw index, and removed
slots remain as invisible tombstones, so element order is stable and
convergent even while optimistic stragglers are in flight (the RGA skip
rule orders same-predecessor siblings by descending SlotId).  Conflicting
*committed* structural updates cannot interleave at all: list structural
writes record a read of the structure, so concurrent edits fail their RL
guess at the primary and one aborts and retries.

**MVCC.**  Slots record insert/remove VTs and map keys keep a VT-sorted
slot list, so snapshots can materialize the composite's value as of any VT,
optimistically or committed-only.

**Structure history.**  Each composite keeps one history entry per
*transaction* that changed its structure (idempotent across that
transaction's several ops); RL/NC checks at the primary run against this
history plus the object's reservation table, exactly like a scalar's value
history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.history import ValueHistory
from repro.core.messages import OpPayload, PathStep, SlotId
from repro.core.model import ModelObject, embed_tag
from repro.core.scalars import scalar_class_for
from repro.errors import InvalidPath, ProtocolError, ReproError
from repro.vtime import VirtualTime

# ---------------------------------------------------------------------------
# Child specifications (wire-encodable nested initial values)
# ---------------------------------------------------------------------------

#: A child spec is ``(kind, payload)`` where payload is the initial value
#: for scalars, a tuple of child specs for lists, and a tuple of
#: ``(key, child spec)`` pairs for maps.
ChildSpec = Tuple[str, Any]


def make_spec(kind: str, initial: Any) -> ChildSpec:
    """Normalize a user-provided initial value into a wire-encodable spec."""
    if kind in ("int", "float", "string"):
        return (kind, initial)
    if kind == "list":
        items = tuple(make_spec(k, v) for k, v in (initial or ()))
        return ("list", items)
    if kind == "map":
        entries = initial.items() if hasattr(initial, "items") else (initial or ())
        pairs = tuple((key, make_spec(k, v)) for key, (k, v) in entries)
        return ("map", pairs)
    raise ReproError(f"unknown model object kind {kind!r}")


# ---------------------------------------------------------------------------
# Slot records
# ---------------------------------------------------------------------------


@dataclass
class RemoveEvent:
    """One tombstoning of a list slot, with its own commit status."""

    vt: VirtualTime
    committed: bool = False


@dataclass
class ListSlot:
    """One (possibly tombstoned) element of a :class:`DList`.

    ``slot_id`` is the element's identity; ``slot_id.vt`` its insertion
    time.  ``removes`` records remove operations (normally at most one); a
    remove is undone by deleting its event on abort.  Commit status lives
    ON the events — the structure history's entries are garbage-collected
    once stable, so visibility cannot depend on their presence.
    """

    slot_id: SlotId
    child: ModelObject
    embed_committed: bool = False
    removes: List[RemoveEvent] = field(default_factory=list)

    @property
    def removed_vts(self) -> List[VirtualTime]:
        """The remove VTs (compatibility accessor)."""
        return [event.vt for event in self.removes]

    def visible_at(self, vt: VirtualTime, committed_only: bool = False) -> bool:
        """Is this slot visible at ``vt`` (optionally committed-events-only)?"""
        if not self.slot_id.vt <= vt:
            return False
        if committed_only and not self.embed_committed:
            return False
        for event in self.removes:
            if event.vt <= vt and (event.committed or not committed_only):
                return False
        return True


@dataclass
class KeySlot:
    """One version of a :class:`DMap` key: a child, or a tombstone (None)."""

    vt: VirtualTime
    child: Optional[ModelObject]
    committed: bool = False


# ---------------------------------------------------------------------------
# Composite base
# ---------------------------------------------------------------------------


class CompositeObject(ModelObject):
    """Shared machinery for :class:`DList` and :class:`DMap`."""

    kind = "composite"

    def __init__(
        self,
        site: Any,
        name: str,
        parent: Optional[ModelObject] = None,
        embed_vt: Any = None,
        key: Any = None,
    ) -> None:
        super().__init__(site, name, parent=parent, embed_vt=embed_vt, key=key)
        #: Structural-op history: one entry per transaction that changed
        #: this composite's structure (string values are debug text).
        self.history: ValueHistory = ValueHistory("init")

    # -- transaction-context plumbing ----------------------------------

    def _read_structure(self) -> None:
        ctx = self.site.current_txn
        if ctx is not None:
            ctx.read_structure(self)

    def _write_structure(self, op: OpPayload) -> Any:
        ctx = self.site.require_txn(op.kind)
        return ctx.write(self, op)

    def _note_structure(self, vt: VirtualTime, desc: str) -> None:
        """Record a structural event at ``vt`` (idempotent per transaction)."""
        if self.history.entry_at(vt) is None:
            self.history.insert(vt, desc)

    def committed_structural_vts(self) -> set:
        """VTs of committed structural events still present in the history.

        Visibility does NOT use this (commit status lives on slot events,
        which survive history GC); it exists for diagnostics and tests.
        """
        return {entry.vt for entry in self.history if entry.committed}

    # -- child construction --------------------------------------------

    def _build_child(self, child_key: Any, embed: Any, spec: ChildSpec) -> ModelObject:
        """Construct a child object from a spec.

        ``embed`` is the child's identity (SlotId for list children, put VT
        for map children).  Nested initial children receive negative
        sequence numbers, a namespace disjoint from transaction-assigned
        ones.
        """
        kind, payload = spec
        vt = getattr(embed, "vt", embed)
        child_name = f"{self.name}.{child_key if child_key is not None else embed_tag(embed)}"
        if kind in ("int", "float", "string"):
            cls = scalar_class_for(kind)
            child = cls(self.site, child_name, payload, parent=self, embed_vt=embed, key=child_key)
            # The child's initial value is born at its embed time; its
            # visibility to pessimistic readers is gated by the *slot's*
            # commit status, so the entry itself can be marked committed.
            child.history = ValueHistory(payload, initial_vt=vt)
            return child
        if kind == "list":
            child = DList(self.site, child_name, parent=self, embed_vt=embed, key=child_key)
            for i, item_spec in enumerate(payload):
                child.apply_insert(SlotId(vt, -(i + 1)), child._last_slot_id(), item_spec)
            return child
        if kind == "map":
            child = DMap(self.site, child_name, parent=self, embed_vt=embed, key=child_key)
            for entry_key, entry_spec in payload:
                child.apply_put(vt, entry_key, entry_spec)
            return child
        raise ReproError(f"unknown child kind {kind!r}")

    # -- interface for the apply/undo/commit engine --------------------

    def resolve_step(self, step: PathStep) -> Optional[ModelObject]:
        """Resolve one VT-tagged path step to a child, or None if missing."""
        raise NotImplementedError

    def undo_structural(self, vt: VirtualTime) -> None:
        """Roll back ALL structural events applied at ``vt`` (idempotent).

        A transaction's several structural ops on one composite share its
        VT; abort processing calls this once per recorded op, and every
        call after the first is a no-op.
        """
        raise NotImplementedError

    def _children_embedded_at(self, vt: VirtualTime) -> List[ModelObject]:
        """Children whose embedding event happened at ``vt`` (subclass hook)."""
        raise NotImplementedError

    def commit_structural(self, vt: VirtualTime) -> None:
        """Mark the structural events at ``vt`` committed (idempotent).

        Composite children built from nested initial-value specs carry
        structure entries at the same VT; committing the embedding commits
        them recursively.
        """
        self.history.commit(vt)
        for child in self._children_embedded_at(vt):
            if isinstance(child, CompositeObject):
                child.commit_structural(vt)


# ---------------------------------------------------------------------------
# DList
# ---------------------------------------------------------------------------


class DList(CompositeObject):
    """A linearly indexed sequence of embedded model objects."""

    kind = "list"

    def __init__(self, site: Any, name: str, parent=None, embed_vt=None, key=None) -> None:
        super().__init__(site, name, parent=parent, embed_vt=embed_vt, key=key)
        self._slots: List[ListSlot] = []

    # -- reading --------------------------------------------------------

    def _visible_slots(
        self, vt: Optional[VirtualTime] = None, committed_only: bool = False
    ) -> List[ListSlot]:
        if vt is None:
            vt = self._max_vt()
        return [s for s in self._slots if s.visible_at(vt, committed_only)]

    def _max_vt(self) -> VirtualTime:
        top = self.history.current().vt
        for slot in self._slots:
            if slot.slot_id.vt > top:
                top = slot.slot_id.vt
            for event in slot.removes:
                if event.vt > top:
                    top = event.vt
        return top

    def __len__(self) -> int:
        self._read_structure()
        return len(self._visible_slots())

    def children(self) -> List[ModelObject]:
        """The currently visible children, in order (records a read)."""
        self._read_structure()
        return [s.child for s in self._visible_slots()]

    def child_at(self, index: int) -> ModelObject:
        """The visible child at ``index`` (records a read)."""
        self._read_structure()
        visible = self._visible_slots()
        return visible[index].child

    def index_of(self, child: ModelObject) -> int:
        self._read_structure()
        for i, slot in enumerate(self._visible_slots()):
            if slot.child is child:
                return i
        raise InvalidPath(f"{child.uid} is not a visible element of {self.uid}")

    # -- writing (user API, inside a transaction) -----------------------

    def insert(self, index: int, kind: str, initial: Any = None) -> ModelObject:
        """Insert a new child at ``index``; returns the child object."""
        ctx = self.site.require_txn("insert")
        self._read_structure()
        visible = self._visible_slots()
        if not 0 <= index <= len(visible):
            raise IndexError(f"insert index {index} out of range 0..{len(visible)}")
        after_id = visible[index - 1].slot_id if index > 0 else None
        spec = make_spec(kind, initial)
        seq = ctx.next_slot_seq()
        return self._write_structure(OpPayload(kind="insert", args=(after_id, spec, seq)))

    def append(self, kind: str, initial: Any = None) -> ModelObject:
        self._read_structure()
        return self.insert(len(self._visible_slots()), kind, initial)

    def remove(self, index: int) -> None:
        """Remove the visible child at ``index``."""
        self._read_structure()
        visible = self._visible_slots()
        if not 0 <= index < len(visible):
            raise IndexError(f"remove index {index} out of range 0..{len(visible) - 1}")
        target = visible[index].slot_id
        self._write_structure(OpPayload(kind="remove", args=(target,)))

    # -- apply engine (local execute and remote propagation) ------------

    def _last_slot_id(self) -> Optional[SlotId]:
        return self._slots[-1].slot_id if self._slots else None

    def _find_slot(self, slot_id: SlotId) -> Optional[ListSlot]:
        for slot in self._slots:
            if slot.slot_id == slot_id:
                return slot
        return None

    def apply_insert(
        self, slot_id: SlotId, after_id: Optional[SlotId], spec: ChildSpec
    ) -> ModelObject:
        """Insert a child identified by ``slot_id`` after ``after_id``.

        Placement uses the RGA rule: start just after the predecessor and
        skip over any sibling slots with a greater SlotId, so concurrent
        optimistic inserts converge to the same order at every site.
        Raises :class:`InvalidPath` if the predecessor has not arrived yet
        (the caller buffers and retries — paper section 3.2.1 blocking).
        """
        if self._find_slot(slot_id) is not None:
            raise ProtocolError(f"duplicate insert {slot_id} in {self.uid}")
        if after_id is None:
            pos = 0
        else:
            pred = self._find_slot(after_id)
            if pred is None:
                raise InvalidPath(f"predecessor {after_id} not yet present in {self.uid}")
            pos = self._slots.index(pred) + 1
        while pos < len(self._slots) and self._slots[pos].slot_id > slot_id:
            pos += 1
        child = self._build_child(None, slot_id, spec)
        self._slots.insert(pos, ListSlot(slot_id=slot_id, child=child))
        self._note_structure(slot_id.vt, f"insert@{slot_id.vt}")
        return child

    def apply_remove(self, vt: VirtualTime, target: SlotId) -> None:
        """Tombstone the slot identified by ``target`` at ``vt``."""
        slot = self._find_slot(target)
        if slot is None:
            raise InvalidPath(f"remove target {target} not yet present in {self.uid}")
        slot.removes.append(RemoveEvent(vt=vt))
        self._note_structure(vt, f"remove@{vt}")

    def undo_structural(self, vt: VirtualTime) -> None:
        survivors = []
        for slot in self._slots:
            if slot.slot_id.vt == vt:
                self.site.unregister_subtree(slot.child)
                continue
            slot.removes = [e for e in slot.removes if e.vt != vt]
            survivors.append(slot)
        self._slots = survivors
        self.history.purge(vt)

    def commit_structural(self, vt: VirtualTime) -> None:
        for slot in self._slots:
            if slot.slot_id.vt == vt:
                slot.embed_committed = True
            for event in slot.removes:
                if event.vt == vt:
                    event.committed = True
        super().commit_structural(vt)

    def _children_embedded_at(self, vt: VirtualTime) -> List[ModelObject]:
        return [s.child for s in self._slots if s.slot_id.vt == vt]

    def resolve_step(self, step: PathStep) -> Optional[ModelObject]:
        slot = self._find_slot(step.embed_vt)
        return slot.child if slot is not None else None

    # -- snapshots -------------------------------------------------------

    def value_at(self, vt: VirtualTime, committed_only: bool = False) -> List[Any]:
        return [
            slot.child.value_at(vt, committed_only)
            for slot in self._visible_slots(vt, committed_only)
        ]

    def current_value_vt(self) -> VirtualTime:
        top = self.history.current().vt
        for slot in self._slots:
            child_vt = slot.child.current_value_vt()
            if child_vt > top:
                top = child_vt
        return top


# ---------------------------------------------------------------------------
# DMap
# ---------------------------------------------------------------------------


class DMap(CompositeObject):
    """A collection of embedded model objects indexed by key (paper "tuples").

    Puts and deletes are **blind writes**: they do not record a structure
    read, so concurrent puts to the same key never conflict — the one with
    the later VT wins (the scalar blind-write semantics of section 3.1,
    applied per key).  Reads of the map record a structure read as usual.
    """

    kind = "map"

    def __init__(self, site: Any, name: str, parent=None, embed_vt=None, key=None) -> None:
        super().__init__(site, name, parent=parent, embed_vt=embed_vt, key=key)
        self._keys: Dict[Any, List[KeySlot]] = {}

    # -- reading --------------------------------------------------------

    def _visible_slot(
        self, key: Any, vt: VirtualTime, committed_only: bool = False
    ) -> Optional[KeySlot]:
        best: Optional[KeySlot] = None
        for slot in self._keys.get(key, []):
            if slot.vt <= vt and (slot.committed or not committed_only):
                if best is None or slot.vt > best.vt:
                    best = slot
        return best

    def _now_vt(self) -> VirtualTime:
        top = self.history.current().vt
        for slots in self._keys.values():
            for slot in slots:
                if slot.vt > top:
                    top = slot.vt
        return top

    def keys(self) -> List[Any]:
        """Currently visible keys, sorted by repr for determinism (a read)."""
        self._read_structure()
        vt = self._now_vt()
        out = []
        for key in self._keys:
            slot = self._visible_slot(key, vt)
            if slot is not None and slot.child is not None:
                out.append(key)
        return sorted(out, key=repr)

    def has(self, key: Any) -> bool:
        self._read_structure()
        slot = self._visible_slot(key, self._now_vt())
        return slot is not None and slot.child is not None

    def child(self, key: Any) -> ModelObject:
        """The visible child at ``key`` (records a read)."""
        self._read_structure()
        slot = self._visible_slot(key, self._now_vt())
        if slot is None or slot.child is None:
            raise KeyError(key)
        return slot.child

    # -- writing ---------------------------------------------------------

    def put(self, key: Any, kind: str, initial: Any = None) -> ModelObject:
        """Blind-write a fresh child at ``key``; returns the child."""
        spec = make_spec(kind, initial)
        return self._write_structure(OpPayload(kind="put", args=(key, spec)))

    def delete(self, key: Any) -> None:
        """Blind-write a tombstone at ``key``."""
        self._write_structure(OpPayload(kind="delete", args=(key,)))

    # -- apply engine ------------------------------------------------------

    def apply_put(self, vt: VirtualTime, key: Any, spec: ChildSpec) -> ModelObject:
        child = self._build_child(key, vt, spec)
        slots = self._keys.setdefault(key, [])
        for slot in slots:
            if slot.vt == vt:
                # Same transaction re-put the same key: replace the child.
                if slot.child is not None:
                    self.site.unregister_subtree(slot.child)
                slot.child = child
                self._note_structure(vt, f"put@{vt}")
                return child
        slots.append(KeySlot(vt=vt, child=child))
        slots.sort(key=lambda s: (s.vt.counter, s.vt.site))
        self._note_structure(vt, f"put@{vt}")
        return child

    def apply_delete(self, vt: VirtualTime, key: Any) -> None:
        slots = self._keys.setdefault(key, [])
        for slot in slots:
            if slot.vt == vt:
                if slot.child is not None:
                    self.site.unregister_subtree(slot.child)
                slot.child = None
                self._note_structure(vt, f"delete@{vt}")
                return
        slots.append(KeySlot(vt=vt, child=None))
        slots.sort(key=lambda s: (s.vt.counter, s.vt.site))
        self._note_structure(vt, f"delete@{vt}")

    def undo_structural(self, vt: VirtualTime) -> None:
        for key in list(self._keys):
            kept = []
            for slot in self._keys[key]:
                if slot.vt == vt:
                    if slot.child is not None:
                        self.site.unregister_subtree(slot.child)
                    continue
                kept.append(slot)
            if kept:
                self._keys[key] = kept
            else:
                del self._keys[key]
        self.history.purge(vt)

    def commit_structural(self, vt: VirtualTime) -> None:
        for slots in self._keys.values():
            for slot in slots:
                if slot.vt == vt:
                    slot.committed = True
        super().commit_structural(vt)

    def _children_embedded_at(self, vt: VirtualTime) -> List[ModelObject]:
        out = []
        for slots in self._keys.values():
            for slot in slots:
                if slot.vt == vt and slot.child is not None:
                    out.append(slot.child)
        return out

    def resolve_step(self, step: PathStep) -> Optional[ModelObject]:
        for slot in self._keys.get(step.key, []):
            if slot.vt == step.embed_vt and slot.child is not None:
                return slot.child
        return None

    # -- snapshots ---------------------------------------------------------

    def value_at(self, vt: VirtualTime, committed_only: bool = False) -> Dict[Any, Any]:
        out: Dict[Any, Any] = {}
        for key in self._keys:
            slot = self._visible_slot(key, vt, committed_only)
            if slot is not None and slot.child is not None:
                out[key] = slot.child.value_at(vt, committed_only)
        return out

    def current_value_vt(self) -> VirtualTime:
        top = self.history.current().vt
        for slots in self._keys.values():
            for slot in slots:
                if slot.vt > top:
                    top = slot.vt
                if slot.child is not None:
                    child_vt = slot.child.current_value_vt()
                    if child_vt > top:
                        top = child_vt
        return top
