"""The reference wire codec: the original generic tag-dispatch implementation.

:mod:`repro.wire.codec` compiles a specialized packer/unpacker pair per
registered struct and takes several fast paths (fused tag+payload byte
constants, interning caches, a zero-copy cursor).  This module keeps the
*original* recursive implementation — one generic ``isinstance`` chain for
encode, one tag ``if`` ladder for decode — as the executable specification
of the wire format, mirroring the ``repro.bench.reference`` pattern: the
optimized codec must be byte-identical to this one on every encodable
value, and ``tests/test_wire_packers.py`` enforces that with Hypothesis
property tests over every registered struct.

It shares the live struct registry with the optimized codec (the dicts are
mutated in place by :func:`repro.wire.codec.register_struct`), so structs
registered after import are covered automatically.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.errors import WireError
from repro.vtime import VirtualTime
from repro.wire.codec import (
    _STRUCTS_BY_CLASS,
    _STRUCTS_BY_TAG,
    _T_BYTES,
    _T_DICT,
    _T_FALSE,
    _T_FLOAT,
    _T_FROZENSET,
    _T_INT,
    _T_LIST,
    _T_NONE,
    _T_STR,
    _T_TRUE,
    _T_TUPLE,
    _T_VT,
    WIRE_VERSION,
)

# ---------------------------------------------------------------------------
# Varints
# ---------------------------------------------------------------------------


def _write_uvarint(out: List[bytes], value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _write_svarint(out: List[bytes], value: int) -> None:
    # ZigZag: interleave sign so small magnitudes stay small on the wire.
    _write_uvarint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    shift = 0
    value = 0
    while True:
        if pos >= len(data):
            raise WireError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _read_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    raw, pos = _read_uvarint(data, pos)
    return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), pos


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------


def _encode_value(out: List[bytes], value: Any) -> None:
    if value is None:
        out.append(bytes((_T_NONE,)))
    elif value is True:
        out.append(bytes((_T_TRUE,)))
    elif value is False:
        out.append(bytes((_T_FALSE,)))
    elif isinstance(value, VirtualTime):
        out.append(bytes((_T_VT,)))
        _write_svarint(out, value.counter)
        _write_svarint(out, value.site)
    elif isinstance(value, int):  # after bool/VT checks
        out.append(bytes((_T_INT,)))
        _write_svarint(out, value)
    elif isinstance(value, float):
        out.append(bytes((_T_FLOAT,)))
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(bytes((_T_STR,)))
        _write_uvarint(out, len(raw))
        out.append(raw)
    elif isinstance(value, bytes):
        out.append(bytes((_T_BYTES,)))
        _write_uvarint(out, len(value))
        out.append(value)
    elif isinstance(value, tuple):
        out.append(bytes((_T_TUPLE,)))
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, list):
        out.append(bytes((_T_LIST,)))
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        # Canonical order: entries sorted by their encoded key bytes, so
        # two equal dicts always encode identically.
        out.append(bytes((_T_DICT,)))
        _write_uvarint(out, len(value))
        entries = []
        for key, val in value.items():
            kparts: List[bytes] = []
            _encode_value(kparts, key)
            vparts: List[bytes] = []
            _encode_value(vparts, val)
            entries.append((b"".join(kparts), b"".join(vparts)))
        for kbytes, vbytes in sorted(entries):
            out.append(kbytes)
            out.append(vbytes)
    elif isinstance(value, frozenset):
        # Canonical order: elements sorted by their encoded bytes.
        out.append(bytes((_T_FROZENSET,)))
        _write_uvarint(out, len(value))
        items = []
        for item in value:
            parts: List[bytes] = []
            _encode_value(parts, item)
            items.append(b"".join(parts))
        for raw in sorted(items):
            out.append(raw)
    else:
        entry = _STRUCTS_BY_CLASS.get(type(value))
        if entry is None:
            raise WireError(
                f"{type(value).__name__} is not wire-encodable; register it "
                "with repro.wire.register_struct"
            )
        tag, fields = entry
        out.append(bytes((tag,)))
        for name in fields:
            _encode_value(out, getattr(value, name))


def _decode_value(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise WireError("truncated payload: expected a value tag")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _read_svarint(data, pos)
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise WireError("truncated float")
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == _T_STR:
        n, pos = _read_uvarint(data, pos)
        if pos + n > len(data):
            raise WireError("truncated string")
        return data[pos : pos + n].decode("utf-8"), pos + n
    if tag == _T_BYTES:
        n, pos = _read_uvarint(data, pos)
        if pos + n > len(data):
            raise WireError("truncated bytes")
        return data[pos : pos + n], pos + n
    if tag == _T_TUPLE:
        n, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(n):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _T_LIST:
        n, pos = _read_uvarint(data, pos)
        out_list = []
        for _ in range(n):
            item, pos = _decode_value(data, pos)
            out_list.append(item)
        return out_list, pos
    if tag == _T_DICT:
        n, pos = _read_uvarint(data, pos)
        mapping = {}
        for _ in range(n):
            key, pos = _decode_value(data, pos)
            val, pos = _decode_value(data, pos)
            mapping[key] = val
        return mapping, pos
    if tag == _T_FROZENSET:
        n, pos = _read_uvarint(data, pos)
        elems = []
        for _ in range(n):
            item, pos = _decode_value(data, pos)
            elems.append(item)
        fs = frozenset(elems)
        if len(fs) != n:
            raise WireError("frozenset payload contains duplicate elements")
        return fs, pos
    if tag == _T_VT:
        counter, pos = _read_svarint(data, pos)
        site, pos = _read_svarint(data, pos)
        return VirtualTime(counter, site), pos
    entry = _STRUCTS_BY_TAG.get(tag)
    if entry is None:
        raise WireError(f"unknown wire tag {tag:#x}")
    cls, fields = entry
    values = []
    for _ in fields:
        value, pos = _decode_value(data, pos)
        values.append(value)
    try:
        return cls(*values), pos
    except Exception as exc:  # constructor invariants (e.g. empty graph)
        raise WireError(f"invalid {cls.__name__} payload: {exc}") from exc


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def encode(value: Any) -> bytes:
    """Serialize ``value`` exactly as the original generic codec did."""
    out: List[bytes] = [bytes((WIRE_VERSION,))]
    _encode_value(out, value)
    return b"".join(out)


def decode(data: bytes) -> Any:
    """Parse bytes produced by :func:`encode` (reference implementation)."""
    if not data:
        raise WireError("empty payload")
    version = data[0]
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (this codec speaks {WIRE_VERSION})"
        )
    value, pos = _decode_value(data, 1)
    if pos != len(data):
        raise WireError(f"{len(data) - pos} trailing bytes after payload")
    return value
