"""Per-destination message coalescing (the batched message plane).

Every protocol send from a site funnels through its :class:`Outbox`.
Outside a *turn* the outbox is transparent: each message goes straight to
the transport, exactly as before.  Inside a turn — one protocol step such
as dispatching an incoming frame or running a transaction to its fan-out —
messages are buffered, then flushed when the outermost turn ends: all
messages bound for the same destination leave in **one**
:class:`~repro.core.messages.Envelope` frame.

This is where the fan-out savings come from: a commit that must notify N
peers about K objects, a view manager confirming a batch of snapshot
checks, or an eager write-confirm broadcast all collapse to one frame per
peer instead of one frame per message.

Guarantees:

* **Per-pair FIFO is preserved.**  The buffer keeps first-seen destination
  order and within-destination message order; the receiver unpacks an
  envelope's messages in order before any later frame.  Coalescing only
  ever *removes* interleavings with other destinations' traffic, which the
  protocol never relied on.
* **Disabled means invisible.**  ``auto_turn`` is a no-op unless batching
  was enabled for the site, and a destination with exactly one buffered
  message gets the bare payload, not a one-element envelope — so with
  batching off, the byte stream and simulator event sequence are identical
  to a build without this module.

Metrics (per-site registry): ``wire.messages_sent`` counts protocol
messages handed to the outbox, ``wire.envelopes_sent`` counts transport
frames actually emitted, ``wire.messages_batched`` counts messages that
travelled inside a multi-message envelope.  The ``envelopes_sent`` /
``messages_sent`` ratio is the batching win.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.core.messages import Envelope
from repro.obs.metrics import counter_property

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.site import SiteRuntime


class Outbox:
    """Buffers a site's outgoing messages and flushes them per destination."""

    def __init__(self, site: "SiteRuntime", enabled: bool = False) -> None:
        self.site = site
        #: When False, ``auto_turn`` does not open a batching window and
        #: every send is immediate — the seed behaviour.  Explicit
        #: ``turn()`` windows batch regardless (used by ``Session.batched``).
        self.enabled = enabled
        self._depth = 0
        self._buffer: List[Tuple[int, Any]] = []

    messages_sent = counter_property(
        "wire.messages_sent", "Protocol messages handed to the outbox."
    )
    envelopes_sent = counter_property(
        "wire.envelopes_sent", "Transport frames actually emitted."
    )
    messages_batched = counter_property(
        "wire.messages_batched", "Messages that shared a multi-message envelope."
    )

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, dst: int, payload: Any) -> None:
        """Send ``payload`` to ``dst`` now, or buffer it if a turn is open."""
        if self._depth > 0:
            self._buffer.append((dst, payload))
            return
        self.messages_sent += 1
        self.envelopes_sent += 1
        self.site.transport.send(self.site.site_id, dst, payload)

    # ------------------------------------------------------------------
    # Turn windows
    # ------------------------------------------------------------------

    def begin_turn(self) -> None:
        self._depth += 1

    def end_turn(self) -> None:
        if self._depth <= 0:
            raise RuntimeError("Outbox.end_turn without matching begin_turn")
        self._depth -= 1
        if self._depth == 0 and self._buffer:
            self._flush()

    @contextlib.contextmanager
    def turn(self):
        """An explicit batching window (flushes when the outermost closes)."""
        self.begin_turn()
        try:
            yield self
        finally:
            self.end_turn()

    @contextlib.contextmanager
    def auto_turn(self):
        """A batching window around one protocol step — no-op when disabled.

        Wrapped around message dispatch and transaction runs by the site
        runtime; keeping it inert when batching is off means the default
        configuration reproduces the seed's message flow exactly.
        """
        if not self.enabled:
            yield self
            return
        self.begin_turn()
        try:
            yield self
        finally:
            self.end_turn()

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------

    def _flush(self) -> None:
        buffered, self._buffer = self._buffer, []
        site = self.site
        if len(buffered) == 1:
            # The overwhelmingly common turn outcome — one reply to one
            # destination — skips the grouping dict entirely.
            dst, payload = buffered[0]
            self.messages_sent += 1
            self.envelopes_sent += 1
            site.transport.send(site.site_id, dst, payload)
            return
        groups: Dict[int, List[Any]] = {}
        setdefault = groups.setdefault
        for dst, payload in buffered:  # first-seen destination order
            setdefault(dst, []).append(payload)
        transport_send = site.transport.send
        site_id = site.site_id
        for dst, msgs in groups.items():
            count = len(msgs)
            self.messages_sent += count
            self.envelopes_sent += 1
            if count == 1:
                transport_send(site_id, dst, msgs[0])
                continue
            self.messages_batched += count
            if site.bus.active:
                site.bus.emit(
                    "envelope_sent",
                    site=site_id,
                    time_ms=site.transport.now(),
                    dst=dst,
                    count=count,
                )
            transport_send(site_id, dst, Envelope(tuple(msgs)))

    def __repr__(self) -> str:
        return (
            f"Outbox(site={self.site.site_id}, enabled={self.enabled}, "
            f"depth={self._depth}, buffered={len(self._buffer)})"
        )
