"""The DECAF wire codec: a deterministic, versioned binary format.

Everything a site sends to a peer — every message dataclass in
:mod:`repro.core.messages`, the virtual times they carry, replication
graphs, invitations, nested sync/child specs — encodes to bytes through
this module, so payloads can cross a real process boundary (the
:class:`~repro.transport.tcp.TcpTransport`) instead of travelling as live
Python references through in-memory queues.

Design rules:

* **Versioned.**  Every encoded payload starts with a one-byte format
  version.  A decoder that sees an unknown version raises
  :class:`~repro.errors.WireError` immediately — no best-effort parsing.
* **Registry-tagged.**  Each value form has a one-byte tag.  Primitive
  tags (ints, strings, tuples, ...) are fixed; protocol dataclasses are
  entered in a registry mapping tag ↔ class, and encode as the tag
  followed by the dataclass fields in declaration order.  Extensions
  register new structs with :func:`register_struct`; unknown tags are a
  hard decode error.
* **Deterministic.**  Encoding is a pure function of the value: dict
  entries and frozenset elements are ordered by their encoded bytes, so
  ``encode(decode(encode(x))) == encode(x)`` byte-for-byte.  This is what
  makes golden-bytes tests, cross-process digest comparison, and
  replayable traces possible.
* **Self-contained.**  Varints for all integers (arbitrary precision),
  IEEE-754 big-endian for floats, UTF-8 for strings.  No pickling, no
  code execution on decode.

Hot-path architecture (docs/WIRE.md has the full treatment):

* **Precompiled packers.**  :func:`register_struct` generates a
  specialized encode closure and decode closure per dataclass — tag byte
  and field walk baked into straight-line code — and installs them in the
  type-keyed encoder dispatch and the 256-entry tag table.  The original
  generic implementation survives verbatim in :mod:`repro.wire.reference`
  and property tests assert byte-identical output.
* **One join per frame.**  Encoders append pre-built byte constants
  (fused tag+payload singletons for small ints, small string/collection
  headers) to one parts list; ``b"".join`` runs once per payload.
* **Zero-copy cursor decode.**  The decoder walks ``(buf, pos)`` with a
  per-tag function table; ``memoryview``/``bytearray`` inputs are
  consumed in place without intermediate slicing, and malformed input
  surfaces as :class:`WireError` at the ``decode()`` boundary — never
  ``IndexError``/``struct.error``/``RecursionError``.
* **Interning.**  Decoded :class:`~repro.vtime.VirtualTime` values, short
  strings (site/object uids), and structs opting in via
  ``__wire_intern__`` (e.g. ``SlotId``) are shared through bounded caches
  so repeated decodes of one collaboration's traffic reuse objects, and
  each ``VirtualTime`` caches its canonical encoding so dict/frozenset
  canonicalization stops re-encoding keys.
"""

from __future__ import annotations

import dataclasses
import struct
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.association import Invitation
from repro.core.messages import (
    AbortMsg,
    CommitMsg,
    ConfirmMsg,
    DelegateGrant,
    Envelope,
    FailQueryMsg,
    FailQueryReplyMsg,
    FailResolutionMsg,
    GraphRepairAckMsg,
    GraphRepairApplyMsg,
    GraphRepairProposeMsg,
    JoinReplyMsg,
    JoinRequestMsg,
    OpPayload,
    PathStep,
    ReadCheck,
    SlotId,
    SnapshotCheck,
    SnapshotConfirmMsg,
    SnapshotReplyMsg,
    TxnPropagateMsg,
    WriteConfirmedMsg,
    WriteOp,
)
from repro.core.repgraph import GraphNode, ReplicationGraph
from repro.errors import WireError
from repro.vtime import VirtualTime

#: Current wire-format version.  Bump on any incompatible layout change;
#: decoders reject every version they do not implement.
WIRE_VERSION = 1

#: Frame-header version for *traced* frames: the body is the version byte
#: followed by a ``(src, dst, payload, TraceContext)`` 4-tuple instead of
#: the v1 routing triple.  Value encoding is unchanged — only the frame
#: header grew — and decoders accept both versions, so a tracing-enabled
#: process interoperates with an untraced one (docs/WIRE.md).
FRAME_VERSION_TRACED = 2

#: Frame-header version for *tenant-scoped* frames: the body is the version
#: byte followed by a ``(tenant, src, dst, payload, trace-or-None)`` 5-tuple.
#: Tenant 0 is the unscoped namespace and is never encoded with this version
#: — tenant-0 frames stay byte-identical to v1/v2 — so a multi-tenant
#: SessionHost interoperates with every pre-tenant process (docs/WIRE.md).
FRAME_VERSION_TENANT = 3

# ---------------------------------------------------------------------------
# Primitive tags (0x00–0x1F reserved for the codec itself)
# ---------------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_FROZENSET = 0x0A
_T_VT = 0x0B

# ---------------------------------------------------------------------------
# Pre-built byte constants (one object per frequent prefix, so encoders
# append shared singletons instead of constructing bytes per value)
# ---------------------------------------------------------------------------

_BYTE = tuple(bytes((i,)) for i in range(256))

_B_NONE = _BYTE[_T_NONE]
_B_TRUE = _BYTE[_T_TRUE]
_B_FALSE = _BYTE[_T_FALSE]
_B_INT = _BYTE[_T_INT]
_B_FLOAT = _BYTE[_T_FLOAT]
_B_STR = _BYTE[_T_STR]
_B_BYTES = _BYTE[_T_BYTES]
_B_TUPLE = _BYTE[_T_TUPLE]
_B_LIST = _BYTE[_T_LIST]
_B_DICT = _BYTE[_T_DICT]
_B_FROZENSET = _BYTE[_T_FROZENSET]
_B_VT = _BYTE[_T_VT]

#: Fused tag+varint singletons: a small int/length encodes as ONE append.
_INT1 = tuple(_B_INT + _BYTE[z] for z in range(128))
_STR_HDR = tuple(_B_STR + _BYTE[n] for n in range(128))
_BYTES_HDR = tuple(_B_BYTES + _BYTE[n] for n in range(128))
_TUPLE_HDR = tuple(_B_TUPLE + _BYTE[n] for n in range(128))
_LIST_HDR = tuple(_B_LIST + _BYTE[n] for n in range(128))
_DICT_HDR = tuple(_B_DICT + _BYTE[n] for n in range(128))
_FROZENSET_HDR = tuple(_B_FROZENSET + _BYTE[n] for n in range(128))

_PACK_D = struct.Struct(">d").pack
_UNPACK_D = struct.Struct(">d").unpack_from

# ---------------------------------------------------------------------------
# Struct registry (tags 0x20–0xFF)
# ---------------------------------------------------------------------------

#: tag -> (class, field names in declaration order)
_STRUCTS_BY_TAG: Dict[int, Tuple[type, Tuple[str, ...]]] = {}
#: class -> (tag, field names)
_STRUCTS_BY_CLASS: Dict[type, Tuple[int, Tuple[str, ...]]] = {}

#: Exact-type encoder dispatch: ``type(value) -> fn(out, value)``.
_ENCODERS: Dict[type, Callable[[List[bytes], Any], None]] = {}
#: Tag-indexed decoder table: ``fn(buf, pos) -> (value, pos)`` or None.
_DECODERS: List[Optional[Callable[[Any, int], Tuple[Any, int]]]] = [None] * 256

# ---------------------------------------------------------------------------
# Interning caches (bounded: cleared wholesale when full, so a burst of
# unique values cannot grow them without bound)
# ---------------------------------------------------------------------------

#: Decoded VirtualTime instances, keyed on the raw zigzag varint values.
#: The common case (both varints single-byte) uses the fused int key
#: ``z1 * 128 + z2``; larger pairs fall back to a ``(z1, z2)`` tuple key.
#: int and tuple keys never compare equal, so one dict serves both.
_VT_CACHE: Dict[Any, VirtualTime] = {}
_VT_CACHE_MAX = 1 << 16
_STR_CACHE: Dict[bytes, str] = {}
_STR_CACHE_MAX = 1 << 12
_STR_INTERN_MAX_LEN = 40
#: Span-memo for decoded ``__wire_intern__`` structs.  Keyed by the first
#: :data:`_SPAN_PREFIX_LEN` bytes at the struct's tag position (a bucket
#: selector, nothing more); each bucket holds ``(span, instance)`` pairs
#: where ``span`` is the struct's complete encoding, tag byte included.
#: A lookup only reuses an instance after verifying that the bytes at the
#: cursor equal the full cached span — the decoder is a deterministic
#: function of its input, so identical bytes decode to an identical value
#: and the memo may skip the parse *and* the construction.  Bucket
#: collisions or prefix matches with differing tails simply fail the
#: verify and fall through to a normal parse; soundness never rests on
#: the prefix.
_STRUCT_CACHE: Dict[bytes, List[Tuple[bytes, Any]]] = {}
_STRUCT_CACHE_MAX = 1 << 13
_SPAN_PREFIX_LEN = 12
_SPAN_BUCKET_MAX = 8


def _memo_span(prefix: Any, span: Any, value: Any) -> None:
    """Record a freshly parsed interned-struct span in the memo."""
    bucket = _STRUCT_CACHE.get(prefix)
    if bucket is None:
        if len(_STRUCT_CACHE) >= _STRUCT_CACHE_MAX:
            _STRUCT_CACHE.clear()
        _STRUCT_CACHE[bytes(prefix)] = [(bytes(span), value)]
    elif len(bucket) < _SPAN_BUCKET_MAX:
        bucket.append((bytes(span), value))


def _stamp_wire(value: Any, out: List[bytes], mark: int) -> None:
    """Cache the canonical encoding of an interned struct on the instance.

    ``out[mark:]`` is exactly the tag byte plus field encodings this packer
    just appended for ``value``.  The write goes through
    ``object.__setattr__`` because the frozen dataclass ``__setattr__``
    refuses everything; the ``_wire`` key lands in the instance ``__dict__``
    beside the fields without affecting ``==``/``hash`` (dataclasses
    compare by field, not by dict).
    """
    object.__setattr__(value, "_wire", b"".join(out[mark:]))


# ---------------------------------------------------------------------------
# Varint helpers (multi-byte slow paths; single bytes use the fused tables)
# ---------------------------------------------------------------------------


def _append_uvarint(out: List[bytes], value: int) -> None:
    while value > 0x7F:
        out.append(_BYTE[(value & 0x7F) | 0x80])
        value >>= 7
    out.append(_BYTE[value])


def _read_uvarint(data: Any, pos: int) -> Tuple[int, int]:
    byte = data[pos]
    pos += 1
    if byte < 0x80:
        return byte, pos
    value = byte & 0x7F
    shift = 7
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _read_svarint(data: Any, pos: int) -> Tuple[int, int]:
    raw, pos = _read_uvarint(data, pos)
    return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), pos


# ---------------------------------------------------------------------------
# Primitive encoders
# ---------------------------------------------------------------------------


def _enc_none(out: List[bytes], value: Any) -> None:
    out.append(_B_NONE)


def _enc_bool(out: List[bytes], value: Any) -> None:
    out.append(_B_TRUE if value else _B_FALSE)


def _enc_int(out: List[bytes], value: int) -> None:
    z = (value << 1) if value >= 0 else ((-value << 1) - 1)
    if z < 0x80:
        out.append(_INT1[z])
    else:
        out.append(_B_INT)
        _append_uvarint(out, z)


def _enc_float(out: List[bytes], value: float) -> None:
    out.append(_B_FLOAT)
    out.append(_PACK_D(value))


def _enc_str(out: List[bytes], value: str) -> None:
    raw = value.encode("utf-8")
    n = len(raw)
    if n < 128:
        out.append(_STR_HDR[n])
    else:
        out.append(_B_STR)
        _append_uvarint(out, n)
    out.append(raw)


def _enc_bytes(out: List[bytes], value: bytes) -> None:
    n = len(value)
    if n < 128:
        out.append(_BYTES_HDR[n])
    else:
        out.append(_B_BYTES)
        _append_uvarint(out, n)
    out.append(value)


def _enc_vt(out: List[bytes], value: VirtualTime) -> None:
    # Each VT caches its canonical encoding (tag + two zigzag varints) the
    # first time it crosses the wire: commit fan-out re-encodes the same
    # timestamps once per destination, and dict/frozenset canonicalization
    # re-encodes them once per containing collection.
    try:
        out.append(value._wire)
    except AttributeError:
        parts: List[bytes] = [_B_VT]
        counter = value.counter
        z = (counter << 1) if counter >= 0 else ((-counter << 1) - 1)
        if z < 0x80:
            parts.append(_BYTE[z])
        else:
            _append_uvarint(parts, z)
        site = value.site
        z = (site << 1) if site >= 0 else ((-site << 1) - 1)
        if z < 0x80:
            parts.append(_BYTE[z])
        else:
            _append_uvarint(parts, z)
        raw = b"".join(parts)
        object.__setattr__(value, "_wire", raw)
        out.append(raw)


def _enc_value(out: List[bytes], value: Any) -> None:
    """Generic dispatch: exact-type table first, isinstance fallback after."""
    enc = _ENCODERS.get(value.__class__)
    if enc is None:
        _enc_fallback(out, value)
    else:
        enc(out, value)


def _enc_items(out: List[bytes], value: Any) -> None:
    """Shared element loop for tuples and lists: ints and virtual times —
    the bulk of real traffic — inline; everything else via the dispatch."""
    encoders = _ENCODERS
    for item in value:
        cls = item.__class__
        if cls is int:
            z = (item << 1) if item >= 0 else ((-item << 1) - 1)
            if z < 0x80:
                out.append(_INT1[z])
            else:
                out.append(_B_INT)
                _append_uvarint(out, z)
        elif cls is VirtualTime:
            raw = getattr(item, "_wire", None)
            if raw is not None:
                out.append(raw)
            else:
                _enc_vt(out, item)
        else:
            enc = encoders.get(cls)
            if enc is None:
                _enc_fallback(out, item)
            else:
                enc(out, item)


def _enc_tuple(out: List[bytes], value: tuple) -> None:
    n = len(value)
    if n < 128:
        out.append(_TUPLE_HDR[n])
    else:
        out.append(_B_TUPLE)
        _append_uvarint(out, n)
    if n:
        _enc_items(out, value)


def _enc_list(out: List[bytes], value: list) -> None:
    n = len(value)
    if n < 128:
        out.append(_LIST_HDR[n])
    else:
        out.append(_B_LIST)
        _append_uvarint(out, n)
    if n:
        _enc_items(out, value)


def _enc_dict(out: List[bytes], value: dict) -> None:
    # Canonical order: entries sorted by their encoded key bytes, so two
    # equal dicts always encode identically.  (Keys with equal encodings
    # would decode equal, hence be the same key — sorting the (key, value)
    # byte pairs matches the reference codec exactly.)
    n = len(value)
    if n < 128:
        out.append(_DICT_HDR[n])
    else:
        out.append(_B_DICT)
        _append_uvarint(out, n)
    if n == 0:
        return
    if n == 1:
        ((key, val),) = value.items()
        _enc_value(out, key)
        _enc_value(out, val)
        return
    entries = []
    for key, val in value.items():
        kparts: List[bytes] = []
        _enc_value(kparts, key)
        vparts: List[bytes] = []
        _enc_value(vparts, val)
        entries.append((b"".join(kparts), b"".join(vparts)))
    entries.sort()
    for kbytes, vbytes in entries:
        out.append(kbytes)
        out.append(vbytes)


def _enc_frozenset(out: List[bytes], value: frozenset) -> None:
    # Canonical order: elements sorted by their encoded bytes.
    n = len(value)
    if n < 128:
        out.append(_FROZENSET_HDR[n])
    else:
        out.append(_B_FROZENSET)
        _append_uvarint(out, n)
    if n == 0:
        return
    items = []
    for item in value:
        parts: List[bytes] = []
        _enc_value(parts, item)
        items.append(b"".join(parts))
    items.sort()
    out.extend(items)


def _enc_fallback(out: List[bytes], value: Any) -> None:
    """Subclasses and unregistered types: the reference isinstance chain."""
    if value is None:
        out.append(_B_NONE)
    elif value is True:
        out.append(_B_TRUE)
    elif value is False:
        out.append(_B_FALSE)
    elif isinstance(value, VirtualTime):
        _enc_vt(out, value)
    elif isinstance(value, int):  # after bool/VT checks
        _enc_int(out, value)
    elif isinstance(value, float):
        _enc_float(out, value)
    elif isinstance(value, str):
        _enc_str(out, value)
    elif isinstance(value, bytes):
        _enc_bytes(out, value)
    elif isinstance(value, tuple):
        _enc_tuple(out, value)
    elif isinstance(value, list):
        _enc_list(out, value)
    elif isinstance(value, dict):
        _enc_dict(out, value)
    elif isinstance(value, frozenset):
        _enc_frozenset(out, value)
    else:
        entry = _STRUCTS_BY_CLASS.get(type(value))
        if entry is None:
            raise WireError(
                f"{type(value).__name__} is not wire-encodable; register it "
                "with repro.wire.register_struct"
            )
        _ENCODERS[type(value)](out, value)


_ENCODERS[type(None)] = _enc_none
_ENCODERS[bool] = _enc_bool
_ENCODERS[int] = _enc_int
_ENCODERS[float] = _enc_float
_ENCODERS[str] = _enc_str
_ENCODERS[bytes] = _enc_bytes
_ENCODERS[tuple] = _enc_tuple
_ENCODERS[list] = _enc_list
_ENCODERS[dict] = _enc_dict
_ENCODERS[frozenset] = _enc_frozenset
_ENCODERS[VirtualTime] = _enc_vt


# ---------------------------------------------------------------------------
# Primitive decoders — each takes (buf, pos past the tag byte) and returns
# (value, new pos).  buf is bytes or a memoryview; out-of-range reads raise
# IndexError, converted to WireError at the decode() boundary.
# ---------------------------------------------------------------------------


def _dec_none(data: Any, pos: int) -> Tuple[None, int]:
    return None, pos


def _dec_true(data: Any, pos: int) -> Tuple[bool, int]:
    return True, pos


def _dec_false(data: Any, pos: int) -> Tuple[bool, int]:
    return False, pos


def _dec_int(data: Any, pos: int) -> Tuple[int, int]:
    raw = data[pos]
    pos += 1
    if raw >= 0x80:
        raw &= 0x7F
        shift = 7
        while True:
            byte = data[pos]
            pos += 1
            raw |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
    return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), pos


def _dec_float(data: Any, pos: int) -> Tuple[float, int]:
    if pos + 8 > len(data):
        raise WireError("truncated float")
    return _UNPACK_D(data, pos)[0], pos + 8


def _dec_str(data: Any, pos: int) -> Tuple[str, int]:
    n = data[pos]
    if n < 0x80:
        pos += 1
    else:
        n, pos = _read_uvarint(data, pos)
    end = pos + n
    if end > len(data):
        raise WireError("truncated string")
    raw = data[pos:end]
    if n <= _STR_INTERN_MAX_LEN:
        # Short strings are site/object uids and op kinds that repeat across
        # a collaboration's whole message stream — intern them so repeated
        # decodes share one object (and skip the UTF-8 decode on a hit).
        # memoryview slices hash/compare like their bytes, so lookups stay
        # zero-copy; only a cache miss materializes the key.
        cached = _STR_CACHE.get(raw)
        if cached is not None:
            return cached, end
        text = sys.intern(str(raw, "utf-8"))
        if len(_STR_CACHE) >= _STR_CACHE_MAX:
            _STR_CACHE.clear()
        _STR_CACHE[bytes(raw)] = text
        return text, end
    return str(raw, "utf-8"), end


def _dec_bytes(data: Any, pos: int) -> Tuple[bytes, int]:
    n, pos = _read_uvarint(data, pos)
    end = pos + n
    if end > len(data):
        raise WireError("truncated bytes")
    return bytes(data[pos:end]), end


def _dec_items(data: Any, pos: int, n: int) -> Tuple[list, int]:
    """Shared element loop for tuples and lists, mirroring :func:`_enc_items`:
    single-byte ints and virtual times decode inline."""
    decoders = _DECODERS
    items = []
    append = items.append
    for _ in range(n):
        tag = data[pos]
        if tag == 0x03:
            z = data[pos + 1]
            if z < 0x80:
                item = (z >> 1) if not z & 1 else -((z + 1) >> 1)
                pos += 2
            else:
                item, pos = _dec_int(data, pos + 1)
        elif tag == 0x0B:
            item, pos = _dec_vt(data, pos + 1)
        else:
            fn = decoders[tag]
            if fn is None:
                raise WireError(f"unknown wire tag {tag:#x}")
            item, pos = fn(data, pos + 1)
        append(item)
    return items, pos


def _dec_tuple(data: Any, pos: int) -> Tuple[tuple, int]:
    n = data[pos]
    if n < 0x80:
        pos += 1
    else:
        n, pos = _read_uvarint(data, pos)
    if not n:
        return (), pos
    items, pos = _dec_items(data, pos, n)
    return tuple(items), pos


def _dec_list(data: Any, pos: int) -> Tuple[list, int]:
    n = data[pos]
    if n < 0x80:
        pos += 1
    else:
        n, pos = _read_uvarint(data, pos)
    if not n:
        return [], pos
    return _dec_items(data, pos, n)


def _dec_dict(data: Any, pos: int) -> Tuple[dict, int]:
    n, pos = _read_uvarint(data, pos)
    decoders = _DECODERS
    mapping = {}
    for _ in range(n):
        fn = decoders[data[pos]]
        if fn is None:
            raise WireError(f"unknown wire tag {data[pos]:#x}")
        key, pos = fn(data, pos + 1)
        fn = decoders[data[pos]]
        if fn is None:
            raise WireError(f"unknown wire tag {data[pos]:#x}")
        val, pos = fn(data, pos + 1)
        mapping[key] = val
    return mapping, pos


def _dec_frozenset(data: Any, pos: int) -> Tuple[frozenset, int]:
    n, pos = _read_uvarint(data, pos)
    decoders = _DECODERS
    elems = []
    append = elems.append
    for _ in range(n):
        fn = decoders[data[pos]]
        if fn is None:
            raise WireError(f"unknown wire tag {data[pos]:#x}")
        item, pos = fn(data, pos + 1)
        append(item)
    fs = frozenset(elems)
    if len(fs) != n:
        raise WireError("frozenset payload contains duplicate elements")
    return fs, pos


def _dec_vt(data: Any, pos: int) -> Tuple[VirtualTime, int]:
    # The cache is keyed on the raw zigzag varint values (bijective with
    # (counter, site)), so the hit path never un-zigzags at all.
    z1 = data[pos]
    if z1 < 0x80:
        pos += 1
    else:
        z1, pos = _read_uvarint(data, pos)
    z2 = data[pos]
    if z2 < 0x80:
        pos += 1
    else:
        z2, pos = _read_uvarint(data, pos)
    key: Any = z1 * 128 + z2 if z1 < 0x80 and z2 < 0x80 else (z1, z2)
    vt = _VT_CACHE.get(key)
    if vt is None:
        if len(_VT_CACHE) >= _VT_CACHE_MAX:
            _VT_CACHE.clear()
        vt = VirtualTime(
            (z1 >> 1) if not z1 & 1 else -((z1 + 1) >> 1),
            (z2 >> 1) if not z2 & 1 else -((z2 + 1) >> 1),
        )
        if z1 < 0x80 and z2 < 0x80:
            # Pre-stamp the canonical encoding so re-encoding this VT (fan
            # out, relays) is a single cached append from the start.
            object.__setattr__(vt, "_wire", bytes((_T_VT, z1, z2)))
        _VT_CACHE[key] = vt
    return vt, pos


def _dec_any(data: Any, pos: int) -> Tuple[Any, int]:
    """Decode one value of unknown type: table dispatch on the tag byte."""
    fn = _DECODERS[data[pos]]
    if fn is None:
        raise WireError(f"unknown wire tag {data[pos]:#x}")
    return fn(data, pos + 1)


_DECODERS[_T_NONE] = _dec_none
_DECODERS[_T_TRUE] = _dec_true
_DECODERS[_T_FALSE] = _dec_false
_DECODERS[_T_INT] = _dec_int
_DECODERS[_T_FLOAT] = _dec_float
_DECODERS[_T_STR] = _dec_str
_DECODERS[_T_BYTES] = _dec_bytes
_DECODERS[_T_TUPLE] = _dec_tuple
_DECODERS[_T_LIST] = _dec_list
_DECODERS[_T_DICT] = _dec_dict
_DECODERS[_T_FROZENSET] = _dec_frozenset
_DECODERS[_T_VT] = _dec_vt


# ---------------------------------------------------------------------------
# Packer compilation
#
# register_struct() compiles one specialized encoder and one specialized
# decoder per struct.  The compiler is annotation-directed: each field's
# declared type selects an inline fast path (small ints, cached virtual
# times, interned short strings, typed tuples), and fields or tuple
# elements declared as already-registered structs are expanded INLINE into
# the parent's generated code — a TxnPropagateMsg decodes its WriteOps and
# their OpPayloads in one flat function, with no per-struct call overhead.
# Annotations are hints, not contracts: every generated fast path guards on
# the actual wire tag / runtime class and falls back to fully generic
# dispatch, so a mis-annotated field still round-trips correctly.
# ---------------------------------------------------------------------------

#: Registered struct classes by bare name, for resolving string annotations
#: like ``op: OpPayload`` at compile time.  A name registered twice (two
#: structs with the same ``__name__``) maps to None: ambiguous, never
#: inlined.
_STRUCT_NAMES: Dict[str, Optional[type]] = {}

#: Maximum nesting depth of inline expansion (struct-in-tuple-in-struct...).
#: Beyond this the generated code falls back to table dispatch; the limit
#: bounds generated-code size, not expressible values.
_MAX_INLINE_DEPTH = 6


def _field_spec(tp: Any) -> Tuple[str, Optional[str]]:
    """Classify a dataclass field annotation as ``(kind, detail)``.

    ``detail`` carries the element annotation for homogeneous tuples and
    the class name for struct-typed (or Optional struct) fields.  This is
    plain string matching over the source annotation (``from __future__
    import annotations`` keeps them as strings); anything unrecognized
    becomes the fully generic kind ``any``.
    """
    if not isinstance(tp, str):
        tp = getattr(tp, "__name__", "")
    tp = tp.replace(" ", "").replace("typing.", "")
    if tp == "int":
        return "int", None
    if tp == "str":
        return "str", None
    if tp == "bool":
        return "bool", None
    if tp == "VirtualTime":
        return "vt", None
    if tp == "Optional[VirtualTime]":
        return "optvt", None
    if tp.startswith(("Tuple[", "tuple[")) and tp.endswith("]"):
        inner = tp[tp.index("[") + 1 : -1]
        if inner.endswith(",..."):
            return "tuple", inner[:-4]
        if "[" not in inner and len(set(inner.split(","))) == 1:
            return "tuple", inner.split(",")[0]
        return "tuple", None
    if tp == "tuple":
        return "tuple", None
    if tp.startswith("Optional[") and tp.endswith("]"):
        return "optobj", tp[9:-1]
    if tp.isidentifier() and tp not in ("Any", "object"):
        return "obj", tp
    return "any", None


def _plain_init_dataclass(cls: type) -> bool:
    """True when ``cls(*values)`` only assigns fields — i.e. the generated
    ``__init__`` with no ``__post_init__`` hook — so the decoder may build
    instances directly without skipping any validation."""
    params = getattr(cls, "__dataclass_params__", None)
    return (
        params is not None
        and params.init
        and not hasattr(cls, "__post_init__")
        and "__slots__" not in cls.__dict__
    )


class _Codegen:
    """State for one compilation: emitted lines, the exec namespace, and a
    counter for unique local names (inline expansion nests scopes in one
    function body, so every live-across-statements local is suffixed)."""

    def __init__(self, namespace: Dict[str, Any]) -> None:
        self.lines: List[str] = []
        self.ns = namespace
        self._uid = 0

    def add(self, indent: int, block: str) -> None:
        pad = "    " * indent
        for line in block.split("\n"):
            self.lines.append(pad + line if line else line)

    def uid(self) -> int:
        self._uid += 1
        return self._uid

    def bind(self, prefix: str, obj: Any) -> str:
        name = f"{prefix}{self.uid()}"
        self.ns[name] = obj
        return name

    def source(self) -> str:
        return "\n".join(self.lines)


def _inline_decode_target(detail: Optional[str]) -> Optional[type]:
    """The registered class a decode site may expand inline, or None.

    Only plain-init structs qualify: classes with ``__post_init__``
    invariants must run their constructor.  ``__wire_intern__`` classes
    inline too — the span-cache lookup is emitted as part of the inline
    body, so interning costs no call overhead.
    """
    cls = _STRUCT_NAMES.get(detail) if detail else None
    if (
        cls is not None
        and cls in _STRUCTS_BY_CLASS
        and _plain_init_dataclass(cls)
    ):
        return cls
    return None


# --- encode emission -------------------------------------------------------


def _emit_enc_vt_body(g: _Codegen, ind: int, var: str) -> None:
    # cached canonical encoding: one getattr + one append on the hot path
    g.add(
        ind,
        f"""\
w = _ga({var}, "_wire", None)
if w is not None:
    append(w)
else:
    _ev(out, {var})""",
    )


def _emit_enc_struct_body(g: _Codegen, ind: int, var: str, cls: type, depth: int) -> None:
    tag, fields = _STRUCTS_BY_CLASS[cls]
    interned = bool(getattr(cls, "__wire_intern__", False))
    if interned:
        # Per-instance cached canonical encoding, the VirtualTime._wire
        # pattern one level up: commit fan-out encodes the same frozen
        # value object once per destination, every encode after the first
        # is one getattr + one append.  (Per-instance, not per-value —
        # value-keyed caching would conflate 1/True/1.0 and 0.0/-0.0,
        # which compare equal but encode differently.)
        u = g.uid()
        g.add(ind, f"w{u} = _ga({var}, '_wire', None)")
        g.add(ind, f"if w{u} is not None:\n    append(w{u})\nelse:")
        ind += 1
        g.add(ind, f"m{u} = len(out)")
    g.add(ind, f"append({g.bind('_t', _BYTE[tag])})")
    specs = tuple(_field_spec(f.type) for f in dataclasses.fields(cls))
    for name, spec in zip(fields, specs):
        fv = f"x{g.uid()}"
        g.add(ind, f"{fv} = {var}.{name}")
        _emit_encode(g, ind, fv, spec, depth + 1)
    if interned:
        g.add(ind, f"_stamp({var}, out, m{u})")


def _emit_encode(g: _Codegen, ind: int, var: str, spec: Tuple[str, Optional[str]], depth: int) -> None:
    """Emit code encoding the value held in local ``var`` (appends to the
    shared parts list ``out`` via the hoisted ``append``)."""
    kind, detail = spec
    if kind == "int":
        g.add(
            ind,
            f"""\
if {var}.__class__ is _int:
    z = ({var} << 1) if {var} >= 0 else ((-{var} << 1) - 1)
    if z < 0x80:
        append(_INT1[z])
    else:
        append(_B_INT)
        _uv(out, z)
else:
    _gen(out, {var})""",
        )
    elif kind == "vt":
        g.add(ind, f"if {var}.__class__ is _VT:")
        _emit_enc_vt_body(g, ind + 1, var)
        g.add(ind, f"else:\n    _gen(out, {var})")
    elif kind == "optvt":
        g.add(ind, f"if {var} is None:\n    append(_B_NONE)\nelif {var}.__class__ is _VT:")
        _emit_enc_vt_body(g, ind + 1, var)
        g.add(ind, f"else:\n    _gen(out, {var})")
    elif kind == "str":
        g.add(
            ind,
            f"""\
if {var}.__class__ is _str:
    r = {var}.encode("utf-8")
    n = len(r)
    if n < 0x80:
        append(_STR_HDR[n])
    else:
        append(_B_STR)
        _uv(out, n)
    append(r)
else:
    _gen(out, {var})""",
        )
    elif kind == "bool":
        g.add(
            ind,
            f"""\
if {var} is True:
    append(_B_TRUE)
elif {var} is False:
    append(_B_FALSE)
else:
    _gen(out, {var})""",
        )
    elif kind == "tuple" and depth < _MAX_INLINE_DEPTH:
        elem = f"e{g.uid()}"
        g.add(
            ind,
            f"""\
if {var}.__class__ is _tuple:
    n = len({var})
    if n < 0x80:
        append(_TUPLE_HDR[n])
    else:
        append(_B_TUPLE)
        _uv(out, n)
    for {elem} in {var}:""",
        )
        _emit_encode(g, ind + 2, elem, _field_spec(detail) if detail else ("any", None), depth + 1)
        g.add(ind, f"else:\n    _gen(out, {var})")
    elif kind in ("obj", "optobj"):
        cls = _STRUCT_NAMES.get(detail) if detail else None
        inline = (
            cls is not None and cls in _STRUCTS_BY_CLASS and depth < _MAX_INLINE_DEPTH
        )
        if kind == "optobj":
            g.add(ind, f"if {var} is None:\n    append(_B_NONE)")
            branch, ind2 = "elif", ind
        else:
            branch, ind2 = "if", ind
        if inline:
            kn = g.bind("_c", cls)
            g.add(ind2, f"{branch} {var}.__class__ is {kn}:")
            _emit_enc_struct_body(g, ind2 + 1, var, cls, depth)
            g.add(ind2, f"else:\n    _gen(out, {var})")
        elif kind == "optobj":
            g.add(ind2, f"else:\n    _gen(out, {var})")
        else:
            g.add(
                ind,
                f"""\
e = _ENC.get({var}.__class__)
if e is None:
    _FB(out, {var})
else:
    e(out, {var})""",
            )
    else:  # "any" (and depth-capped tuples): the generic dispatch chain
        g.add(
            ind,
            f"""\
c = {var}.__class__
if c is _int:
    z = ({var} << 1) if {var} >= 0 else ((-{var} << 1) - 1)
    if z < 0x80:
        append(_INT1[z])
    else:
        append(_B_INT)
        _uv(out, z)
elif c is _VT:""",
        )
        _emit_enc_vt_body(g, ind + 1, var)
        g.add(
            ind,
            f"""\
elif {var} is None:
    append(_B_NONE)
elif c is _bool:
    append(_B_TRUE if {var} else _B_FALSE)
else:
    e = _ENC.get(c)
    if e is None:
        _FB(out, {var})
    else:
        e(out, {var})""",
        )


def _compile_packer(tag: int, cls: type) -> Callable:
    """Generate the specialized encoder for one struct: flat straight-line
    code appending the tag byte then every field (nested registered structs
    and typed tuple elements included) to the shared parts list."""
    namespace: Dict[str, Any] = {
        "_ENC": _ENCODERS,
        "_FB": _enc_fallback,
        "_gen": _enc_value,
        "_ev": _enc_vt,
        "_uv": _append_uvarint,
        "_ga": getattr,
        "_stamp": _stamp_wire,
        "_int": int,
        "_bool": bool,
        "_str": str,
        "_tuple": tuple,
        "_VT": VirtualTime,
        "_INT1": _INT1,
        "_STR_HDR": _STR_HDR,
        "_TUPLE_HDR": _TUPLE_HDR,
        "_B_INT": _B_INT,
        "_B_STR": _B_STR,
        "_B_TUPLE": _B_TUPLE,
        "_B_NONE": _B_NONE,
        "_B_TRUE": _B_TRUE,
        "_B_FALSE": _B_FALSE,
    }
    g = _Codegen(namespace)
    g.add(0, "def _pack(out, value):")
    g.add(1, "append = out.append")
    _emit_enc_struct_body(g, 1, "value", cls, 0)
    exec(compile(g.source(), f"<wire-packer-{tag:#x}>", "exec"), namespace)
    return namespace["_pack"]


# --- decode emission -------------------------------------------------------


def _emit_dec_int_body(g: _Codegen, ind: int, var: str) -> None:
    # caller has verified the tag byte at ``pos`` is _T_INT
    g.add(
        ind,
        f"""\
z = data[pos + 1]
if z < 0x80:
    {var} = (z >> 1) if not z & 1 else -((z + 1) >> 1)
    pos += 2
else:
    {var}, pos = _di(data, pos + 1)""",
    )


def _emit_dec_vt_body(g: _Codegen, ind: int, var: str) -> None:
    # caller has verified the tag byte at ``pos`` is _T_VT; the fast path
    # is both zigzag varints single-byte and the pair already interned
    g.add(
        ind,
        f"""\
z1 = data[pos + 1]
if z1 < 0x80:
    z2 = data[pos + 2]
    if z2 < 0x80:
        {var} = _VTC(z1 * 128 + z2)
        pos += 3
        if {var} is None:
            {var}, pos = _dv(data, pos - 2)
    else:
        {var}, pos = _dv(data, pos + 1)
else:
    {var}, pos = _dv(data, pos + 1)""",
    )


def _emit_dec_struct_body(g: _Codegen, ind: int, var: str, cls: type, depth: int) -> None:
    """Emit the body decoding struct ``cls`` (tag already consumed) into
    ``var``: field-by-field inline decode, then one instance-dict swap.

    ``__wire_intern__`` classes first consult the span memo: if the bytes
    at the cursor equal a previously parsed span, the parse *and* the
    construction are skipped and the shared instance is reused.  (The span
    is deliberately *not* stamped as the instance's ``_wire`` encode
    cache: the decoder tolerates non-canonical input — overlong varints,
    unsorted dict entries — and replaying such a span from encode would
    break byte determinism.  Encode stamps canonically on first use.)
    """
    _tag, fields = _STRUCTS_BY_CLASS[cls]
    interned = bool(getattr(cls, "__wire_intern__", False))
    u = g.uid()
    if interned:
        # the caller just consumed the tag byte, so the span starts at pos-1
        g.add(
            ind,
            f"""\
sp{u} = pos - 1
{var} = None
c{u} = _IC(data[sp{u}:sp{u} + {_SPAN_PREFIX_LEN}])
if c{u} is not None:
    for s{u}, v{u} in c{u}:
        n{u} = len(s{u})
        if data[sp{u}:sp{u} + n{u}] == s{u}:
            {var} = v{u}
            pos = sp{u} + n{u}
            break
if {var} is None:""",
        )
        ind += 1
    specs = tuple(_field_spec(f.type) for f in dataclasses.fields(cls))
    vnames = []
    for spec in specs:
        fv = f"f{g.uid()}"
        vnames.append(fv)
        _emit_decode(g, ind, fv, spec, depth + 1)
    kn = g.bind("_c", cls)
    items = ", ".join(f"'{nm}': {fv}" for nm, fv in zip(fields, vnames))
    # one swap of the whole instance dict: the per-class __dict__ descriptor
    # set is the cheapest way in (the frozen dataclass __setattr__ refuses
    # even __dict__, and object.__setattr__ re-resolves the descriptor on
    # every call)
    setter = vars(cls).get("__dict__")
    g.add(ind, f"{var} = _new({kn})")
    if setter is not None:
        g.add(ind, f"{g.bind('_sd', setter.__set__)}({var}, {{{items}}})")
    else:  # __dict__ descriptor lives on a base class; take the slow door
        g.add(ind, f"_osa({var}, '__dict__', {{{items}}})")
    if interned:
        g.add(ind, f"_AI(data[sp{u}:sp{u} + {_SPAN_PREFIX_LEN}], data[sp{u}:pos], {var})")


def _emit_decode(g: _Codegen, ind: int, var: str, spec: Tuple[str, Optional[str]], depth: int) -> None:
    """Emit code decoding one value at ``(data, pos)`` into local ``var``,
    advancing ``pos`` past it."""
    kind, detail = spec
    if kind == "int":
        g.add(ind, "if data[pos] == 0x03:")
        _emit_dec_int_body(g, ind + 1, var)
        g.add(ind, f"else:\n    {var}, pos = _da(data, pos)")
    elif kind == "vt":
        g.add(ind, "if data[pos] == 0x0B:")
        _emit_dec_vt_body(g, ind + 1, var)
        g.add(ind, f"else:\n    {var}, pos = _da(data, pos)")
    elif kind == "optvt":
        t = f"t{g.uid()}"
        g.add(
            ind,
            f"""\
{t} = data[pos]
if {t} == 0x00:
    {var} = None
    pos += 1
elif {t} == 0x0B:""",
        )
        _emit_dec_vt_body(g, ind + 1, var)
        g.add(ind, f"else:\n    {var}, pos = _da(data, pos)")
    elif kind == "str":
        g.add(
            ind,
            f"""\
if data[pos] == 0x05:
    n = data[pos + 1]
    if n < 0x80:
        end = pos + 2 + n
        if end <= len(data):
            {var} = _SC(data[pos + 2:end])
            if {var} is None:
                {var}, end = _ds(data, pos + 1)
            pos = end
        else:
            {var}, pos = _ds(data, pos + 1)
    else:
        {var}, pos = _ds(data, pos + 1)
else:
    {var}, pos = _da(data, pos)""",
        )
    elif kind == "bool":
        t = f"t{g.uid()}"
        g.add(
            ind,
            f"""\
{t} = data[pos]
if {t} == 0x01:
    {var} = True
    pos += 1
elif {t} == 0x02:
    {var} = False
    pos += 1
else:
    {var}, pos = _da(data, pos)""",
        )
    elif kind == "tuple" and depth < _MAX_INLINE_DEPTH:
        u = g.uid()
        acc, ap, elem = f"l{u}", f"ap{u}", f"e{u}"
        g.add(
            ind,
            f"""\
if data[pos] == 0x07:
    n = data[pos + 1]
    if n < 0x80:
        pos += 2
        if n:
            {acc} = []
            {ap} = {acc}.append
            for _ in range(n):""",
        )
        _emit_decode(g, ind + 4, elem, _field_spec(detail) if detail else ("any", None), depth + 1)
        g.add(
            ind,
            f"""\
                {ap}({elem})
            {var} = _tu({acc})
        else:
            {var} = ()
    else:
        {var}, pos = _dt(data, pos + 1)
else:
    {var}, pos = _da(data, pos)""",
        )
    elif kind in ("obj", "optobj"):
        cls = _inline_decode_target(detail) if depth < _MAX_INLINE_DEPTH else None
        if kind == "optobj":
            t = f"t{g.uid()}"
            g.add(ind, f"{t} = data[pos]\nif {t} == 0x00:\n    {var} = None\n    pos += 1")
            if cls is not None:
                g.add(ind, f"elif {t} == {_STRUCTS_BY_CLASS[cls][0]:#x}:")
                g.add(ind + 1, "pos += 1")
                _emit_dec_struct_body(g, ind + 1, var, cls, depth)
            g.add(ind, f"else:\n    {var}, pos = _da(data, pos)")
        elif cls is not None:
            g.add(ind, f"if data[pos] == {_STRUCTS_BY_CLASS[cls][0]:#x}:")
            g.add(ind + 1, "pos += 1")
            _emit_dec_struct_body(g, ind + 1, var, cls, depth)
            g.add(ind, f"else:\n    {var}, pos = _da(data, pos)")
        else:
            g.add(ind, f"{var}, pos = _da(data, pos)")
    else:  # "any" (and depth-capped tuples): the generic dispatch chain
        t = f"t{g.uid()}"
        g.add(
            ind,
            f"""\
{t} = data[pos]
if {t} == 0x03:""",
        )
        _emit_dec_int_body(g, ind + 1, var)
        g.add(ind, f"elif {t} == 0x0B:")
        _emit_dec_vt_body(g, ind + 1, var)
        g.add(
            ind,
            f"""\
elif {t} == 0x00:
    {var} = None
    pos += 1
elif {t} == 0x01:
    {var} = True
    pos += 1
elif {t} == 0x02:
    {var} = False
    pos += 1
else:
    fn = _DEC[{t}]
    if fn is None:
        raise _WE('unknown wire tag %#x' % {t})
    {var}, pos = fn(data, pos + 1)""",
        )


def _compile_unpacker(tag: int, cls: type) -> Callable:
    """Generate the specialized decoder for one struct.

    Plain dataclasses (generated ``__init__``, no ``__post_init__``) are
    built by swapping in the instance ``__dict__`` directly — the same
    result as the constructor at a fraction of the cost — and their
    registered nested structs decode inline in the same function.  Classes
    with invariants (e.g. :class:`ReplicationGraph`) go through
    ``cls(*values)`` so their validation still runs, and constructor
    failures surface as :class:`WireError` exactly as in the reference
    decoder.
    """
    namespace: Dict[str, Any] = {
        "_DEC": _DECODERS,
        "_WE": WireError,
        "_di": _dec_int,
        "_dv": _dec_vt,
        "_da": _dec_any,
        "_ds": _dec_str,
        "_dt": _dec_tuple,
        "_tu": tuple,
        "_new": object.__new__,
        "_osa": object.__setattr__,
        "_VTC": _VT_CACHE.get,
        "_SC": _STR_CACHE.get,
        "_IC": _STRUCT_CACHE.get,
        "_AI": _memo_span,
    }
    g = _Codegen(namespace)
    g.add(0, "def _unpack(data, pos):")
    if _plain_init_dataclass(cls):
        _emit_dec_struct_body(g, 1, "value", cls, 0)
        g.add(1, "return value, pos")
    else:
        _, fields = _STRUCTS_BY_CLASS[cls]
        specs = tuple(_field_spec(f.type) for f in dataclasses.fields(cls))
        vnames = []
        for spec in specs:
            fv = f"f{g.uid()}"
            vnames.append(fv)
            _emit_decode(g, 1, fv, spec, 1)
        kn = g.bind("_c", cls)
        g.add(1, "try:")
        g.add(2, f"return {kn}({', '.join(vnames)}), pos")
        g.add(1, "except Exception as exc:")
        g.add(
            2,
            f"raise _WE('invalid %s payload: %s' % ({kn}.__name__, exc)) from exc",
        )
    exec(compile(g.source(), f"<wire-unpacker-{tag:#x}>", "exec"), namespace)
    return namespace["_unpack"]


def _interning_unpacker(base: Callable) -> Callable:
    """Wrap a struct unpacker with the span memo.

    Only ``__wire_intern__`` classes that cannot take the plain-init fast
    path use this wrapper (plain dataclasses get the memo emitted inline).
    Skipping the parse also skips the constructor's validation, which is
    sound: identical bytes already validated once.
    """

    def _unpack(data: Any, pos: int) -> Tuple[Any, int]:
        start = pos - 1  # include the already-consumed tag byte
        bucket = _STRUCT_CACHE.get(data[start : start + _SPAN_PREFIX_LEN])
        if bucket is not None:
            for span, value in bucket:
                end = start + len(span)
                if data[start:end] == span:
                    return value, end
        value, pos = base(data, pos)
        _memo_span(data[start : start + _SPAN_PREFIX_LEN], data[start:pos], value)
        return value, pos

    return _unpack


def register_struct(tag: int, cls: type) -> None:
    """Enter a frozen dataclass into the wire registry under ``tag``.

    The encoding is the tag byte followed by the field values in dataclass
    declaration order; decode reconstructs via the positional constructor.
    Tags below 0x20 are reserved for codec primitives.  Registering the
    same (tag, class) pair twice is a no-op; conflicting registrations are
    an error — tags are a wire contract, not a runtime convenience.

    Registration compiles the specialized packer/unpacker pair for the
    class and installs them in the dispatch tables; a class whose
    ``__wire_intern__`` attribute is true additionally gets a bounded
    decode-side intern cache (see :data:`repro.core.messages.SlotId`).
    """
    if not 0x20 <= tag <= 0xFF:
        raise WireError(f"struct tags must be in [0x20, 0xFF], got {tag:#x}")
    if not dataclasses.is_dataclass(cls):
        raise WireError(f"{cls.__name__} is not a dataclass")
    fields = tuple(f.name for f in dataclasses.fields(cls))
    existing = _STRUCTS_BY_TAG.get(tag)
    if existing is not None:
        if existing[0] is cls:
            return
        raise WireError(
            f"wire tag {tag:#x} already registered for {existing[0].__name__}"
        )
    if cls in _STRUCTS_BY_CLASS:
        raise WireError(
            f"{cls.__name__} already registered under tag {_STRUCTS_BY_CLASS[cls][0]:#x}"
        )
    _STRUCTS_BY_TAG[tag] = (cls, fields)
    _STRUCTS_BY_CLASS[cls] = (tag, fields)
    # Name -> class map for annotation-directed inlining; an ambiguous name
    # (two registered classes sharing __name__) is poisoned to None so it is
    # never inlined (already-compiled packers are unaffected: tags are
    # immutable, so inlined copies can never go stale).
    _STRUCT_NAMES[cls.__name__] = (
        None if cls.__name__ in _STRUCT_NAMES else cls
    )
    _ENCODERS[cls] = _compile_packer(tag, cls)
    unpacker = _compile_unpacker(tag, cls)
    if getattr(cls, "__wire_intern__", False) and not _plain_init_dataclass(cls):
        # plain-init classes get the span cache emitted inline instead
        unpacker = _interning_unpacker(unpacker)
    _DECODERS[tag] = unpacker


#: The canonical tag assignments.  Order and values are part of the wire
#: contract (docs/WIRE.md); append new structs, never renumber.
@dataclasses.dataclass(frozen=True)
class TraceContext:
    """Trace context carried in a version-2 frame header.

    ``origin`` is the sending site; ``trace_id`` is the txn-VT-derived
    trace identifier (``counter@site`` form, empty when the payload
    carries no transaction VT); ``parent_span`` is the sender-side message sequence
    number — ``f"{origin}:{parent_span}"`` is the cross-process ``msg_id``
    that pairs a ``message_sent`` event in one process's timeline with the
    ``message_delivered`` event in another's (repro.obs.merge).

    ``sampled`` carries the origin's head-based sampling decision in-band
    (repro.obs.sample): every site on the transaction's path records or
    skips the same trace, so partial span trees cannot occur.  Untraced
    (version-1) frames carry no TraceContext and are byte-identical to
    the pre-sampling format.
    """

    origin: int
    trace_id: str
    parent_span: int
    sampled: bool = True

    @property
    def msg_id(self) -> str:
        """The globally unique send identifier this context names."""
        return f"{self.origin}:{self.parent_span}"


_REGISTRY: Tuple[Tuple[int, type], ...] = (
    (0x20, SlotId),
    (0x21, PathStep),
    (0x22, OpPayload),
    (0x23, WriteOp),
    (0x24, ReadCheck),
    (0x25, DelegateGrant),
    (0x26, TxnPropagateMsg),
    (0x27, ConfirmMsg),
    (0x28, CommitMsg),
    (0x29, AbortMsg),
    (0x2A, SnapshotCheck),
    (0x2B, SnapshotConfirmMsg),
    (0x2C, SnapshotReplyMsg),
    (0x2D, WriteConfirmedMsg),
    (0x2E, JoinRequestMsg),
    (0x2F, JoinReplyMsg),
    (0x30, FailQueryMsg),
    (0x31, FailQueryReplyMsg),
    (0x32, FailResolutionMsg),
    (0x33, GraphRepairProposeMsg),
    (0x34, GraphRepairAckMsg),
    (0x35, GraphRepairApplyMsg),
    (0x36, GraphNode),
    (0x37, ReplicationGraph),
    (0x38, Invitation),
    (0x39, Envelope),
    (0x3A, TraceContext),
)

for _tag, _cls in _REGISTRY:
    register_struct(_tag, _cls)

#: The TraceContext packer, bound once — encode_frame appends a trace
#: header per traced frame, so it skips the dispatch-dict lookup.
_TRACE_ENCODER = _ENCODERS[TraceContext]

#: Every registered wire struct, in tag order (test parametrization).
WIRE_STRUCTS: Tuple[type, ...] = tuple(cls for _tag, cls in _REGISTRY)

#: The protocol message types a transport may be handed (excludes the
#: nested payload structs that only ever appear inside other messages).
MESSAGE_TYPES: Tuple[type, ...] = (
    TxnPropagateMsg,
    ConfirmMsg,
    CommitMsg,
    AbortMsg,
    SnapshotConfirmMsg,
    SnapshotReplyMsg,
    WriteConfirmedMsg,
    JoinRequestMsg,
    JoinReplyMsg,
    FailQueryMsg,
    FailQueryReplyMsg,
    FailResolutionMsg,
    GraphRepairProposeMsg,
    GraphRepairAckMsg,
    GraphRepairApplyMsg,
    Envelope,
)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

_VERSION_PREFIX = _BYTE[WIRE_VERSION]


def encode(value: Any) -> bytes:
    """Serialize ``value`` (a protocol message or wire-safe value) to bytes."""
    out: List[bytes] = [_VERSION_PREFIX]
    enc = _ENCODERS.get(value.__class__)
    if enc is None:
        _enc_fallback(out, value)
    else:
        enc(out, value)
    return b"".join(out)


def decode(data: Any) -> Any:
    """Parse bytes produced by :func:`encode`; rejects unknown versions,
    unknown tags, truncated payloads, and trailing garbage.

    Accepts ``bytes`` or any buffer (``memoryview``/``bytearray``) — buffer
    inputs are consumed in place, without copying the payload.  Malformed
    input of any shape raises :class:`WireError`; no other exception type
    escapes this boundary.
    """
    if not data:
        raise WireError("empty payload")
    if data.__class__ is not bytes and data.__class__ is not memoryview:
        data = memoryview(data)
    version = data[0]
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (this codec speaks {WIRE_VERSION})"
        )
    try:
        fn = _DECODERS[data[1]]
        if fn is None:
            raise WireError(f"unknown wire tag {data[1]:#x}")
        value, pos = fn(data, 2)
    except WireError:
        raise
    except Exception as exc:
        # Truncation (IndexError), bad floats (struct.error), invalid UTF-8,
        # unhashable keys (TypeError), pathological nesting (RecursionError):
        # all malformed-input shapes surface as WireError.
        raise WireError(f"malformed payload: {exc.__class__.__name__}: {exc}") from exc
    if pos != len(data):
        raise WireError(f"{len(data) - pos} trailing bytes after payload")
    return value


# ---------------------------------------------------------------------------
# Framing (length-prefixed, for stream transports)
# ---------------------------------------------------------------------------

#: Size of the frame length prefix in bytes (big-endian unsigned).
FRAME_HEADER_BYTES = 4

#: Upper bound on a single frame body.  A frame claiming more than this is
#: treated as stream corruption, not a legitimate payload.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Shared prefix of every untraced frame body: version byte + 3-tuple header.
_FRAME_PREFIX = _VERSION_PREFIX + _TUPLE_HDR[3]

#: Prefix of a traced frame body: v2 version byte + 4-tuple header.
_TRACED_FRAME_PREFIX = _BYTE[FRAME_VERSION_TRACED] + _TUPLE_HDR[4]

#: Prefix of a tenant-scoped frame body: v3 version byte + 5-tuple header.
_TENANT_FRAME_PREFIX = _BYTE[FRAME_VERSION_TENANT] + _TUPLE_HDR[5]


def encode_frame(
    src: int,
    dst: int,
    payload: Any,
    trace: Optional[TraceContext] = None,
    tenant: int = 0,
) -> bytes:
    """One length-prefixed routed frame.

    Without ``trace`` (the default) this is the v1 body —
    ``encode((src, dst, payload))`` — byte-identical to every frame ever
    written before trace propagation existed.  With ``trace`` the body is
    the v2 layout: version byte ``0x02`` followed by the
    ``(src, dst, payload, trace)`` 4-tuple.  A non-zero ``tenant`` selects
    the v3 layout — version byte ``0x03`` followed by the
    ``(tenant, src, dst, payload, trace-or-None)`` 5-tuple — while tenant 0
    (the unscoped namespace) always emits the v1/v2 bytes unchanged.
    Either way the length prefix, version byte, routing fields, and payload
    all land in one parts list joined once — a single allocation per frame.
    """
    if tenant:
        parts: List[bytes] = [b"", _TENANT_FRAME_PREFIX]
        _enc_int(parts, tenant)
    elif trace is None:
        parts = [b"", _FRAME_PREFIX]
    else:
        parts = [b"", _TRACED_FRAME_PREFIX]
    _enc_int(parts, src)
    _enc_int(parts, dst)
    enc = _ENCODERS.get(payload.__class__)
    if enc is None:
        _enc_fallback(parts, payload)
    else:
        enc(parts, payload)
    if tenant:
        if trace is None:
            parts.append(_B_NONE)
        else:
            _TRACE_ENCODER(parts, trace)
    elif trace is not None:
        _TRACE_ENCODER(parts, trace)
    body_len = sum(map(len, parts))
    if body_len > MAX_FRAME_BYTES:
        raise WireError(f"frame of {body_len} bytes exceeds MAX_FRAME_BYTES")
    parts[0] = body_len.to_bytes(FRAME_HEADER_BYTES, "big")
    return b"".join(parts)


def decode_frame(body: Any) -> Tuple[int, int, int, Any, Optional[TraceContext]]:
    """Parse a frame body into ``(tenant, src, dst, payload, trace)``.

    Accepts all three frame versions: v1/v2 bodies yield ``tenant=0``
    (and ``trace=None`` for v1); a v3 body yields its tenant id and its
    trace (or None).  Like :func:`decode`, accepts ``bytes`` or a
    zero-copy buffer view, and malformed input of any shape raises
    :class:`WireError` only.
    """
    if not body:
        raise WireError("empty frame body")
    if body.__class__ is not bytes and body.__class__ is not memoryview:
        body = memoryview(body)
    version = body[0]
    if version != FRAME_VERSION_TRACED and version != FRAME_VERSION_TENANT:
        # v1 (or junk — decode() rejects unknown versions with WireError).
        triple = decode(body)
        if (
            not isinstance(triple, tuple)
            or len(triple) != 3
            or not isinstance(triple[0], int)
            or not isinstance(triple[1], int)
        ):
            raise WireError("frame body is not a (src, dst, payload) triple")
        return (0, triple[0], triple[1], triple[2], None)
    try:
        fn = _DECODERS[body[1]]
        if fn is None:
            raise WireError(f"unknown wire tag {body[1]:#x}")
        value, pos = fn(body, 2)
    except WireError:
        raise
    except Exception as exc:
        raise WireError(f"malformed payload: {exc.__class__.__name__}: {exc}") from exc
    if pos != len(body):
        raise WireError(f"{len(body) - pos} trailing bytes after payload")
    if version == FRAME_VERSION_TRACED:
        if (
            not isinstance(value, tuple)
            or len(value) != 4
            or not isinstance(value[0], int)
            or not isinstance(value[1], int)
            or not isinstance(value[3], TraceContext)
        ):
            raise WireError(
                "traced frame body is not a (src, dst, payload, TraceContext) 4-tuple"
            )
        return (0, value[0], value[1], value[2], value[3])
    if (
        not isinstance(value, tuple)
        or len(value) != 5
        or not isinstance(value[0], int)
        or not isinstance(value[1], int)
        or not isinstance(value[2], int)
        or not (value[4] is None or isinstance(value[4], TraceContext))
    ):
        raise WireError(
            "tenant frame body is not a (tenant, src, dst, payload, trace) 5-tuple"
        )
    if value[0] == 0:
        # Tenant 0 is the unscoped namespace: canonical frames encode it
        # as v1/v2, so a v3 frame claiming tenant 0 is corruption.
        raise WireError("tenant frame carries reserved tenant id 0")
    return value  # type: ignore[return-value]


def decode_frame_parts(body: Any) -> Tuple[int, int, Any, Optional[TraceContext]]:
    """Parse a frame body into ``(src, dst, payload, trace)``.

    The tenant-blind form: v1/v2 bodies parse as before, and a v3 body's
    tenant id is validated then dropped.  Callers that route by tenant use
    :func:`decode_frame`.
    """
    _tenant, src, dst, payload, trace = decode_frame(body)
    return (src, dst, payload, trace)


def decode_frame_body(body: Any) -> Tuple[int, int, Any]:
    """Parse a frame body back into ``(src, dst, payload)``.

    Kept for callers that do not consume trace context — a v2 frame's
    :class:`TraceContext` is validated and dropped.  See
    :func:`decode_frame_parts` for the trace-preserving form.
    """
    src, dst, payload, _trace = decode_frame_parts(body)
    return (src, dst, payload)
