"""The DECAF wire codec: a deterministic, versioned binary format.

Everything a site sends to a peer — every message dataclass in
:mod:`repro.core.messages`, the virtual times they carry, replication
graphs, invitations, nested sync/child specs — encodes to bytes through
this module, so payloads can cross a real process boundary (the
:class:`~repro.transport.tcp.TcpTransport`) instead of travelling as live
Python references through in-memory queues.

Design rules:

* **Versioned.**  Every encoded payload starts with a one-byte format
  version.  A decoder that sees an unknown version raises
  :class:`~repro.errors.WireError` immediately — no best-effort parsing.
* **Registry-tagged.**  Each value form has a one-byte tag.  Primitive
  tags (ints, strings, tuples, ...) are fixed; protocol dataclasses are
  entered in a registry mapping tag ↔ class, and encode as the tag
  followed by the dataclass fields in declaration order.  Extensions
  register new structs with :func:`register_struct`; unknown tags are a
  hard decode error.
* **Deterministic.**  Encoding is a pure function of the value: dict
  entries and frozenset elements are ordered by their encoded bytes, so
  ``encode(decode(encode(x))) == encode(x)`` byte-for-byte.  This is what
  makes golden-bytes tests, cross-process digest comparison, and
  replayable traces possible.
* **Self-contained.**  Varints for all integers (arbitrary precision),
  IEEE-754 big-endian for floats, UTF-8 for strings.  No pickling, no
  code execution on decode.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable, Dict, List, Tuple, Type

from repro.core.association import Invitation
from repro.core.messages import (
    AbortMsg,
    CommitMsg,
    ConfirmMsg,
    DelegateGrant,
    Envelope,
    FailQueryMsg,
    FailQueryReplyMsg,
    FailResolutionMsg,
    GraphRepairAckMsg,
    GraphRepairApplyMsg,
    GraphRepairProposeMsg,
    JoinReplyMsg,
    JoinRequestMsg,
    OpPayload,
    PathStep,
    ReadCheck,
    SlotId,
    SnapshotCheck,
    SnapshotConfirmMsg,
    SnapshotReplyMsg,
    TxnPropagateMsg,
    WriteConfirmedMsg,
    WriteOp,
)
from repro.core.repgraph import GraphNode, ReplicationGraph
from repro.errors import WireError
from repro.vtime import VirtualTime

#: Current wire-format version.  Bump on any incompatible layout change;
#: decoders reject every version they do not implement.
WIRE_VERSION = 1

# ---------------------------------------------------------------------------
# Primitive tags (0x00–0x1F reserved for the codec itself)
# ---------------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_FROZENSET = 0x0A
_T_VT = 0x0B

# ---------------------------------------------------------------------------
# Struct registry (tags 0x20–0xFF)
# ---------------------------------------------------------------------------

#: tag -> (class, field names in declaration order)
_STRUCTS_BY_TAG: Dict[int, Tuple[type, Tuple[str, ...]]] = {}
#: class -> (tag, field names)
_STRUCTS_BY_CLASS: Dict[type, Tuple[int, Tuple[str, ...]]] = {}


def register_struct(tag: int, cls: type) -> None:
    """Enter a frozen dataclass into the wire registry under ``tag``.

    The encoding is the tag byte followed by the field values in dataclass
    declaration order; decode reconstructs via the positional constructor.
    Tags below 0x20 are reserved for codec primitives.  Registering the
    same (tag, class) pair twice is a no-op; conflicting registrations are
    an error — tags are a wire contract, not a runtime convenience.
    """
    if not 0x20 <= tag <= 0xFF:
        raise WireError(f"struct tags must be in [0x20, 0xFF], got {tag:#x}")
    if not dataclasses.is_dataclass(cls):
        raise WireError(f"{cls.__name__} is not a dataclass")
    fields = tuple(f.name for f in dataclasses.fields(cls))
    existing = _STRUCTS_BY_TAG.get(tag)
    if existing is not None:
        if existing[0] is cls:
            return
        raise WireError(
            f"wire tag {tag:#x} already registered for {existing[0].__name__}"
        )
    if cls in _STRUCTS_BY_CLASS:
        raise WireError(
            f"{cls.__name__} already registered under tag {_STRUCTS_BY_CLASS[cls][0]:#x}"
        )
    _STRUCTS_BY_TAG[tag] = (cls, fields)
    _STRUCTS_BY_CLASS[cls] = (tag, fields)


#: The canonical tag assignments.  Order and values are part of the wire
#: contract (docs/WIRE.md); append new structs, never renumber.
_REGISTRY: Tuple[Tuple[int, type], ...] = (
    (0x20, SlotId),
    (0x21, PathStep),
    (0x22, OpPayload),
    (0x23, WriteOp),
    (0x24, ReadCheck),
    (0x25, DelegateGrant),
    (0x26, TxnPropagateMsg),
    (0x27, ConfirmMsg),
    (0x28, CommitMsg),
    (0x29, AbortMsg),
    (0x2A, SnapshotCheck),
    (0x2B, SnapshotConfirmMsg),
    (0x2C, SnapshotReplyMsg),
    (0x2D, WriteConfirmedMsg),
    (0x2E, JoinRequestMsg),
    (0x2F, JoinReplyMsg),
    (0x30, FailQueryMsg),
    (0x31, FailQueryReplyMsg),
    (0x32, FailResolutionMsg),
    (0x33, GraphRepairProposeMsg),
    (0x34, GraphRepairAckMsg),
    (0x35, GraphRepairApplyMsg),
    (0x36, GraphNode),
    (0x37, ReplicationGraph),
    (0x38, Invitation),
    (0x39, Envelope),
)

for _tag, _cls in _REGISTRY:
    register_struct(_tag, _cls)

#: Every registered wire struct, in tag order (test parametrization).
WIRE_STRUCTS: Tuple[type, ...] = tuple(cls for _tag, cls in _REGISTRY)

#: The protocol message types a transport may be handed (excludes the
#: nested payload structs that only ever appear inside other messages).
MESSAGE_TYPES: Tuple[type, ...] = (
    TxnPropagateMsg,
    ConfirmMsg,
    CommitMsg,
    AbortMsg,
    SnapshotConfirmMsg,
    SnapshotReplyMsg,
    WriteConfirmedMsg,
    JoinRequestMsg,
    JoinReplyMsg,
    FailQueryMsg,
    FailQueryReplyMsg,
    FailResolutionMsg,
    GraphRepairProposeMsg,
    GraphRepairAckMsg,
    GraphRepairApplyMsg,
    Envelope,
)


# ---------------------------------------------------------------------------
# Varints
# ---------------------------------------------------------------------------


def _write_uvarint(out: List[bytes], value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _write_svarint(out: List[bytes], value: int) -> None:
    # ZigZag: interleave sign so small magnitudes stay small on the wire.
    _write_uvarint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    shift = 0
    value = 0
    while True:
        if pos >= len(data):
            raise WireError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _read_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    raw, pos = _read_uvarint(data, pos)
    return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), pos


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------


def _encode_value(out: List[bytes], value: Any) -> None:
    if value is None:
        out.append(bytes((_T_NONE,)))
    elif value is True:
        out.append(bytes((_T_TRUE,)))
    elif value is False:
        out.append(bytes((_T_FALSE,)))
    elif isinstance(value, VirtualTime):
        out.append(bytes((_T_VT,)))
        _write_svarint(out, value.counter)
        _write_svarint(out, value.site)
    elif isinstance(value, int):  # after bool/VT checks
        out.append(bytes((_T_INT,)))
        _write_svarint(out, value)
    elif isinstance(value, float):
        out.append(bytes((_T_FLOAT,)))
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(bytes((_T_STR,)))
        _write_uvarint(out, len(raw))
        out.append(raw)
    elif isinstance(value, bytes):
        out.append(bytes((_T_BYTES,)))
        _write_uvarint(out, len(value))
        out.append(value)
    elif isinstance(value, tuple):
        out.append(bytes((_T_TUPLE,)))
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, list):
        out.append(bytes((_T_LIST,)))
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        # Canonical order: entries sorted by their encoded key bytes, so
        # two equal dicts always encode identically.
        out.append(bytes((_T_DICT,)))
        _write_uvarint(out, len(value))
        entries = []
        for key, val in value.items():
            kparts: List[bytes] = []
            _encode_value(kparts, key)
            vparts: List[bytes] = []
            _encode_value(vparts, val)
            entries.append((b"".join(kparts), b"".join(vparts)))
        for kbytes, vbytes in sorted(entries):
            out.append(kbytes)
            out.append(vbytes)
    elif isinstance(value, frozenset):
        # Canonical order: elements sorted by their encoded bytes.
        out.append(bytes((_T_FROZENSET,)))
        _write_uvarint(out, len(value))
        items = []
        for item in value:
            parts: List[bytes] = []
            _encode_value(parts, item)
            items.append(b"".join(parts))
        for raw in sorted(items):
            out.append(raw)
    else:
        entry = _STRUCTS_BY_CLASS.get(type(value))
        if entry is None:
            raise WireError(
                f"{type(value).__name__} is not wire-encodable; register it "
                "with repro.wire.register_struct"
            )
        tag, fields = entry
        out.append(bytes((tag,)))
        for name in fields:
            _encode_value(out, getattr(value, name))


def _decode_value(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise WireError("truncated payload: expected a value tag")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _read_svarint(data, pos)
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise WireError("truncated float")
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == _T_STR:
        n, pos = _read_uvarint(data, pos)
        if pos + n > len(data):
            raise WireError("truncated string")
        return data[pos : pos + n].decode("utf-8"), pos + n
    if tag == _T_BYTES:
        n, pos = _read_uvarint(data, pos)
        if pos + n > len(data):
            raise WireError("truncated bytes")
        return data[pos : pos + n], pos + n
    if tag == _T_TUPLE:
        n, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(n):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _T_LIST:
        n, pos = _read_uvarint(data, pos)
        out_list = []
        for _ in range(n):
            item, pos = _decode_value(data, pos)
            out_list.append(item)
        return out_list, pos
    if tag == _T_DICT:
        n, pos = _read_uvarint(data, pos)
        mapping = {}
        for _ in range(n):
            key, pos = _decode_value(data, pos)
            val, pos = _decode_value(data, pos)
            mapping[key] = val
        return mapping, pos
    if tag == _T_FROZENSET:
        n, pos = _read_uvarint(data, pos)
        elems = []
        for _ in range(n):
            item, pos = _decode_value(data, pos)
            elems.append(item)
        fs = frozenset(elems)
        if len(fs) != n:
            raise WireError("frozenset payload contains duplicate elements")
        return fs, pos
    if tag == _T_VT:
        counter, pos = _read_svarint(data, pos)
        site, pos = _read_svarint(data, pos)
        return VirtualTime(counter, site), pos
    entry = _STRUCTS_BY_TAG.get(tag)
    if entry is None:
        raise WireError(f"unknown wire tag {tag:#x}")
    cls, fields = entry
    values = []
    for _ in fields:
        value, pos = _decode_value(data, pos)
        values.append(value)
    try:
        return cls(*values), pos
    except Exception as exc:  # constructor invariants (e.g. empty graph)
        raise WireError(f"invalid {cls.__name__} payload: {exc}") from exc


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def encode(value: Any) -> bytes:
    """Serialize ``value`` (a protocol message or wire-safe value) to bytes."""
    out: List[bytes] = [bytes((WIRE_VERSION,))]
    _encode_value(out, value)
    return b"".join(out)


def decode(data: bytes) -> Any:
    """Parse bytes produced by :func:`encode`; rejects unknown versions,
    unknown tags, truncated payloads, and trailing garbage."""
    if not data:
        raise WireError("empty payload")
    version = data[0]
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (this codec speaks {WIRE_VERSION})"
        )
    value, pos = _decode_value(data, 1)
    if pos != len(data):
        raise WireError(f"{len(data) - pos} trailing bytes after payload")
    return value


# ---------------------------------------------------------------------------
# Framing (length-prefixed, for stream transports)
# ---------------------------------------------------------------------------

#: Size of the frame length prefix in bytes (big-endian unsigned).
FRAME_HEADER_BYTES = 4

#: Upper bound on a single frame body.  A frame claiming more than this is
#: treated as stream corruption, not a legitimate payload.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_frame(src: int, dst: int, payload: Any) -> bytes:
    """One length-prefixed routed frame: header + encode((src, dst, payload))."""
    body = encode((src, dst, payload))
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return len(body).to_bytes(FRAME_HEADER_BYTES, "big") + body


def decode_frame_body(body: bytes) -> Tuple[int, int, Any]:
    """Parse a frame body back into ``(src, dst, payload)``."""
    triple = decode(body)
    if (
        not isinstance(triple, tuple)
        or len(triple) != 3
        or not isinstance(triple[0], int)
        or not isinstance(triple[1], int)
    ):
        raise WireError("frame body is not a (src, dst, payload) triple")
    return triple  # type: ignore[return-value]
