"""Wire format for the DECAF message plane.

:mod:`repro.wire.codec` — deterministic, versioned binary codec for every
protocol message, built around per-struct compiled packers, interning
caches, and a span memo; :mod:`repro.wire.reference` — the original
generic implementation, kept as the executable specification the compiled
codec is property-tested against; :mod:`repro.wire.batch` — per-destination
outbox that coalesces a protocol turn's fan-out into
:class:`~repro.core.messages.Envelope` frames.
"""

from repro.wire.codec import (
    FRAME_HEADER_BYTES,
    FRAME_VERSION_TENANT,
    FRAME_VERSION_TRACED,
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    TraceContext,
    WIRE_STRUCTS,
    WIRE_VERSION,
    decode,
    decode_frame,
    decode_frame_body,
    decode_frame_parts,
    encode,
    encode_frame,
    register_struct,
)
from repro.wire.batch import Outbox

__all__ = [
    "FRAME_HEADER_BYTES",
    "FRAME_VERSION_TENANT",
    "FRAME_VERSION_TRACED",
    "MAX_FRAME_BYTES",
    "MESSAGE_TYPES",
    "TraceContext",
    "WIRE_STRUCTS",
    "WIRE_VERSION",
    "decode",
    "decode_frame",
    "decode_frame_body",
    "decode_frame_parts",
    "encode",
    "encode_frame",
    "register_struct",
    "Outbox",
]
