"""repro — a reproduction of the DECAF collaborative replicated-object framework.

Implements the algorithms of Strom, Banavar, Miller, Prakash, and Ward,
"Concurrency Control and View Notification Algorithms for Collaborative
Replicated Objects" (ICDCS 1997 / IEEE Transactions on Computers 47(4),
1998): optimistic multi-object transactions over replicated model objects
with primary-copy guess validation and fast commit, plus optimistic and
pessimistic view notification via consistent snapshots.

Quickstart::

    from repro import DInt, Session

    session = Session.simulated(latency_ms=50)
    alice, bob = session.add_sites(2)
    a, b = session.replicate(DInt, "balance", [alice, bob], initial=100)

    alice.transact(lambda: a.set(a.get() - 30))
    session.settle()
    assert b.get() == 70
"""

from repro.core import (
    Association,
    AuthorizationMonitor,
    DFloat,
    DInt,
    DList,
    DMap,
    DString,
    Invitation,
    OptimisticView,
    PessimisticView,
    Session,
    SiteRuntime,
    Snapshot,
    Transaction,
    TransactionOutcome,
    View,
)
from repro.errors import (
    ConcurrencyConflict,
    NotAuthorized,
    ObjectNotFound,
    ReproError,
    RetryLimitExceeded,
    TransactionAborted,
)
from repro.host import Placement, SessionHost
from repro.transport.base import TenantTransport
from repro.vtime import LamportClock, VirtualTime

__version__ = "1.0.0"

__all__ = [
    "Session",
    "SessionHost",
    "TenantTransport",
    "Placement",
    "SiteRuntime",
    "DInt",
    "DFloat",
    "DString",
    "DList",
    "DMap",
    "Association",
    "Invitation",
    "Transaction",
    "TransactionOutcome",
    "View",
    "OptimisticView",
    "PessimisticView",
    "Snapshot",
    "AuthorizationMonitor",
    "VirtualTime",
    "LamportClock",
    "ReproError",
    "TransactionAborted",
    "ConcurrencyConflict",
    "ObjectNotFound",
    "NotAuthorized",
    "RetryLimitExceeded",
    "__version__",
]
