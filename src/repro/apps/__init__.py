"""Headless collaborative application components built on the public API.

These are the kinds of applications the paper reports building with DECAF
(section 5.2.1): account/portfolio tools for an insurance agent helping
clients, a multi-user chat program, and whiteboard-style shared surfaces.
The classes here contain only model/controller logic — no GUI — so the
same code runs in examples, tests, and benchmarks.
"""

from repro.apps.accounts import AccountBook, TransferTransaction
from repro.apps.chat import ChatRoom
from repro.apps.whiteboard import Whiteboard
from repro.apps.form import FormDocument
from repro.apps.tictactoe import TicTacToe

__all__ = [
    "AccountBook",
    "TransferTransaction",
    "ChatRoom",
    "Whiteboard",
    "FormDocument",
    "TicTacToe",
]
