"""A shared whiteboard: keyed shapes, blind-write semantics.

The paper's canonical blind-write application (section 5.1.2: "an
application in which all operations are blind writes (e.g., a whiteboard
...) there are no update inconsistencies, because concurrency control
tests never fail").  Shapes live in a replicated map keyed by shape id;
placing or moving a shape is a blind put, erasing is a blind delete, so
two users drawing simultaneously never conflict — the later virtual time
wins per shape.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.core.composites import DMap
from repro.core.site import SiteRuntime
from repro.core.transaction import TransactionOutcome
from repro.core.views import Snapshot, View


class CanvasView(View):
    """Tracks the rendered shape dictionary and deviation-relevant counts."""

    def __init__(self, board: DMap) -> None:
        self.board = board
        self.shapes: Dict[str, Dict[str, Any]] = {}
        self.renders = 0

    def update(self, changed, snapshot: Snapshot) -> None:
        self.renders += 1
        self.shapes = snapshot.read(self.board)


class Whiteboard:
    """A site's whiteboard: draw/move/erase controllers over a shared map."""

    _ids = itertools.count(1)

    def __init__(self, site: SiteRuntime, board: DMap) -> None:
        self.site = site
        self.board = board
        self.view = CanvasView(board)
        board.attach(self.view, "optimistic")

    @staticmethod
    def create(site: SiteRuntime, name: str = "board") -> "Whiteboard":
        return Whiteboard(site, site.create_map(name))

    def draw(
        self,
        kind: str,
        x: float,
        y: float,
        color: str = "black",
        shape_id: Optional[str] = None,
    ) -> Tuple[str, TransactionOutcome]:
        """Place a shape (blind write); returns (shape id, outcome)."""
        sid = shape_id or f"{self.site.name}-{next(self._ids)}"

        def body() -> None:
            self.board.put(
                sid,
                "map",
                {
                    "kind": ("string", kind),
                    "x": ("float", float(x)),
                    "y": ("float", float(y)),
                    "color": ("string", color),
                },
            )

        return sid, self.site.transact(body)

    def move(self, shape_id: str, x: float, y: float) -> TransactionOutcome:
        """Re-place a shape at new coordinates (blind put of the whole shape)."""
        current = self.shapes().get(shape_id, {})

        def body() -> None:
            self.board.put(
                shape_id,
                "map",
                {
                    "kind": ("string", current.get("kind", "dot")),
                    "x": ("float", float(x)),
                    "y": ("float", float(y)),
                    "color": ("string", current.get("color", "black")),
                },
            )

        return self.site.transact(body)

    def erase(self, shape_id: str) -> TransactionOutcome:
        return self.site.transact(lambda: self.board.delete(shape_id))

    def shapes(self) -> Dict[str, Dict[str, Any]]:
        return self.board.value_at(self.board.current_value_vt())

    def rendered(self) -> Dict[str, Dict[str, Any]]:
        """What the attached optimistic view last drew."""
        return dict(self.view.shapes)
