"""Collaborative form filling: the paper's insurance scenario.

Section 5.2.1: "several groupware applications that allow an insurance
agent to help clients understand insurance products via data visualization
and to fill out insurance forms".  A form is a replicated map of named
fields; sensitive fields can be protected with authorization monitors, and
a pessimistic *audit view* sees only committed, monotonic field states —
what you would write to the record of an advice session.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.auth import AuthorizationMonitor
from repro.core.composites import DMap
from repro.core.site import SiteRuntime
from repro.core.transaction import TransactionOutcome
from repro.core.views import Snapshot, View


class AuditView(View):
    """A pessimistic view recording every committed form state in order."""

    def __init__(self, form: DMap) -> None:
        self.form = form
        self.audit_log: List[Dict[str, Any]] = []

    def update(self, changed, snapshot: Snapshot) -> None:
        self.audit_log.append(snapshot.read(self.form))


class FormDocument:
    """A site's handle on a shared form."""

    def __init__(self, site: SiteRuntime, form: DMap) -> None:
        self.site = site
        self.form = form
        self.audit = AuditView(form)
        form.attach(self.audit, "pessimistic")

    @staticmethod
    def create(site: SiteRuntime, name: str = "form") -> "FormDocument":
        return FormDocument(site, site.create_map(name))

    def fill(self, **fields: Any) -> TransactionOutcome:
        """Atomically fill several fields (one transaction)."""

        def body() -> None:
            for key, value in fields.items():
                if isinstance(value, bool):
                    raise TypeError("use 0/1 integers for booleans")
                if isinstance(value, int):
                    self.form.put(key, "int", value)
                elif isinstance(value, float):
                    self.form.put(key, "float", value)
                else:
                    self.form.put(key, "string", str(value))

        return self.site.transact(body)

    def clear(self, field: str) -> TransactionOutcome:
        return self.site.transact(lambda: self.form.delete(field))

    def fields(self) -> Dict[str, Any]:
        return self.form.value_at(self.form.current_value_vt())

    def committed_fields(self) -> Dict[str, Any]:
        return self.form.value_at(self.form.current_value_vt(), committed_only=True)

    def protect(self, monitor: AuthorizationMonitor) -> None:
        """Restrict access to the whole form with an authorization monitor."""
        self.form.set_authorization(monitor)

    def audit_trail(self) -> List[Dict[str, Any]]:
        return list(self.audit.audit_log)
