"""Account transfers: the paper's running example (Figs. 2 and 3).

``TransferTransaction`` is a faithful port of the paper's ``XferTrans``:
an atomic two-account transfer that aborts (without retry) when the source
balance is insufficient.  ``AccountBook`` wraps a site's accounts and
provides the controller-level operations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.scalars import DFloat
from repro.core.site import SiteRuntime
from repro.core.transaction import Transaction, TransactionOutcome


class TransferTransaction(Transaction):
    """The paper's XferTrans (Fig. 2): move ``amount`` from ``src`` to ``dst``.

    "if (Ap - xferAmt >= 0) { Ap.setValueTo(...); Bp.setValueTo(...); }
    else throw new RuntimeException('Can't transfer more than balance')"
    """

    def __init__(self, src: DFloat, dst: DFloat, amount: float) -> None:
        self.src = src
        self.dst = dst
        self.amount = float(amount)
        self.abort_reason: Optional[str] = None

    def execute(self) -> None:
        balance = self.src.get()
        if balance - self.amount >= 0:
            self.src.set(balance - self.amount)
            self.dst.set(self.dst.get() + self.amount)
        else:
            raise RuntimeError("Can't transfer more than balance")

    def handle_abort(self, exc: Exception) -> None:
        self.abort_reason = str(exc)


class AccountBook:
    """A site's set of named accounts with transfer/deposit controllers."""

    def __init__(self, site: SiteRuntime, prefix: str = "acct") -> None:
        self.site = site
        self.prefix = prefix
        self.accounts: Dict[str, DFloat] = {}

    def open(self, name: str, initial: float = 0.0) -> DFloat:
        """Create a local account model object."""
        account = self.site.create_float(f"{self.prefix}.{name}", initial)
        self.accounts[name] = account
        return account

    def adopt(self, name: str, account: DFloat) -> None:
        """Track an account object created or joined elsewhere."""
        self.accounts[name] = account

    def balance(self, name: str) -> float:
        return float(self.accounts[name].get())

    def deposit(self, name: str, amount: float) -> TransactionOutcome:
        account = self.accounts[name]
        return self.site.transact(lambda: account.set(account.get() + float(amount)))

    def transfer(self, src: str, dst: str, amount: float) -> TransferTransaction:
        """Run a :class:`TransferTransaction`; returns it (with outcome info)."""
        txn = TransferTransaction(self.accounts[src], self.accounts[dst], amount)
        txn.outcome = self.site.run(txn)  # type: ignore[attr-defined]
        return txn

    def total(self) -> float:
        """Sum of all balances (reads current optimistic values)."""
        return sum(float(a.get()) for a in self.accounts.values())
