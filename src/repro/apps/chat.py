"""A multi-user chat room: an append-only replicated list of messages.

One of the applications built on the original DECAF prototype
(section 5.2.1: "a multi-user chat program").  Each message is a map
``{author, text}`` appended to a shared list; an attached view renders the
transcript.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.composites import DList
from repro.core.site import SiteRuntime
from repro.core.transaction import TransactionOutcome
from repro.core.views import Snapshot, View


class TranscriptView(View):
    """Keeps the latest rendered transcript plus a notification count."""

    def __init__(self, log: DList) -> None:
        self.log = log
        self.transcript: List[str] = []
        self.notifications = 0
        self.committed_notifications = 0

    def update(self, changed, snapshot: Snapshot) -> None:
        self.notifications += 1
        rendered = []
        for message in snapshot.read(self.log):
            rendered.append(f"<{message.get('author', '?')}> {message.get('text', '')}")
        self.transcript = rendered

    def commit(self) -> None:
        self.committed_notifications += 1


class ChatRoom:
    """A site's handle on a chat: the shared log plus send/render controllers."""

    def __init__(self, site: SiteRuntime, log: DList, author: Optional[str] = None) -> None:
        self.site = site
        self.log = log
        self.author = author or site.name
        self.view = TranscriptView(log)
        log.attach(self.view, "optimistic")

    @staticmethod
    def create(site: SiteRuntime, name: str = "chatlog", author: Optional[str] = None) -> "ChatRoom":
        return ChatRoom(site, site.create_list(name), author=author)

    def send(self, text: str) -> TransactionOutcome:
        """Append a message atomically."""

        def body() -> None:
            self.log.append(
                "map", {"author": ("string", self.author), "text": ("string", text)}
            )

        return self.site.transact(body)

    def transcript(self) -> List[str]:
        return list(self.view.transcript)

    def message_count(self) -> int:
        return len(self.log.value_at(self.log.current_value_vt()))
