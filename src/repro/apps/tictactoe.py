"""A simple game: replicated tic-tac-toe (paper section 5.2.1, "simple games").

The board is a replicated map of cells plus a whose-turn scalar.  A move is
a read-modify-write transaction: it *reads* the turn and the target cell
and writes both — so two players racing for the same turn, or the same
cell, conflict at the primary and exactly one wins; the loser's transaction
re-executes, re-checks the rules against the new state, and aborts cleanly
with a rule violation (no retry) if the move is no longer legal.  This is
the transactional-integrity story the optimistic protocol buys over plain
last-writer-wins replication.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.composites import DMap
from repro.core.scalars import DString
from repro.core.site import SiteRuntime
from repro.core.transaction import Transaction, TransactionOutcome

WIN_LINES = [
    (0, 1, 2), (3, 4, 5), (6, 7, 8),  # rows
    (0, 3, 6), (1, 4, 7), (2, 5, 8),  # columns
    (0, 4, 8), (2, 4, 6),             # diagonals
]


class IllegalMove(RuntimeError):
    """A rule violation: not your turn, cell taken, or game over."""


class MoveTransaction(Transaction):
    """One move: validates the rules and flips the turn, atomically."""

    def __init__(self, game: "TicTacToe", cell: int) -> None:
        self.game = game
        self.cell = cell
        self.rejection: Optional[str] = None

    def execute(self) -> None:
        game = self.game
        if not 0 <= self.cell <= 8:
            raise IllegalMove(f"cell {self.cell} out of range")
        turn = game.turn.get()
        if turn != game.mark:
            raise IllegalMove(f"not {game.mark}'s turn (turn is {turn})")
        if game.winner_of(game.cells()) is not None:
            raise IllegalMove("game is over")
        if game.board.has(str(self.cell)):
            raise IllegalMove(f"cell {self.cell} already taken")
        game.board.put(str(self.cell), "string", game.mark)
        game.turn.set("O" if game.mark == "X" else "X")

    def handle_abort(self, exc: Exception) -> None:
        self.rejection = str(exc)


class TicTacToe:
    """A player's handle on a shared game (one per site)."""

    def __init__(self, site: SiteRuntime, board: DMap, turn: DString, mark: str) -> None:
        if mark not in ("X", "O"):
            raise ValueError("mark must be 'X' or 'O'")
        self.site = site
        self.board = board
        self.turn = turn
        self.mark = mark

    def move(self, cell: int) -> MoveTransaction:
        """Attempt a move; returns the transaction (with outcome/rejection)."""
        txn = MoveTransaction(self, cell)
        txn.outcome = self.site.run(txn)  # type: ignore[attr-defined]
        return txn

    def cells(self) -> Dict[int, str]:
        """Current board as {cell index: mark}."""
        raw = self.board.value_at(self.board.current_value_vt())
        return {int(k): v for k, v in raw.items()}

    @staticmethod
    def winner_of(cells: Dict[int, str]) -> Optional[str]:
        for a, b, c in WIN_LINES:
            mark = cells.get(a)
            if mark and cells.get(b) == mark and cells.get(c) == mark:
                return mark
        return None

    def winner(self) -> Optional[str]:
        return self.winner_of(self.cells())

    def is_draw(self) -> bool:
        return len(self.cells()) == 9 and self.winner() is None

    def render(self) -> str:
        cells = self.cells()
        rows = []
        for r in range(3):
            rows.append("|".join(cells.get(3 * r + c, " ") for c in range(3)))
        return "\n-+-+-\n".join(rows)
