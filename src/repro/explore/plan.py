"""Trial plans: sampled topologies, workloads, and fault schedules.

A :class:`TrialConfig` is a complete, JSON-serializable description of one
explorer trial.  Everything the trial does — latency sampling, arrival
times, fault injection — is derived from integers stored in the config, so
``from_dict(to_dict(c))`` replays the exact same schedule.

Fault-model soundness
---------------------

The sampler only emits faults under which the paper guarantees still hold,
so a violation on the healthy protocol is always a real bug:

* **jitter** — per-link latency perturbation.  Channels stay FIFO and
  reliable; only message interleaving across pairs changes.
* **crash** — fail-stop with the ISIS-style flush guarantee (messages the
  victim already handed to the transport still arrive, and the failure
  notification is ordered after them).  This is the infrastructure
  assumption of paper section 3.4.
* **partition + crash + heal** — disconnection presented as fail-stop: the
  victim is cut off (no *new* messages cross, in-flight ones still
  arrive), then crashes before the cut heals.  The cut is total, so
  per-pair FIFO is preserved.

Raw message **drop** events exist in the schema for adversarial tests that
document the reliable-channel assumption, but are never sampled: a
selective drop without a subsequent crash breaks an assumption the
protocol is explicitly built on, so violations under it are expected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

TXN_KINDS = ("rmw", "blind", "xfer")
ARRIVAL_KINDS = ("uniform", "poisson")
FAULT_KINDS = ("jitter", "crash", "partition", "heal", "drop")


@dataclass
class FaultEvent:
    """One scheduled fault: ``kind`` applied at ``at_ms`` after setup.

    ``group`` ties events that are only sound together (a partition and the
    crash/heal that make it fail-stop); the shrinker removes whole groups.
    """

    at_ms: float
    kind: str
    args: Dict[str, Any] = field(default_factory=dict)
    group: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"at_ms": self.at_ms, "kind": self.kind, "args": dict(self.args)}
        if self.group is not None:
            out["group"] = self.group
        return out

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultEvent":
        kind = data["kind"]
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return FaultEvent(
            at_ms=float(data["at_ms"]),
            kind=kind,
            args=dict(data.get("args", {})),
            group=data.get("group"),
        )


@dataclass
class PartySpec:
    """One site issuing ``count`` transactions of one kind."""

    site: int
    kind: str  # "rmw" | "blind" | "xfer"
    count: int
    arrival: str  # "uniform" | "poisson"
    interval_ms: float
    start_ms: float
    arrival_seed: int
    amount: int = 1  # transfer amount (xfer only)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "count": self.count,
            "arrival": self.arrival,
            "interval_ms": self.interval_ms,
            "start_ms": self.start_ms,
            "arrival_seed": self.arrival_seed,
            "amount": self.amount,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "PartySpec":
        if data["kind"] not in TXN_KINDS:
            raise ValueError(f"unknown txn kind {data['kind']!r}")
        if data["arrival"] not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {data['arrival']!r}")
        return PartySpec(
            site=int(data["site"]),
            kind=data["kind"],
            count=int(data["count"]),
            arrival=data["arrival"],
            interval_ms=float(data["interval_ms"]),
            start_ms=float(data["start_ms"]),
            arrival_seed=int(data["arrival_seed"]),
            amount=int(data.get("amount", 1)),
        )


@dataclass
class TrialConfig:
    """A complete, replayable description of one explorer trial."""

    n_sites: int
    latency: Dict[str, Any]
    net_seed: int
    parties: List[PartySpec]
    faults: List[FaultEvent] = field(default_factory=list)
    mutations: Tuple[str, ...] = ()
    views: bool = True
    max_events: int = 5_000_000
    #: Transaction retry cap.  The campaign default (50) never binds in
    #: practice; exhaustive exploration lowers it (it is one of the bounds
    #: of bounded-exhaustive checking — every retry multiplies the
    #: schedule tree).
    max_retries: int = 50
    label: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_sites": self.n_sites,
            "latency": dict(self.latency),
            "net_seed": self.net_seed,
            "parties": [p.to_dict() for p in self.parties],
            "faults": [f.to_dict() for f in self.faults],
            "mutations": list(self.mutations),
            "views": self.views,
            "max_events": self.max_events,
            "max_retries": self.max_retries,
            "label": self.label,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "TrialConfig":
        return TrialConfig(
            n_sites=int(data["n_sites"]),
            latency=dict(data["latency"]),
            net_seed=int(data["net_seed"]),
            parties=[PartySpec.from_dict(p) for p in data["parties"]],
            faults=[FaultEvent.from_dict(f) for f in data.get("faults", [])],
            mutations=tuple(data.get("mutations", ())),
            views=bool(data.get("views", True)),
            max_events=int(data.get("max_events", 5_000_000)),
            max_retries=int(data.get("max_retries", 50)),
            label=str(data.get("label", "")),
        )

    def without_fault(self, index: int) -> "TrialConfig":
        """A copy with fault ``index`` removed — and, if that fault belongs
        to a group, the whole group (group members are only sound together)."""
        target = self.faults[index]
        if target.group is None:
            kept = [f for i, f in enumerate(self.faults) if i != index]
        else:
            kept = [f for f in self.faults if f.group != target.group]
        return TrialConfig(
            n_sites=self.n_sites,
            latency=dict(self.latency),
            net_seed=self.net_seed,
            parties=list(self.parties),
            faults=kept,
            mutations=self.mutations,
            views=self.views,
            max_events=self.max_events,
            max_retries=self.max_retries,
            label=self.label,
        )


def exhaustive_config(
    n_sites: int,
    txns: Sequence[Tuple[int, str]],
    views: bool = True,
    mutations: Sequence[str] = (),
    max_retries: int = 2,
    label: str = "",
) -> TrialConfig:
    """A tiny, fault-free config sized for bounded-exhaustive exploration.

    ``txns`` lists the workload as ``(site, kind)`` pairs; each becomes its
    own single-transaction party, so the model checker is free to
    interleave *every* arrival against every other (per-party program
    order constrains nothing when each party issues one transaction).
    Latency and seeds are fixed: under controlled scheduling neither is
    consulted for the enumerated events, and setup stays deterministic.

    ``max_retries`` is deliberately small: it is the third bound of the
    bounded-exhaustive space (sites, transactions, retries).  An
    adversarial scheduler can sustain abort/retry cycles the timed
    simulation's backoff makes vanishingly rare, and every retry round
    multiplies the tree; a transaction that exhausts the cap surfaces as
    an ordinary ``aborted_no_retry`` outcome the oracles already handle.
    """
    if n_sites < 1:
        raise ValueError("exhaustive_config requires at least one site")
    parties = []
    for site, kind in txns:
        if kind not in TXN_KINDS:
            raise ValueError(f"unknown txn kind {kind!r}")
        if not 0 <= site < n_sites:
            raise ValueError(f"txn site {site} outside 0..{n_sites - 1}")
        parties.append(
            PartySpec(
                site=site,
                kind=kind,
                count=1,
                arrival="uniform",
                interval_ms=1.0,
                start_ms=0.0,
                arrival_seed=0,
                amount=1,
            )
        )
    return TrialConfig(
        n_sites=n_sites,
        latency={"kind": "fixed", "ms": 1.0},
        net_seed=0,
        parties=parties,
        faults=[],
        mutations=tuple(mutations),
        views=views,
        max_retries=max_retries,
        label=label or f"mc-{n_sites}s-{len(parties)}t",
    )


def _sample_latency(rng: random.Random) -> Dict[str, Any]:
    kind = rng.choice(("fixed", "uniform", "normal"))
    if kind == "fixed":
        return {"kind": "fixed", "ms": round(rng.uniform(2.0, 40.0), 3)}
    if kind == "uniform":
        low = round(rng.uniform(1.0, 12.0), 3)
        return {"kind": "uniform", "low": low, "high": round(low + rng.uniform(5.0, 60.0), 3)}
    return {
        "kind": "normal",
        "mean": round(rng.uniform(5.0, 40.0), 3),
        "sd": round(rng.uniform(1.0, 12.0), 3),
    }


def _sample_parties(rng: random.Random, n_sites: int) -> List[PartySpec]:
    parties: List[PartySpec] = []
    n_parties = rng.randint(2, 4)
    for i in range(n_parties):
        # Always keep at least one read-modify-write party: RMW contention
        # is what produces aborts/retries, the protocol's hard cases.
        kind = "rmw" if i == 0 else rng.choice(TXN_KINDS)
        parties.append(
            PartySpec(
                site=rng.randrange(n_sites),
                kind=kind,
                count=rng.randint(2, 6),
                arrival=rng.choice(ARRIVAL_KINDS),
                interval_ms=round(rng.uniform(15.0, 120.0), 3),
                start_ms=round(rng.uniform(0.0, 80.0), 3),
                arrival_seed=rng.randrange(2**31),
                amount=rng.randint(1, 5),
            )
        )
    return parties


def _sample_faults(rng: random.Random, n_sites: int) -> List[FaultEvent]:
    faults: List[FaultEvent] = []
    group_seq = 0

    for _ in range(rng.randint(0, 2)):
        src = rng.randrange(n_sites)
        dst = rng.randrange(n_sites)
        if src == dst:
            continue
        low = round(rng.uniform(10.0, 60.0), 3)
        faults.append(
            FaultEvent(
                at_ms=round(rng.uniform(0.0, 400.0), 3),
                kind="jitter",
                args={
                    "src": src,
                    "dst": dst,
                    "low_ms": low,
                    "high_ms": round(low + rng.uniform(10.0, 120.0), 3),
                },
            )
        )

    crashed: List[int] = []
    if n_sites >= 3 and rng.random() < 0.6:
        victim = rng.randrange(n_sites)
        crashed.append(victim)
        t_crash = round(rng.uniform(60.0, 500.0), 3)
        notify = round(rng.uniform(0.0, 60.0), 3)
        crash = FaultEvent(
            at_ms=t_crash, kind="crash", args={"site": victim, "notify_after_ms": notify}
        )
        if rng.random() < 0.4:
            # Disconnection presented as fail-stop: cut the victim off,
            # crash it while cut, heal after the crash is known.
            group_seq += 1
            others = [s for s in range(n_sites) if s != victim]
            cut_at = round(max(1.0, t_crash - rng.uniform(20.0, 80.0)), 3)
            heal_at = round(t_crash + notify + rng.uniform(10.0, 50.0), 3)
            crash.group = group_seq
            faults.append(
                FaultEvent(
                    at_ms=cut_at,
                    kind="partition",
                    args={"group_a": [victim], "group_b": others},
                    group=group_seq,
                )
            )
            faults.append(crash)
            faults.append(FaultEvent(at_ms=heal_at, kind="heal", args={}, group=group_seq))
        else:
            faults.append(crash)
        if n_sites >= 4 and rng.random() < 0.3:
            second = rng.choice([s for s in range(n_sites) if s != victim])
            crashed.append(second)
            faults.append(
                FaultEvent(
                    at_ms=round(t_crash + rng.uniform(20.0, 200.0), 3),
                    kind="crash",
                    args={"site": second, "notify_after_ms": round(rng.uniform(0.0, 60.0), 3)},
                )
            )

    faults.sort(key=lambda f: (f.at_ms, f.kind))
    return faults


def sample_config(
    master_seed: int,
    index: int,
    mutations: Sequence[str] = (),
    faults: bool = True,
) -> TrialConfig:
    """Deterministically sample trial ``index`` of a campaign.

    The derivation uses only integer arithmetic on the seed, so the same
    ``(master_seed, index)`` pair yields the same config on any platform.
    """
    rng = random.Random(master_seed * 1_000_003 + index)
    n_sites = rng.randint(2, 5)
    return TrialConfig(
        n_sites=n_sites,
        latency=_sample_latency(rng),
        net_seed=rng.randrange(2**31),
        parties=_sample_parties(rng, n_sites),
        faults=_sample_faults(rng, n_sites) if faults else [],
        mutations=tuple(mutations),
        label=f"trial-{master_seed}-{index}",
    )
