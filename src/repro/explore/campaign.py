"""Campaign runner: seeded trial sweeps, violation artifacts, replay, shrinking.

A campaign runs ``trials`` independently sampled trials from one master
seed.  Each violating trial produces a replayable *artifact*::

    {
      "format": "repro-explore/1",
      "config": { ... TrialConfig.to_dict() ... },
      "violations": [ {"oracle", "site", "obj", "detail"}, ... ],
      "timeline": [ {"seq", "time_ms", "site", "kind", "txn_vt", "data"}, ... ],
      "analysis": { ... repro.obs.causal.analyze_timeline(timeline) ... }
    }

Artifacts are self-contained: :func:`replay_artifact` rebuilds the trial
from the embedded config and re-runs it deterministically; the regenerated
artifact must be byte-identical to the stored one.  The optional
``timeline`` (the failing trial's full protocol event log, captured by
re-running the violating config under observation) is debugging evidence,
not identity: the replay-identity comparison excludes it, so an artifact
replays byte-identically whether or not a timeline is embedded.

The shrinker greedily removes fault events (whole groups at a time, since
e.g. a partition without its crash is not a sound fault on its own) while
the trial still violates *some* oracle, converging to a minimal fault plan.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.explore.oracles import Violation, check_trial
from repro.explore.plan import TrialConfig, sample_config
from repro.explore.trial import run_trial

ARTIFACT_FORMAT = "repro-explore/1"


def run_trial_violations(config: TrialConfig) -> List[Violation]:
    """Run one trial and return its oracle violations."""
    return check_trial(run_trial(config))


def capture_timeline(config: TrialConfig) -> List[Dict[str, Any]]:
    """Re-run ``config`` under observation; return its full event timeline.

    Deterministic: the same config always yields the same timeline, and
    observing does not change the trial's outcome (see
    :func:`~repro.explore.trial.run_trial`).
    """
    return run_trial(config, observe=True).timeline()


@dataclass
class TrialFailure:
    """A violating trial: its (possibly shrunk) config and violations."""

    index: int
    config: TrialConfig
    violations: List[Violation]
    shrunk_from: Optional[int] = None  # fault count before shrinking
    timeline: Optional[List[Dict[str, Any]]] = None  # captured event log


@dataclass
class CampaignResult:
    seed: int
    trials_run: int
    failures: List[TrialFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return f"{self.trials_run} trials, no violations"
        head = self.failures[0]
        return (
            f"{self.trials_run} trials, {len(self.failures)} violating "
            f"(first: trial {head.index}, {len(head.violations)} violations, "
            f"e.g. {head.violations[0]})"
        )


def artifact_for(
    config: TrialConfig,
    violations: Sequence[Violation],
    timeline: Optional[List[Dict[str, Any]]] = None,
    analyze: bool = False,
) -> Dict[str, Any]:
    artifact: Dict[str, Any] = {
        "format": ARTIFACT_FORMAT,
        "config": config.to_dict(),
        "violations": [v.to_dict() for v in violations],
    }
    if timeline is not None:
        artifact["timeline"] = timeline
        if analyze:
            # Causal evidence for the failing trial: the commit critical
            # path and each abort's guess-dependency + happens-before
            # chains.  Derived deterministically from the timeline, and —
            # like the timeline — excluded from replay identity.
            from repro.obs.causal import analyze_timeline

            artifact["analysis"] = analyze_timeline(timeline)
    return artifact


def artifact_json(artifact: Dict[str, Any]) -> str:
    """Canonical serialization (stable key order) for byte-identity checks."""
    return json.dumps(artifact, indent=2, sort_keys=True) + "\n"


#: Artifact keys that are attached evidence, not replay identity.
_EVIDENCE_KEYS = frozenset({"timeline", "analysis"})


def replay_identity(artifact: Dict[str, Any]) -> str:
    """The canonical form compared for replay identity.

    Excludes the ``timeline`` and ``analysis`` keys: both are evidence
    attached for humans (and Perfetto/Graphviz), not part of what a replay
    must reproduce — a config + violations match is the identity contract.
    """
    return artifact_json({k: v for k, v in artifact.items() if k not in _EVIDENCE_KEYS})


def replay_artifact(artifact: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
    """Re-run the trial stored in ``artifact``.

    Returns ``(regenerated_artifact, identical)`` where ``identical`` means
    the replay reproduced the stored config + violations byte-for-byte
    (any embedded timeline is excluded from the comparison).  When the
    stored artifact carries a timeline, the regenerated one does too.
    """
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(f"unknown artifact format {artifact.get('format')!r}")
    config = TrialConfig.from_dict(artifact["config"])
    timeline = capture_timeline(config) if "timeline" in artifact else None
    regenerated = artifact_for(
        config,
        run_trial_violations(config),
        timeline=timeline,
        analyze="analysis" in artifact,
    )
    return regenerated, replay_identity(regenerated) == replay_identity(artifact)


def shrink_config(
    config: TrialConfig,
    violations: Optional[List[Violation]] = None,
    max_rounds: int = 64,
) -> Tuple[TrialConfig, List[Violation]]:
    """Greedily minimize ``config``'s fault plan while any oracle still fails.

    Each round tries removing one fault event (with its soundness group);
    a removal is kept when the replay still violates.  Deterministic: the
    same input always shrinks to the same output.
    """
    if violations is None:
        violations = run_trial_violations(config)
    if not violations:
        return config, violations
    for _ in range(max_rounds):
        removed = False
        for index in range(len(config.faults)):
            candidate = config.without_fault(index)
            if len(candidate.faults) == len(config.faults):
                continue
            candidate_violations = run_trial_violations(candidate)
            if candidate_violations:
                config, violations = candidate, candidate_violations
                removed = True
                break
        if not removed:
            break
    return config, violations


def run_campaign(
    trials: int,
    seed: int,
    mutations: Sequence[str] = (),
    faults: bool = True,
    stop_at_first: bool = False,
    shrink: bool = False,
    timeline: bool = False,
    progress: Optional[Callable[[int, TrialConfig, List[Violation]], None]] = None,
) -> CampaignResult:
    """Run ``trials`` sampled trials; collect (optionally shrunk) failures.

    With ``timeline=True`` each failure's (post-shrink) config is re-run
    under observation and the full event timeline is attached to its
    :class:`TrialFailure` — ready to embed in the violation artifact.
    """
    result = CampaignResult(seed=seed, trials_run=0)
    for index in range(trials):
        config = sample_config(seed, index, mutations=mutations, faults=faults)
        violations = run_trial_violations(config)
        result.trials_run += 1
        if progress is not None:
            progress(index, config, violations)
        if violations:
            original_faults = len(config.faults)
            if shrink:
                config, violations = shrink_config(config, violations)
            result.failures.append(
                TrialFailure(
                    index=index,
                    config=config,
                    violations=violations,
                    shrunk_from=original_faults if shrink else None,
                    timeline=capture_timeline(config) if timeline else None,
                )
            )
            if stop_at_first:
                break
    return result
