"""Randomized-schedule conformance explorer (adversarial testing harness).

This package runs seeded campaigns of full DECAF sessions over the
discrete-event simulator.  Each *trial* samples a topology, a workload mix,
and a fault plan (latency jitter, fail-stop crashes, partitions presented
as a crash prelude), runs to quiescence, and then checks a battery of
invariant oracles derived from the paper's guarantees:

* committed transactions have serializable effect consistent with VT order,
* pessimistic views saw exactly the committed writes, losslessly, in
  monotonic VT order, with values matching the serial reconstruction,
* all live replicas converge to identical committed state,
* no protocol residue (leaked reservations, dangling guesses, undelivered
  snapshots) survives quiescence,
* optimistic views are eventually superseded to the committed outcome.

Violations are replayable ``(seed, topology, fault plan)`` JSON artifacts;
a greedy shrinker minimizes fault plans by deterministic replay.
"""

from repro.explore.campaign import (
    ARTIFACT_FORMAT,
    CampaignResult,
    TrialFailure,
    artifact_for,
    capture_timeline,
    replay_artifact,
    replay_identity,
    run_campaign,
    shrink_config,
)
from repro.explore.oracles import Violation, check_trial
from repro.explore.plan import FaultEvent, PartySpec, TrialConfig, sample_config
from repro.explore.trial import TrialResult, run_trial

__all__ = [
    "ARTIFACT_FORMAT",
    "CampaignResult",
    "FaultEvent",
    "PartySpec",
    "TrialConfig",
    "TrialFailure",
    "TrialResult",
    "Violation",
    "artifact_for",
    "capture_timeline",
    "check_trial",
    "replay_artifact",
    "replay_identity",
    "run_campaign",
    "run_trial",
    "sample_config",
    "shrink_config",
]
