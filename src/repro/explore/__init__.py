"""Randomized-schedule conformance explorer (adversarial testing harness).

This package runs seeded campaigns of full DECAF sessions over the
discrete-event simulator.  Each *trial* samples a topology, a workload mix,
and a fault plan (latency jitter, fail-stop crashes, partitions presented
as a crash prelude), runs to quiescence, and then checks a battery of
invariant oracles derived from the paper's guarantees:

* committed transactions have serializable effect consistent with VT order,
* pessimistic views saw exactly the committed writes, losslessly, in
  monotonic VT order, with values matching the serial reconstruction,
* all live replicas converge to identical committed state,
* no protocol residue (leaked reservations, dangling guesses, undelivered
  snapshots) survives quiescence,
* optimistic views are eventually superseded to the committed outcome.

Violations are replayable ``(seed, topology, fault plan)`` JSON artifacts;
a greedy shrinker minimizes fault plans by deterministic replay.

Alongside the randomized campaigns, :mod:`repro.explore.mc` *enumerates*
every schedule of a small fault-free config (bounded-exhaustive model
checking with sleep-set partial-order reduction) and runs the same oracle
battery at every terminal state; its violations are replayable
``repro-mc/1`` schedule artifacts.
"""

from repro.explore.campaign import (
    ARTIFACT_FORMAT,
    CampaignResult,
    TrialFailure,
    artifact_for,
    capture_timeline,
    replay_artifact,
    replay_identity,
    run_campaign,
    shrink_config,
)
from repro.explore.mc import (
    MC_ARTIFACT_FORMAT,
    MCResult,
    MCStats,
    canary_config,
    cross_check,
    explore,
    mc_artifact_for,
    replay_mc_artifact,
    run_schedule,
    terminal_fingerprint,
)
from repro.explore.oracles import Violation, check_trial
from repro.explore.plan import (
    FaultEvent,
    PartySpec,
    TrialConfig,
    exhaustive_config,
    sample_config,
)
from repro.explore.trial import TrialResult, run_trial

__all__ = [
    "ARTIFACT_FORMAT",
    "MC_ARTIFACT_FORMAT",
    "CampaignResult",
    "FaultEvent",
    "MCResult",
    "MCStats",
    "PartySpec",
    "TrialConfig",
    "TrialFailure",
    "TrialResult",
    "Violation",
    "artifact_for",
    "canary_config",
    "capture_timeline",
    "check_trial",
    "cross_check",
    "exhaustive_config",
    "explore",
    "mc_artifact_for",
    "replay_artifact",
    "replay_identity",
    "replay_mc_artifact",
    "run_campaign",
    "run_schedule",
    "run_trial",
    "sample_config",
    "shrink_config",
    "terminal_fingerprint",
]
