"""Bounded-exhaustive schedule model checker with partial-order reduction.

Where the campaign runner (:mod:`repro.explore.campaign`) *samples* one
seeded schedule per trial, this module *enumerates* every message-delivery /
transaction-arrival interleaving of a small fault-free
:class:`~repro.explore.plan.TrialConfig` and runs the full oracle battery
(:func:`~repro.explore.oracles.check_trial`) at every quiescent terminal
state.  A clean exhaustive run is a proof: *no schedule of this config
violates any oracle* — the statement no randomized campaign can make.

Exploration is stateless, in the spirit of model-checking optimistic
replication: checkpoint/restore is replay.  Each execution re-runs the
trial from its config under a :class:`~repro.sim.choice.ScheduleController`
whose strategy replays the current DFS prefix and then extends it
first-candidate-deep until quiescence.  Event keys are stable across
replays (channel/party/timer sequence numbers), so the DFS tree needs only
the frames of the current path.

Partial-order reduction uses *sleep sets* (Godefroyd): two events are
independent iff they target different sites — delivering to site A and
delivering to site B commute because each handler mutates only its own
site's state and emits sends on disjoint ``(src, dst)`` channels.  After a
branch under event ``e`` is fully explored at a node, ``e`` goes to sleep
for the node's remaining branches and stays asleep down any path whose
events are all independent of it; a branch whose every enabled event is
asleep is pruned (its terminals are reachable — and explored — elsewhere).
Sleep sets preserve every reachable terminal state, so the reduced run
reports the same violations as the full one; :func:`cross_check` proves
that equivalence empirically for a given config.

Terminal states are deduped by :func:`terminal_fingerprint` — a canonical
digest of everything the oracles inspect (per-site status maps and state
digests, workload outcomes, view logs, protocol residue) — so the oracle
battery runs once per distinct outcome, not once per schedule.

Violations come out as replayable ``repro-mc/1`` artifacts: config plus the
exact event schedule, replayed byte-identically by
:func:`replay_mc_artifact`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.explore.oracles import Violation, check_trial
from repro.explore.plan import TrialConfig, exhaustive_config
from repro.explore.trial import TrialResult, run_trial
from repro.sim.choice import EventKey, PruneBranch, ScheduleController

MC_ARTIFACT_FORMAT = "repro-mc/1"

#: The three protocol-mutation canaries, each with the smallest exhaustive
#: config that exposes it (found by descending config size until detection
#: was lost) and the oracles allowed to report it.
CANARY_CONFIGS: Dict[str, Dict[str, Any]] = {
    "skip_rl_check": {
        "n_sites": 2,
        "txns": ((0, "rmw"), (1, "rmw")),
        "views": False,
        "oracles": {"effect", "convergence", "optimistic", "pessimistic", "status"},
    },
    # NC needs both conflicting transactions *remote* from the primary:
    # a primary-local transaction's VT is Lamport-bumped above any
    # delivered propagate, so with 2 sites no reachable schedule puts a
    # write inside another transaction's reserved interval.
    "skip_nc_check": {
        "n_sites": 3,
        "txns": ((1, "rmw"), (2, "rmw")),
        "views": False,
        "oracles": {"effect", "convergence", "optimistic", "pessimistic", "status"},
    },
    "views_pre_commit": {
        "n_sites": 2,
        "txns": ((0, "rmw"), (1, "rmw")),
        "views": True,
        "oracles": {"pessimistic"},
    },
}


class NondeterministicReplay(ReproError):
    """A replayed prefix presented a different enabled set — the trial is
    not a deterministic function of (config, schedule prefix), which breaks
    the stateless DFS.  Always a bug, never a user error."""


def canary_config(mutation: str) -> TrialConfig:
    """The smallest exhaustive config known to expose ``mutation``."""
    spec = CANARY_CONFIGS.get(mutation)
    if spec is None:
        raise ReproError(
            f"unknown canary {mutation!r}; expected one of {sorted(CANARY_CONFIGS)}"
        )
    return exhaustive_config(
        spec["n_sites"],
        spec["txns"],
        views=spec["views"],
        mutations=(mutation,),
        label=f"mc-canary-{mutation}",
    )


# ----------------------------------------------------------------------
# Independence relation
# ----------------------------------------------------------------------


def target_site(config: TrialConfig, key: EventKey) -> int:
    """The site whose state an event mutates when fired.

    Deliveries mutate the destination, arrivals the submitting party's
    site, timers the deferring site.
    """
    kind = key[0]
    if kind == "msg":
        return key[2]
    if kind == "txn":
        return config.parties[key[1]].site
    if kind == "tmr":
        return key[1]
    raise ReproError(f"unknown event key {key!r}")


def independent(config: TrialConfig, a: EventKey, b: EventKey) -> bool:
    """Whether firing order of ``a`` and ``b`` cannot affect any state.

    Conservative: events commute iff they target *different* sites.  Two
    same-site events always conflict (they share the site's Lamport clock,
    engine tables, and object histories); two different-site events
    commute because each mutates only its own site and appends sends to
    disjoint outgoing channels.
    """
    return target_site(config, a) != target_site(config, b)


# ----------------------------------------------------------------------
# Terminal-state fingerprinting
# ----------------------------------------------------------------------


def terminal_fingerprint(result: TrialResult) -> str:
    """Canonical digest of everything the oracle battery inspects.

    Two schedules with equal fingerprints are indistinguishable to
    :func:`~repro.explore.oracles.check_trial` — per-site commit status,
    converged state digests, workload outcomes, recorded view logs, and
    protocol residue all match — so oracles run once per fingerprint.
    Workload records are keyed by party (not global submission order):
    arrival order of *independent* parties is schedule-dependent, their
    outcomes are not.
    """
    doc: Dict[str, Any] = {"label": result.config.label}
    status: Dict[str, Any] = {}
    digests: Dict[str, Any] = {}
    residue: Dict[str, Any] = {}
    for site in result.live_sites():
        sid = str(site.site_id)
        status[sid] = sorted(
            (str(vt), state) for vt, state in site.engine.status.items()
        )
        digests[sid] = sorted(
            (key, list(vt_key), value)
            for key, (vt_key, value) in site.state_digest().items()
        )
        residue[sid] = {k: list(v) for k, v in sorted(site.protocol_residue().items())}
    doc["status"] = status
    doc["digests"] = digests
    doc["residue"] = residue

    infos: List[Tuple[Any, ...]] = []
    for info in result.infos:
        outcome = info.outcome
        infos.append(
            (
                info.party,
                info.site,
                info.kind,
                info.value,
                info.amount,
                None if outcome is None or outcome.vt is None else str(outcome.vt),
                None if outcome is None else bool(outcome.committed),
                None if outcome is None else bool(outcome.aborted_no_retry),
            )
        )
    doc["infos"] = sorted(infos)
    doc["pess"] = {
        f"{sid}:{name}": [(str(ts), repr(value)) for ts, value in view.log]
        for (sid, name), view in sorted(result.pess_views.items())
    }
    doc["opt"] = {
        f"{sid}:{name}": [(str(ts), repr(value)) for ts, value in view.log]
        for (sid, name), view in sorted(result.opt_views.items())
    }
    payload = json.dumps(doc, sort_keys=True, default=str).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


# ----------------------------------------------------------------------
# DFS strategies
# ----------------------------------------------------------------------


@dataclass
class _Frame:
    """One node on the current DFS path."""

    enabled: Tuple[EventKey, ...]
    candidates: List[EventKey]
    idx: int = 0
    done: Set[EventKey] = field(default_factory=set)
    sleep: FrozenSet[EventKey] = frozenset()

    @property
    def chosen(self) -> EventKey:
        return self.candidates[self.idx]


class _DFSStrategy:
    """Replays the shared DFS stack, then extends it first-candidate-deep."""

    def __init__(self, stack: List[_Frame], config: TrialConfig, por: bool) -> None:
        self.stack = stack
        self.config = config
        self.por = por

    def choose(self, depth: int, enabled: List[EventKey]) -> EventKey:
        stack = self.stack
        if depth < len(stack):
            frame = stack[depth]
            if frame.enabled != tuple(enabled):
                raise NondeterministicReplay(
                    f"depth {depth}: replay enabled set {enabled!r} "
                    f"!= recorded {list(frame.enabled)!r}"
                )
            return frame.chosen
        sleep: FrozenSet[EventKey] = frozenset()
        if self.por and depth > 0:
            parent = stack[-1]
            asleep = parent.sleep | parent.done
            sleep = frozenset(
                t for t in asleep if independent(self.config, t, parent.chosen)
            )
        candidates = [key for key in enabled if key not in sleep]
        if not candidates:
            raise PruneBranch
        stack.append(_Frame(enabled=tuple(enabled), candidates=candidates, sleep=sleep))
        return candidates[0]


class _FixedStrategy:
    """Replays one recorded schedule exactly (artifact replay)."""

    def __init__(self, schedule: Sequence[EventKey]) -> None:
        self.schedule = [tuple(key) for key in schedule]

    def choose(self, depth: int, enabled: List[EventKey]) -> EventKey:
        if depth >= len(self.schedule):
            raise ReproError(
                f"schedule exhausted at depth {depth} but events still "
                f"enabled: {enabled!r}"
            )
        key = self.schedule[depth]
        if key not in enabled:
            raise ReproError(
                f"depth {depth}: scheduled event {key!r} not enabled "
                f"(enabled: {enabled!r})"
            )
        return key


# ----------------------------------------------------------------------
# Exploration
# ----------------------------------------------------------------------


@dataclass
class MCStats:
    """Counters from one exploration (all deterministic per config)."""

    runs: int = 0  # trial executions (= schedules + pruned branches)
    schedules: int = 0  # complete interleavings reaching quiescence
    pruned: int = 0  # branches cut by sleep sets
    deduped: int = 0  # terminal states skipped as already-seen fingerprints
    distinct_outcomes: int = 0  # unique terminal fingerprints
    max_depth: int = 0  # longest schedule (choice events)
    schedule_digest: str = ""  # sha256 over the ordered schedule set

    def to_dict(self) -> Dict[str, Any]:
        return {
            "runs": self.runs,
            "schedules": self.schedules,
            "pruned": self.pruned,
            "deduped": self.deduped,
            "distinct_outcomes": self.distinct_outcomes,
            "max_depth": self.max_depth,
            "schedule_digest": self.schedule_digest,
        }


@dataclass
class MCResult:
    """Outcome of one bounded-exhaustive exploration."""

    config: TrialConfig
    por: bool
    exhausted: bool  # False iff --max-schedules stopped the DFS early
    stats: MCStats
    #: fingerprint -> oracle violations at that terminal state (empty list
    #: for conforming outcomes); deterministic iteration via sorted().
    outcomes: Dict[str, List[Violation]] = field(default_factory=dict)
    #: fingerprint -> the first schedule that reached it (replay evidence).
    examples: Dict[str, List[EventKey]] = field(default_factory=dict)
    #: Every explored schedule in DFS order (only with keep_schedules=True).
    schedules: Optional[List[List[EventKey]]] = None

    @property
    def ok(self) -> bool:
        return all(not v for v in self.outcomes.values())

    def violating(self) -> List[Tuple[str, List[EventKey], List[Violation]]]:
        """(fingerprint, example schedule, violations) per violating outcome."""
        return [
            (fp, self.examples[fp], self.outcomes[fp])
            for fp in sorted(self.outcomes)
            if self.outcomes[fp]
        ]

    def violation_keys(self) -> FrozenSet[Tuple[Any, ...]]:
        """Canonical set of violations across all outcomes (for cross-checks)."""
        return frozenset(
            (v.oracle, v.site, v.obj, v.detail)
            for violations in self.outcomes.values()
            for v in violations
        )

    def summary(self) -> str:
        s = self.stats
        mode = "POR" if self.por else "full"
        tail = "" if self.exhausted else " [truncated by --max-schedules]"
        bad = sum(1 for v in self.outcomes.values() if v)
        return (
            f"{mode}: {s.schedules} schedules ({s.pruned} pruned, "
            f"{s.deduped} deduped -> {s.distinct_outcomes} distinct outcomes, "
            f"{bad} violating){tail}"
        )


def explore(
    config: TrialConfig,
    por: bool = True,
    max_schedules: Optional[int] = None,
    max_steps: int = 4096,
    keep_schedules: bool = False,
    stop_on_violation: bool = False,
) -> MCResult:
    """Enumerate every schedule of ``config``; oracle-check each outcome.

    Depth-first and stateless: each loop iteration replays the current DFS
    prefix from the config and extends it to quiescence, then backtracks
    the deepest frame with an unexplored candidate.  With ``por`` (the
    default), sleep sets skip interleavings equivalent to ones already
    explored; ``por=False`` enumerates the unreduced space (cross-checks,
    reduction measurements).  ``max_schedules`` bounds the run — the
    result's ``exhausted`` flag records whether the space was covered.
    ``stop_on_violation`` ends the DFS at the first violating outcome
    (canary mode: existence of a violation, not full enumeration).
    Deterministic: the same arguments always produce byte-identical stats,
    schedules, and outcomes.
    """
    if config.faults:
        raise ReproError("exhaustive exploration requires a fault-free config")
    stack: List[_Frame] = []
    stats = MCStats()
    result = MCResult(config=config, por=por, exhausted=True, stats=stats)
    if keep_schedules:
        result.schedules = []
    digest = hashlib.sha256()

    while True:
        stats.runs += 1
        controller = ScheduleController(
            _DFSStrategy(stack, config, por), max_steps=max_steps
        )
        trial = run_trial(config, controller=controller)
        if controller.pruned:
            stats.pruned += 1
        else:
            stats.schedules += 1
            stats.max_depth = max(stats.max_depth, len(controller.trace))
            digest.update(repr(controller.trace).encode())
            if result.schedules is not None:
                result.schedules.append(list(controller.trace))
            fp = terminal_fingerprint(trial)
            if fp in result.outcomes:
                stats.deduped += 1
            else:
                result.outcomes[fp] = check_trial(trial)
                result.examples[fp] = list(controller.trace)
                if stop_on_violation and result.outcomes[fp]:
                    result.exhausted = False
                    stats.distinct_outcomes = len(result.outcomes)
                    stats.schedule_digest = digest.hexdigest()[:16]
                    return result

        # Backtrack: advance the deepest frame with an unexplored candidate.
        while stack:
            frame = stack[-1]
            frame.done.add(frame.chosen)
            frame.idx += 1
            if frame.idx < len(frame.candidates):
                break
            stack.pop()
        if not stack:
            break
        if max_schedules is not None and stats.schedules >= max_schedules:
            result.exhausted = False
            break

    stats.distinct_outcomes = len(result.outcomes)
    stats.schedule_digest = digest.hexdigest()[:16]
    return result


def cross_check(
    config: TrialConfig, max_steps: int = 4096, keep_schedules: bool = False
) -> Dict[str, Any]:
    """Prove POR soundness on ``config`` by exhaustive comparison.

    Runs the unreduced and the sleep-set explorations to completion and
    compares (a) the violation sets and (b) the terminal-state fingerprint
    sets — sleep sets must preserve every reachable terminal state, so
    both must match exactly.  Returns the two results plus the measured
    reduction ratio.
    """
    full = explore(config, por=False, max_steps=max_steps, keep_schedules=keep_schedules)
    reduced = explore(config, por=True, max_steps=max_steps, keep_schedules=keep_schedules)
    return {
        "full": full,
        "reduced": reduced,
        "full_schedules": full.stats.schedules,
        "por_schedules": reduced.stats.schedules,
        "ratio": (
            reduced.stats.schedules / full.stats.schedules
            if full.stats.schedules
            else 0.0
        ),
        "violations_match": full.violation_keys() == reduced.violation_keys(),
        "outcomes_match": set(full.outcomes) == set(reduced.outcomes),
    }


# ----------------------------------------------------------------------
# Replayable schedule artifacts
# ----------------------------------------------------------------------


def run_schedule(config: TrialConfig, schedule: Sequence[EventKey]) -> TrialResult:
    """Re-run ``config`` under exactly the recorded event ``schedule``."""
    controller = ScheduleController(_FixedStrategy(schedule), max_steps=len(schedule) + 1)
    return run_trial(config, controller=controller)


def mc_artifact_for(
    config: TrialConfig, schedule: Sequence[EventKey], violations: Sequence[Violation]
) -> Dict[str, Any]:
    """A self-contained, replayable record of one violating schedule."""
    return {
        "format": MC_ARTIFACT_FORMAT,
        "config": config.to_dict(),
        "schedule": [list(key) for key in schedule],
        "violations": [v.to_dict() for v in violations],
    }


def replay_mc_artifact(artifact: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
    """Re-run the schedule stored in ``artifact``.

    Returns ``(regenerated_artifact, identical)`` where ``identical`` means
    the replay reproduced config + schedule + violations byte-for-byte.
    """
    from repro.explore.campaign import artifact_json

    if artifact.get("format") != MC_ARTIFACT_FORMAT:
        raise ReproError(f"unknown artifact format {artifact.get('format')!r}")
    config = TrialConfig.from_dict(artifact["config"])
    schedule = [tuple(key) for key in artifact["schedule"]]
    trial = run_schedule(config, schedule)
    regenerated = mc_artifact_for(config, schedule, check_trial(trial))
    return regenerated, artifact_json(regenerated) == artifact_json(artifact)
