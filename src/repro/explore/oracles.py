"""Invariant oracles checked after every explorer trial reaches quiescence.

Ground truth is reconstructed from the surviving sites' commit status maps:
a transaction is *committed* iff some live site recorded a summary COMMIT
for its VT, and the status maps of live sites must agree.  From the
committed workload transactions, applied in VT order, the oracles derive
the unique serial outcome every replica and every pessimistic view must
exhibit:

``effect``       committed transactions have serializable effect: each
                 object's converged committed value equals the serial
                 replay of the committed writes in VT order.
``convergence``  all live replicas hold identical committed state
                 (state digests match pairwise).
``residue``      no protocol state leaks past quiescence: no unresolved
                 guesses, no reservations owned by aborted transactions,
                 no undelivered pessimistic snapshots.
``status``       no transaction is committed at one live site and aborted
                 at another.
``pessimistic``  every pessimistic view saw exactly the committed writes,
                 losslessly, in strictly monotonic VT order, each shown
                 value matching the serial reconstruction at that VT, and
                 nothing uncommitted or aborted was ever delivered.
``optimistic``   every optimistic view was eventually superseded to the
                 committed outcome (its last notification shows the
                 converged committed value).

Failed sites are excluded: fail-stop semantics make no promises about a
dead site's final state.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.explore.trial import KIND_WRITES, TRIAL_OBJECTS, VIEW_OBJECTS, TrialResult, TxnInfo
from repro.vtime import VirtualTime


@dataclass
class Violation:
    """One oracle failure, with enough detail to aim a debugger."""

    oracle: str
    site: Optional[int]
    obj: Optional[str]
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "site": self.site, "obj": self.obj, "detail": self.detail}

    def __str__(self) -> str:
        where = f"site={self.site}" if self.site is not None else "global"
        target = f" obj={self.obj}" if self.obj else ""
        return f"[{self.oracle}] {where}{target}: {self.detail}"


def _ground_truth(result: TrialResult) -> Tuple[Set[VirtualTime], Set[VirtualTime], List[Violation]]:
    """(committed VTs, aborted VTs, status-agreement violations) per live sites."""
    committed: Set[VirtualTime] = set()
    aborted: Set[VirtualTime] = set()
    committed_at: Dict[VirtualTime, int] = {}
    aborted_at: Dict[VirtualTime, int] = {}
    for site in result.live_sites():
        for vt, state in site.engine.status.items():
            if state == "committed":
                committed.add(vt)
                committed_at.setdefault(vt, site.site_id)
            elif state == "aborted":
                aborted.add(vt)
                aborted_at.setdefault(vt, site.site_id)
    violations = [
        Violation(
            oracle="status",
            site=None,
            obj=None,
            detail=(
                f"txn {vt} committed at site {committed_at[vt]} "
                f"but aborted at site {aborted_at[vt]}"
            ),
        )
        for vt in sorted(committed & aborted, key=lambda v: v.key)
    ]
    return committed, aborted, violations


def _committed_writers(
    result: TrialResult, committed: Set[VirtualTime]
) -> Dict[str, List[Tuple[VirtualTime, TxnInfo]]]:
    """Per object: committed workload writes as (vt, info), VT-sorted."""
    writers: Dict[str, List[Tuple[VirtualTime, TxnInfo]]] = {name: [] for name, _ in TRIAL_OBJECTS}
    for info in result.infos:
        outcome = info.outcome
        if outcome is None or outcome.vt is None or outcome.vt not in committed:
            continue
        for name in KIND_WRITES[info.kind]:
            writers[name].append((outcome.vt, info))
    for entries in writers.values():
        entries.sort(key=lambda pair: pair[0].key)
    return writers


def _reconstruct(
    name: str, initial: int, entries: List[Tuple[VirtualTime, TxnInfo]]
) -> List[Tuple[VirtualTime, int]]:
    """Serial replay of the committed writes: (vt, value after vt)."""
    value = initial
    out: List[Tuple[VirtualTime, int]] = []
    for vt, info in entries:
        if name == "ctr":
            value += 1
        elif name == "board":
            value = info.value if info.value is not None else value
        elif name == "xa":
            value -= info.amount
        elif name == "xb":
            value += info.amount
        out.append((vt, value))
    return out


def _value_at(replay: List[Tuple[VirtualTime, int]], initial: int, ts: VirtualTime) -> int:
    """Reconstruction value as of ``ts`` (last committed write at or before)."""
    keys = [vt.key for vt, _ in replay]
    idx = bisect_right(keys, ts.key)
    return replay[idx - 1][1] if idx else initial


def check_trial(result: TrialResult) -> List[Violation]:
    """Run the full oracle battery; returns violations (empty = conforming)."""
    violations: List[Violation] = []
    live = result.live_sites()
    if not live:
        return violations  # everything crashed; nothing is promised

    committed, aborted, status_violations = _ground_truth(result)
    violations.extend(status_violations)

    writers = _committed_writers(result, committed)
    initials = dict(TRIAL_OBJECTS)
    replays = {
        name: _reconstruct(name, initials[name], writers[name]) for name, _ in TRIAL_OBJECTS
    }
    finals = {
        name: (replays[name][-1][1] if replays[name] else initials[name])
        for name, _ in TRIAL_OBJECTS
    }

    # A transaction the initiator saw commit must not be aborted per the
    # surviving sites' ground truth (and vice versa when the initiator is
    # still alive to be asked).
    live_ids = {site.site_id for site in live}
    for info in result.infos:
        outcome = info.outcome
        if outcome is None or outcome.vt is None or info.site not in live_ids:
            continue
        if outcome.committed and outcome.vt not in committed:
            violations.append(
                Violation(
                    oracle="status",
                    site=info.site,
                    obj=None,
                    detail=f"initiator saw {outcome.vt} commit but no live site logged it",
                )
            )

    # -- effect + convergence ------------------------------------------
    for site in live:
        for name, _initial in TRIAL_OBJECTS:
            obj = result.objects[name][site.site_id]
            actual = obj.value_at(VirtualTime(2**62, 2**30), committed_only=True)
            if actual != finals[name]:
                violations.append(
                    Violation(
                        oracle="effect",
                        site=site.site_id,
                        obj=name,
                        detail=(
                            f"committed value {actual!r} != serial replay {finals[name]!r} "
                            f"({len(writers[name])} committed writes)"
                        ),
                    )
                )
    reference = live[0].state_digest()
    for site in live[1:]:
        digest = site.state_digest()
        if digest != reference:
            diff_keys = sorted(
                k
                for k in set(reference) | set(digest)
                if reference.get(k) != digest.get(k)
            )
            violations.append(
                Violation(
                    oracle="convergence",
                    site=site.site_id,
                    obj=None,
                    detail=(
                        f"state digest differs from site {live[0].site_id} "
                        f"on keys {diff_keys[:6]}"
                    ),
                )
            )

    # -- residue --------------------------------------------------------
    for site in live:
        residue = site.protocol_residue()
        for category in sorted(residue):
            items = residue[category]
            violations.append(
                Violation(
                    oracle="residue",
                    site=site.site_id,
                    obj=None,
                    detail=f"{category}: {items[:4]} ({len(items)} total)",
                )
            )

    # -- view oracles ---------------------------------------------------
    if result.config.views:
        for site in live:
            for name in VIEW_OBJECTS:
                view = result.pess_views.get((site.site_id, name))
                if view is not None:
                    violations.extend(
                        _check_pessimistic(
                            site.site_id,
                            name,
                            view.log,
                            committed,
                            aborted,
                            writers[name],
                            replays[name],
                            initials[name],
                        )
                    )
                opt = result.opt_views.get((site.site_id, name))
                if opt is not None and opt.log and opt.log[-1][1] != finals[name]:
                    violations.append(
                        Violation(
                            oracle="optimistic",
                            site=site.site_id,
                            obj=name,
                            detail=(
                                f"last notification shows {opt.log[-1][1]!r} at "
                                f"{opt.log[-1][0]}, committed outcome is {finals[name]!r}"
                            ),
                        )
                    )
    return violations


def _check_pessimistic(
    site_id: int,
    name: str,
    log: List[Tuple[VirtualTime, Any]],
    committed: Set[VirtualTime],
    aborted: Set[VirtualTime],
    writer_entries: List[Tuple[VirtualTime, TxnInfo]],
    replay: List[Tuple[VirtualTime, int]],
    initial: int,
) -> List[Violation]:
    violations: List[Violation] = []

    def flag(detail: str) -> None:
        violations.append(Violation(oracle="pessimistic", site=site_id, obj=name, detail=detail))

    if not log:
        flag("no bootstrap notification")
        return violations

    vts = [ts for ts, _ in log]
    for prev, cur in zip(vts, vts[1:]):
        if not prev < cur:
            flag(f"non-monotonic delivery: {cur} after {prev}")

    bootstrap_ts = vts[0]
    delivered = set(vts[1:])
    for vt, _info in writer_entries:
        if vt > bootstrap_ts and vt not in delivered:
            flag(f"lossless violation: committed write {vt} never delivered")

    for ts, value in log[1:]:
        if ts in aborted:
            flag(f"delivered aborted transaction {ts} (value {value!r})")
        elif ts not in committed:
            flag(f"delivered {ts} with no committed status at any live site")
        expected = _value_at(replay, initial, ts)
        if value != expected:
            flag(f"value at {ts} is {value!r}, serial reconstruction says {expected!r}")
    return violations
