"""Run one explorer trial: build a session from a config, inject faults,
drive the workload to quiescence, and collect everything the oracles need.

Every trial replicates the same four integer objects across all sites:

* ``ctr``   — read-modify-write counter (contention, aborts, retries),
* ``board`` — blind-write whiteboard (no conflicts, pure propagation),
* ``xa``/``xb`` — transfer pair (multi-object transactions; the paper's
  XferTrans).  ``xa`` starts at 1000 so the conservation invariant
  ``xa + xb == 1000`` is checkable.

When ``config.views`` is set, each site attaches one recording pessimistic
view and one recording optimistic view per viewed object; their logs are
the evidence for the view-notification oracles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.model import ModelObject
from repro.core.session import Session
from repro.core.site import SiteRuntime
from repro.core.transaction import TransactionOutcome
from repro.core.views import OptimisticView, PessimisticView, Snapshot
from repro.errors import ReproError
from repro.explore.plan import FaultEvent, TrialConfig
from repro.sim.network import FixedLatency, Network, NormalLatency, UniformLatency
from repro.sim.scheduler import Scheduler
from repro.transport.simnet import SimTransport
from repro.vtime import VirtualTime
from repro.core.scalars import DInt
from repro.workloads import (
    BlindWriteWorkload,
    PoissonArrivals,
    ReadModifyWriteWorkload,
    TransferWorkload,
    UniformArrivals,
)

#: (object name, initial value); every trial replicates these to all sites.
TRIAL_OBJECTS: Tuple[Tuple[str, int], ...] = (("ctr", 0), ("board", 0), ("xa", 1000), ("xb", 0))
#: Objects that get recording views attached (one view per object so each
#: notification's snapshot interval concerns a single primary group).
VIEW_OBJECTS: Tuple[str, ...] = ("ctr", "board", "xa")
#: Objects each transaction kind writes.
KIND_WRITES: Dict[str, Tuple[str, ...]] = {
    "rmw": ("ctr",),
    "blind": ("board",),
    "xfer": ("xa", "xb"),
}


class RecordingPessimisticView(PessimisticView):
    """Logs every pessimistic notification as ``(ts, value)``."""

    def __init__(self, obj: ModelObject) -> None:
        self.obj = obj
        self.log: List[Tuple[VirtualTime, Any]] = []

    def update(self, changed: List[ModelObject], snapshot: Snapshot) -> None:
        self.log.append((snapshot.ts, snapshot.read(self.obj)))


class RecordingOptimisticView(OptimisticView):
    """Logs every optimistic notification and counts commit callbacks."""

    def __init__(self, obj: ModelObject) -> None:
        self.obj = obj
        self.log: List[Tuple[VirtualTime, Any]] = []
        self.commits = 0

    def update(self, changed: List[ModelObject], snapshot: Snapshot) -> None:
        self.log.append((snapshot.ts, snapshot.read(self.obj)))

    def commit(self) -> None:
        self.commits += 1


@dataclass
class TxnInfo:
    """Ground-truth record of one workload transaction submission."""

    party: int
    site: int
    kind: str
    value: Optional[int]  # blind-write payload
    amount: int  # transfer amount
    outcome: Optional[TransactionOutcome] = None


@dataclass
class TrialResult:
    """Everything the oracles inspect after quiescence."""

    config: TrialConfig
    session: Session
    network: Network
    sites: List[SiteRuntime]
    objects: Dict[str, List[ModelObject]]
    infos: List[TxnInfo]
    pess_views: Dict[Tuple[int, str], RecordingPessimisticView] = field(default_factory=dict)
    opt_views: Dict[Tuple[int, str], RecordingOptimisticView] = field(default_factory=dict)

    def live_sites(self) -> List[SiteRuntime]:
        return [s for s in self.sites if not self.network.is_failed(s.site_id)]

    @property
    def events(self):
        """Protocol events recorded during the trial (empty unless the
        trial ran with ``observe=True``)."""
        return self.session.bus.events

    def timeline(self) -> List[Dict[str, Any]]:
        """The recorded event timeline as stable JSON-serializable dicts."""
        return self.session.bus.timeline()


def build_latency(spec: Dict[str, Any]):
    kind = spec.get("kind")
    if kind == "fixed":
        return FixedLatency(float(spec["ms"]))
    if kind == "uniform":
        return UniformLatency(float(spec["low"]), float(spec["high"]))
    if kind == "normal":
        return NormalLatency(float(spec["mean"]), float(spec["sd"]))
    raise ReproError(f"unknown latency spec {spec!r}")


def _make_workload(spec_kind: str, spec, objects: Dict[str, List[ModelObject]], party_idx: int):
    site_objs = {name: objs[spec.site] for name, objs in objects.items()}
    if spec_kind == "rmw":
        return ReadModifyWriteWorkload(site_objs["ctr"], increment=1)
    if spec_kind == "blind":
        return BlindWriteWorkload(site_objs["board"], party_tag=party_idx + 1)
    if spec_kind == "xfer":
        return TransferWorkload(site_objs["xa"], site_objs["xb"], amount=spec.amount)
    raise ReproError(f"unknown workload kind {spec_kind!r}")


def _apply_fault(network: Network, event: FaultEvent) -> None:
    kind = event.kind
    args = event.args
    if kind == "jitter":
        network.set_link_latency(
            int(args["src"]),
            int(args["dst"]),
            UniformLatency(float(args["low_ms"]), float(args["high_ms"])),
        )
    elif kind == "crash":
        network.fail_site(int(args["site"]), notify_after_ms=float(args.get("notify_after_ms", 0.0)))
    elif kind == "partition":
        network.partition([int(s) for s in args["group_a"]], [int(s) for s in args["group_b"]])
    elif kind == "heal":
        network.heal_partition()
    elif kind == "drop":
        network.inject_drop(
            int(args["dst"]), count=int(args.get("count", 1)), src=args.get("src")
        )
    else:
        raise ReproError(f"unknown fault kind {kind!r}")


def run_trial(
    config: TrialConfig,
    observe: bool = False,
    subscribers: Sequence[Any] = (),
    controller: Optional[Any] = None,
) -> TrialResult:
    """Build the session described by ``config``, run it to quiescence.

    With ``observe=True`` the session's protocol event bus records the
    full event timeline (:attr:`TrialResult.events`).  ``subscribers``
    are attached live to the bus before any site exists, so streaming
    consumers (e.g. :class:`~repro.obs.health.HealthMonitor`) see the
    exact sequence a recording would capture.  Observation cannot perturb
    the run — events are stamped with simulated time and emitted outside
    the scheduler, so an observed trial is byte-identical to an
    unobserved one apart from the recording itself.

    With a ``controller`` (a :class:`~repro.sim.choice.ScheduleController`)
    the trial runs under *controlled scheduling* instead of sampled
    latencies: session setup settles through the ordinary timed path, then
    every workload arrival and cross-site delivery becomes a choice point
    the controller's strategy orders.  Requires a fault-free config — the
    exhaustive event alphabet covers arrivals, deliveries, and retry
    timers, not fault injections.
    """
    scheduler = Scheduler()
    network = Network(
        scheduler,
        latency=build_latency(config.latency),
        seed=config.net_seed,
        fifo=True,
        flush_inflight_on_fail=True,
    )
    # Partitions model "no new communication" fail-stop disconnection;
    # messages already in the infrastructure still arrive (see plan.py).
    network.partition_cuts_inflight = False
    session = Session(transport=SimTransport(network), max_retries=config.max_retries)
    if observe:
        session.observe()
    for subscriber in subscribers:
        session.bus.subscribe(subscriber)
    session.add_sites(config.n_sites)
    sites = session.sites

    objects: Dict[str, List[ModelObject]] = {}
    for name, initial in TRIAL_OBJECTS:
        objects[name] = session.replicate(DInt, name, sites, initial)

    for site in sites:
        site.engine.mutations.update(config.mutations)

    result = TrialResult(
        config=config,
        session=session,
        network=network,
        sites=sites,
        objects=objects,
        infos=[],
    )

    if config.views:
        for site in sites:
            for name in VIEW_OBJECTS:
                obj = objects[name][site.site_id]
                pess = RecordingPessimisticView(obj)
                obj.attach(pess, mode="pessimistic")
                result.pess_views[(site.site_id, name)] = pess
                opt = RecordingOptimisticView(obj)
                obj.attach(opt, mode="optimistic")
                result.opt_views[(site.site_id, name)] = opt

    if controller is not None and config.faults:
        raise ReproError("controlled scheduling requires a fault-free config")

    base = scheduler.now

    for party_idx, spec in enumerate(config.parties):
        site = sites[spec.site]
        workload = _make_workload(spec.kind, spec, objects, party_idx)
        if spec.arrival == "uniform":
            arrivals = UniformArrivals(spec.interval_ms, start_ms=spec.start_ms)
        else:
            arrivals = PoissonArrivals(spec.interval_ms, start_ms=spec.start_ms)
        times = arrivals.times(spec.count, random.Random(spec.arrival_seed))
        for t in times:

            def fire(spec=spec, site=site, party_idx=party_idx, workload=workload) -> None:
                if network.is_failed(site.site_id):
                    return
                body = workload()
                value = None
                if spec.kind == "blind":
                    value = workload.party_tag * 1_000_000 + workload._counter
                info = TxnInfo(
                    party=party_idx,
                    site=site.site_id,
                    kind=spec.kind,
                    value=value,
                    amount=spec.amount,
                )
                result.infos.append(info)
                info.outcome = site.transact(body)

            if controller is not None:
                # Controlled scheduling: the arrival's *order* (per-party
                # program order preserved) is the choice, not its time.
                controller.offer_arrival(party_idx, fire)
            else:
                scheduler.call_at(base + max(0.0, t), fire, label=f"explore-txn p{party_idx}")

    if controller is not None:
        network.choice = controller
        try:
            controller.drive(scheduler, max_events=config.max_events)
        finally:
            network.choice = None
        return result

    for event in config.faults:
        scheduler.call_at(
            base + max(0.0, event.at_ms),
            lambda event=event: _apply_fault(network, event),
            label=f"explore-fault {event.kind}",
        )

    scheduler.run_until_quiescent(max_events=config.max_events)
    return result
