"""Metric aggregation helpers for the benchmark harness.

Collects the quantities the paper's evaluation reports: commit-latency
statistics, conflict/rollback rates, and the optimistic-view deviation
totals of section 5.1.2 (lost updates, update inconsistencies, read
inconsistencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.session import Session
from repro.core.transaction import TransactionOutcome


@dataclass
class LatencyStats:
    """Simple distribution summary over commit latencies (ms)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @staticmethod
    def from_outcomes(outcomes: Sequence[TransactionOutcome]) -> Optional["LatencyStats"]:
        values = sorted(
            o.commit_latency_ms for o in outcomes if o.commit_latency_ms is not None
        )
        if not values:
            return None

        def pct(q: float) -> float:
            index = min(len(values) - 1, int(q * (len(values) - 1) + 0.5))
            return values[index]

        return LatencyStats(
            count=len(values),
            mean=sum(values) / len(values),
            minimum=values[0],
            maximum=values[-1],
            p50=pct(0.50),
            p95=pct(0.95),
        )


@dataclass
class DeviationTotals:
    """The section 5.1.2 deviation taxonomy, aggregated across proxies."""

    lost_updates: int = 0
    update_inconsistencies: int = 0
    read_inconsistencies: int = 0
    notifications: int = 0
    commit_notifications: int = 0

    @staticmethod
    def from_session(session: Session) -> "DeviationTotals":
        totals = DeviationTotals()
        for site in session.sites:
            for proxy in site.views.proxies:
                totals.lost_updates += proxy.lost_updates
                totals.update_inconsistencies += proxy.update_inconsistencies
                totals.read_inconsistencies += proxy.read_inconsistencies
                totals.notifications += proxy.notifications
                totals.commit_notifications += proxy.commit_notifications
        return totals

    def rate_per_notification(self) -> Dict[str, float]:
        denominator = max(self.notifications, 1)
        return {
            "lost_updates": self.lost_updates / denominator,
            "update_inconsistencies": self.update_inconsistencies / denominator,
            "read_inconsistencies": self.read_inconsistencies / denominator,
        }


@dataclass
class ConflictStats:
    """Conflict/rollback accounting over a workload run."""

    transactions: int
    attempts: int
    commits: int
    conflict_retries: int

    @property
    def rollback_rate(self) -> float:
        """Fraction of execution attempts that were rolled back."""
        if self.attempts == 0:
            return 0.0
        return self.conflict_retries / self.attempts

    @staticmethod
    def from_outcomes(
        outcomes: Sequence[TransactionOutcome],
    ) -> "ConflictStats":
        attempts = sum(o.attempts for o in outcomes)
        commits = sum(1 for o in outcomes if o.committed)
        return ConflictStats(
            transactions=len(outcomes),
            attempts=attempts,
            commits=commits,
            conflict_retries=attempts - len(outcomes),
        )
