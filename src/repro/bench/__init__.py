"""Benchmark harness: scenario builders, probe views, metrics, reporting.

Each module in ``benchmarks/`` uses these helpers to regenerate one of the
paper's evaluation results (see DESIGN.md's per-experiment index and
EXPERIMENTS.md for paper-vs-measured numbers).
"""

from repro.bench.harness import (
    LatencyProbeView,
    ViewKind,
    attach_probe,
    two_party_scenario,
    multi_party_scenario,
)
from repro.bench.report import Table, Series, format_table, print_table

__all__ = [
    "LatencyProbeView",
    "ViewKind",
    "attach_probe",
    "two_party_scenario",
    "multi_party_scenario",
    "Table",
    "Series",
    "format_table",
    "print_table",
]
