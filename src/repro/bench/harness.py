"""Scenario builders and probe views for the benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.model import ModelObject
from repro.core.scalars import DInt
from repro.core.session import Session
from repro.core.site import SiteRuntime
from repro.core.views import Snapshot, View

ViewKind = str  # "optimistic" | "pessimistic"


class LatencyProbeView(View):
    """Records (time, value, changed) for every notification plus commits.

    The workhorse of the view-latency experiments: benches look up when a
    particular value first became visible to the view.
    """

    def __init__(self, site: SiteRuntime, objects: Sequence[ModelObject]) -> None:
        self.site = site
        self.objects = list(objects)
        self.updates: List[Tuple[float, Dict[str, Any], List[str]]] = []
        self.commits: List[float] = []

    def update(self, changed: List[ModelObject], snapshot: Snapshot) -> None:
        values = {obj.name: snapshot.read(obj) for obj in self.objects}
        self.updates.append(
            (self.site.transport.now(), values, sorted(o.name for o in changed))
        )

    def commit(self) -> None:
        self.commits.append(self.site.transport.now())

    def first_seen(self, name: str, value: Any) -> Optional[float]:
        """The first time the view was shown ``name == value``."""
        for t, values, _changed in self.updates:
            if values.get(name) == value:
                return t
        return None

    def first_commit_after(self, t0: float) -> Optional[float]:
        for t in self.commits:
            if t >= t0:
                return t
        return None

    @property
    def proxy(self):
        """The infrastructure proxy (for deviation counters)."""
        for proxy in self.site.views.proxies:
            if proxy.view is self:
                return proxy
        return None


def attach_probe(
    site: SiteRuntime, objects: Sequence[ModelObject], kind: ViewKind
) -> LatencyProbeView:
    view = LatencyProbeView(site, objects)
    site.views.attach(view, list(objects), kind)
    return view


@dataclass
class TwoPartyScenario:
    session: Session
    alice: SiteRuntime
    bob: SiteRuntime
    objects: List[ModelObject]  # [alice's replica, bob's replica]

    @property
    def a(self) -> ModelObject:
        return self.objects[0]

    @property
    def b(self) -> ModelObject:
        return self.objects[1]


def two_party_scenario(
    latency_ms: float = 50.0,
    kind: Any = DInt,
    initial: Any = 0,
    seed: int = 0,
    **session_kwargs: Any,
) -> TwoPartyScenario:
    """The paper's two-party collaboration: one replicated object, 2 sites."""
    session = Session.simulated(latency_ms=latency_ms, seed=seed, **session_kwargs)
    alice, bob = session.add_sites(2)
    objects = session.replicate(kind, "shared", [alice, bob], initial=initial)
    session.settle()
    return TwoPartyScenario(session=session, alice=alice, bob=bob, objects=objects)


@dataclass
class MultiPartyScenario:
    session: Session
    sites: List[SiteRuntime]
    objects: List[ModelObject]


def multi_party_scenario(
    n_sites: int,
    latency_ms: float = 50.0,
    kind: Any = DInt,
    initial: Any = 0,
    seed: int = 0,
    **session_kwargs: Any,
) -> MultiPartyScenario:
    """N sites fully replicating one object."""
    session = Session.simulated(latency_ms=latency_ms, seed=seed, **session_kwargs)
    sites = session.add_sites(n_sites)
    objects = session.replicate(kind, "shared", sites, initial=initial)
    session.settle()
    return MultiPartyScenario(session=session, sites=sites, objects=objects)
