"""Naive linear reference implementations of the protocol hot paths.

These are verbatim copies of the *seed* (pre-optimization) algorithms for
:class:`~repro.core.history.ValueHistory`,
:class:`~repro.vtime.intervals.IntervalSet`, and
:class:`~repro.sim.scheduler.Scheduler`, kept for two purposes:

1. **Equivalence testing** — the property-based tests in
   ``tests/test_hotpath_equivalence.py`` drive the optimized structures and
   these references with identical operation sequences and assert identical
   observable behavior, so the bisect indexes can never silently diverge
   from the simple semantics.
2. **Performance baseline** — ``benchmarks/bench_hotpaths.py`` times both
   and records the seed-vs-optimized trajectory in ``BENCH_hotpaths.json``.

Do not "improve" these: their entire value is staying naive.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterator, List, Optional, TypeVar

from repro.core.history import HistoryEntry
from repro.errors import ProtocolError, SimulationError
from repro.vtime import VT_ZERO, Interval, VirtualTime

V = TypeVar("V")


class NaiveValueHistory(Generic[V]):
    """The seed ``ValueHistory``: plain list, linear scans everywhere."""

    def __init__(self, initial: V, initial_vt: VirtualTime = VT_ZERO) -> None:
        self._entries: List[HistoryEntry[V]] = [
            HistoryEntry(vt=initial_vt, value=initial, committed=True)
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[HistoryEntry[V]]:
        return iter(self._entries)

    def current(self) -> HistoryEntry[V]:
        return self._entries[-1]

    def committed_current(self) -> HistoryEntry[V]:
        for entry in reversed(self._entries):
            if entry.committed:
                return entry
        raise ProtocolError("history lost its committed base entry")

    def read_at(self, vt: VirtualTime) -> HistoryEntry[V]:
        result: Optional[HistoryEntry[V]] = None
        for entry in self._entries:
            if entry.vt <= vt:
                result = entry
            else:
                break
        if result is None:
            raise ProtocolError(
                f"no value at or before {vt}; history begins at {self._entries[0].vt}"
            )
        return result

    def committed_read_at(self, vt: VirtualTime) -> HistoryEntry[V]:
        result: Optional[HistoryEntry[V]] = None
        for entry in self._entries:
            if entry.vt <= vt and entry.committed:
                result = entry
            if entry.vt > vt:
                break
        if result is None:
            raise ProtocolError(f"no committed value at or before {vt}")
        return result

    def entry_at(self, vt: VirtualTime) -> Optional[HistoryEntry[V]]:
        for entry in self._entries:
            if entry.vt == vt:
                return entry
            if entry.vt > vt:
                return None
        return None

    def entries_in_open_interval(
        self, lo: VirtualTime, hi: VirtualTime, committed_only: bool = False
    ) -> List[HistoryEntry[V]]:
        found = []
        for entry in self._entries:
            if lo < entry.vt < hi and (entry.committed or not committed_only):
                found.append(entry)
        return found

    def has_uncommitted_in_open_interval(self, lo: VirtualTime, hi: VirtualTime) -> bool:
        return any(lo < e.vt < hi and not e.committed for e in self._entries)

    def insert(self, vt: VirtualTime, value: V, committed: bool = False) -> HistoryEntry[V]:
        entry = HistoryEntry(vt=vt, value=value, committed=committed)
        for i in range(len(self._entries) - 1, -1, -1):
            existing = self._entries[i]
            if existing.vt == vt:
                raise ProtocolError(f"duplicate history entry at {vt}")
            if existing.vt < vt:
                self._entries.insert(i + 1, entry)
                return entry
        self._entries.insert(0, entry)
        return entry

    def set_value_at(self, vt: VirtualTime, value: V) -> None:
        entry = self.entry_at(vt)
        if entry is None:
            raise ProtocolError(f"no entry at {vt} to overwrite")
        entry.value = value

    def commit(self, vt: VirtualTime) -> bool:
        entry = self.entry_at(vt)
        if entry is None:
            return False
        entry.committed = True
        return True

    def purge(self, vt: VirtualTime) -> bool:
        for i, entry in enumerate(self._entries):
            if entry.vt == vt:
                if len(self._entries) == 1:
                    raise ProtocolError("cannot purge the last remaining history entry")
                del self._entries[i]
                return True
        return False

    def gc(self, floor: Optional[VirtualTime] = None) -> int:
        if floor is None:
            floor = self.committed_current().vt
        base_index = None
        for i, entry in enumerate(self._entries):
            if entry.committed and entry.vt <= floor:
                base_index = i
        if base_index is None or base_index == 0:
            return 0
        dropped = base_index
        self._entries = self._entries[base_index:]
        return dropped

    def __repr__(self) -> str:
        return f"NaiveValueHistory({self._entries!r})"


class NaiveIntervalSet:
    """The seed ``IntervalSet``: one flat list, rebuilt on every removal."""

    def __init__(self) -> None:
        self._intervals: List[Interval] = []

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def reserve(self, lo: VirtualTime, hi: VirtualTime, owner: VirtualTime) -> Interval:
        interval = Interval(lo, hi, owner)
        if not interval.is_empty():
            self._intervals.append(interval)
        return interval

    def blocking_reservation(
        self, vt: VirtualTime, exclude_owner: Optional[VirtualTime] = None
    ) -> Optional[Interval]:
        for interval in self._intervals:
            if interval.owner == exclude_owner:
                continue
            if interval.contains_strictly(vt):
                return interval
        return None

    def release_owner(self, owner: VirtualTime) -> int:
        before = len(self._intervals)
        self._intervals = [i for i in self._intervals if i.owner != owner]
        return before - len(self._intervals)

    def prune_before(self, vt: VirtualTime) -> int:
        before = len(self._intervals)
        # The seed's convoluted predicate, kept verbatim: "not hi < vt and
        # hi != vt" is exactly "hi > vt" under a total order.
        self._intervals = [i for i in self._intervals if not i.hi < vt and i.hi != vt]
        return before - len(self._intervals)

    def covering_intervals(self, vt: VirtualTime) -> List[Interval]:
        return [i for i in self._intervals if i.contains_strictly(vt)]

    def owners(self) -> List[VirtualTime]:
        seen: List[VirtualTime] = []
        for interval in self._intervals:
            if interval.owner not in seen:
                seen.append(interval.owner)
        return seen

    def __repr__(self) -> str:
        return f"NaiveIntervalSet({self._intervals!r})"


@dataclass(order=True)
class NaiveScheduledEvent:
    """The seed ``ScheduledEvent``: a fully comparable dataclass."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class NaiveScheduler:
    """The seed ``Scheduler``: dataclass heap entries, O(n) ``pending()``,
    cancelled events retained until popped."""

    def __init__(self) -> None:
        self._queue: List[NaiveScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def call_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> NaiveScheduledEvent:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current time {self._now}"
            )
        event = NaiveScheduledEvent(time=time, seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def call_later(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> NaiveScheduledEvent:
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.call_at(self._now + delay, action, label)

    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        if self._running:
            raise SimulationError("scheduler.run() is not reentrant")
        self._running = True
        try:
            executed = 0
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = head.time
                self._events_processed += 1
                head.action()
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; probable protocol livelock"
                    )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def run_until_quiescent(self, max_events: int = 10_000_000) -> float:
        return self.run(until=None, max_events=max_events)

    def advance_to(self, time: float) -> None:
        if time < self._now:
            raise SimulationError(f"cannot move clock backwards to {time}")
        self._now = time

    def __repr__(self) -> str:
        return f"NaiveScheduler(now={self._now}, pending={self.pending()})"
