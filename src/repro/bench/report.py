"""Plain-text table/series rendering for benchmark output.

The benchmark suite prints the same rows/series the paper reports, so a
reader can diff "paper says / we measured" at a glance (EXPERIMENTS.md
records the comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence


@dataclass
class Table:
    """A titled table with a header row and formatted body rows."""

    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row width {len(values)} != header width {len(self.headers)}"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)


@dataclass
class Series:
    """A named (x, y) series for figure-style results."""

    name: str
    points: List[tuple] = field(default_factory=list)

    def add(self, x: Any, y: Any) -> None:
        self.points.append((x, y))


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(table: Table) -> str:
    """Render a table as aligned monospace text."""
    str_rows = [[_fmt(v) for v in row] for row in table.rows]
    widths = [len(h) for h in table.headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = [table.title, "=" * len(table.title)]
    lines.append(sep.join(h.ljust(w) for h, w in zip(table.headers, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def print_table(table: Table) -> None:
    print()
    print(format_table(table))
    print()


def emit(
    experiment_id: str,
    text: str,
    results_dir: Optional[str] = None,
    quiet: bool = False,
) -> None:
    """Print an experiment's result block and persist it under results/.

    ``results_dir`` defaults to ``benchmarks/results`` relative to the
    current working directory; benches call this so EXPERIMENTS.md numbers
    can be re-derived from the saved artifacts.  ``quiet`` skips the stdout
    echo (used by the CLI's ``--json`` mode, which prints one machine-
    readable document instead) while still persisting the artifact.
    """
    import os

    if not quiet:
        print()
        print(text)
        print()
    directory = results_dir or os.path.join("benchmarks", "results")
    try:
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, f"{experiment_id}.txt"), "w") as fh:
            fh.write(text + "\n")
    except OSError:
        pass  # persisting results is best-effort


def format_series(series_list: Sequence[Series], x_label: str = "x") -> str:
    """Render several series as one combined table keyed by x."""
    xs: List[Any] = []
    for series in series_list:
        for x, _ in series.points:
            if x not in xs:
                xs.append(x)
    table = Table(
        title="series",
        headers=[x_label] + [s.name for s in series_list],
    )
    for x in xs:
        row: List[Any] = [x]
        for series in series_list:
            match = next((y for sx, y in series.points if sx == x), None)
            row.append(match)
        table.add(*row)
    return format_table(table)
