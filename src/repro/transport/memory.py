"""A synchronous in-process transport with zero latency.

Messages are appended to a FIFO queue and drained iteratively (never
recursively), so handler code can freely send further messages without
unbounded stack growth.  Draining is triggered automatically after each
``send`` unless a drain is already in progress, which gives tests simple
"everything delivered by the time send returns" semantics while still
exercising the asynchronous structure of the protocol.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Tuple

from repro.errors import TransportError
from repro.transport.base import DeliveryHandler, FailureHandler, Transport


class MemoryTransport(Transport):
    """Zero-latency FIFO transport for protocol-logic unit tests."""

    def __init__(self, auto_drain: bool = True) -> None:
        self._handlers: Dict[int, DeliveryHandler] = {}
        self._queue: Deque[Tuple[int, int, Any]] = deque()
        self._failure_handlers: List[FailureHandler] = []
        self._failed: set = set()
        self._draining = False
        self._auto_drain = auto_drain
        self._clock_ms = 0.0
        self.messages_sent = 0

    def register(self, site: int, handler: DeliveryHandler) -> None:
        self._handlers[site] = handler

    def unregister(self, site: int) -> None:
        """Detach ``site``'s handler; queued messages to it are dropped on drain."""
        self._handlers.pop(site, None)

    def add_failure_listener(self, handler: FailureHandler) -> None:
        self._failure_handlers.append(handler)

    def remove_failure_listener(self, handler: FailureHandler) -> None:
        try:
            self._failure_handlers.remove(handler)
        except ValueError:
            pass

    def now(self) -> float:
        return self._clock_ms

    def advance(self, ms: float) -> None:
        """Move the fake clock forward (latency is still zero)."""
        self._clock_ms += ms

    def send(self, src: int, dst: int, payload: Any) -> None:
        if dst not in self._handlers:
            raise TransportError(f"destination site {dst} is not registered")
        self.messages_sent += 1
        if src in self._failed or dst in self._failed:
            return
        self._queue.append((src, dst, payload))
        if self._auto_drain:
            self.drain()

    def pending(self) -> int:
        return len(self._queue)

    def quiesce(self, max_events=None) -> int:
        """Deliver everything queued (``max_events`` is moot: drain is total)."""
        return self.drain()

    def is_failed(self, site: int) -> bool:
        return site in self._failed

    def drain(self) -> int:
        """Deliver all queued messages; returns the number delivered."""
        if self._draining:
            return 0
        self._draining = True
        delivered = 0
        try:
            while self._queue:
                src, dst, payload = self._queue.popleft()
                if src in self._failed or dst in self._failed:
                    continue
                handler = self._handlers.get(dst)
                if handler is None:
                    # Destination evicted after the send was accepted
                    # (SessionHost tenant eviction): drop, never raise.
                    continue
                handler(src, payload)
                delivered += 1
        finally:
            self._draining = False
        return delivered

    def fail_site(self, site: int) -> None:
        """Crash ``site`` fail-stop and notify failure listeners synchronously."""
        if site in self._failed:
            return
        self._failed.add(site)
        for handler in list(self._failure_handlers):
            handler(site)
        if self._auto_drain:
            self.drain()
