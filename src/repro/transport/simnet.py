"""Adapter presenting a simulated :class:`~repro.sim.network.Network` as a Transport."""

from __future__ import annotations

from typing import Any

from repro.sim.network import Network
from repro.transport.base import DeliveryHandler, FailureHandler, Transport


class SimTransport(Transport):
    """Routes site messages over a discrete-event simulated network.

    This is the transport used by all benchmarks: latency, jitter, and
    failures are controlled by the wrapped network, and time is the
    scheduler's simulated clock.

    Multi-tenant hosting works through the packed-namespace defaults of
    :class:`~repro.transport.base.Transport`: a ``(tenant, site)`` pair
    becomes one flat simulated site, so fault injection, partitions, and
    exhaustive exploration all apply per tenant without special cases.
    """

    def __init__(self, network: Network) -> None:
        self._network = network

    # -- capability protocol ---------------------------------------------

    def scheduler(self):
        """The deterministic discrete-event scheduler (virtual time)."""
        return self._network.scheduler

    def network(self) -> Network:
        """The simulated fabric itself (fault injection, latency models)."""
        return self._network

    @property
    def bus(self):
        """The network's protocol event bus (shared by session and sites)."""
        return self._network.bus

    def register(self, site: int, handler: DeliveryHandler) -> None:
        self._network.register(site, handler)

    def unregister(self, site: int) -> None:
        self._network.unregister(site)

    def add_failure_listener(self, handler: FailureHandler) -> None:
        self._network.add_failure_listener(handler)

    def remove_failure_listener(self, handler: FailureHandler) -> None:
        self._network.remove_failure_listener(handler)

    def send(self, src: int, dst: int, payload: Any) -> None:
        self._network.send(src, dst, payload)

    def now(self) -> float:
        return self._network.scheduler.now

    def pending(self) -> int:
        return self._network.scheduler.pending()

    def quiesce(self, max_events=None) -> int:
        """Run the discrete-event scheduler until no events remain."""
        scheduler = self._network.scheduler
        before = scheduler.events_processed
        if max_events is None:
            scheduler.run_until_quiescent()
        else:
            scheduler.run_until_quiescent(max_events=max_events)
        return scheduler.events_processed - before

    def defer(self, action, delay_ms: float = 0.0, site=None) -> None:
        # Under exhaustive exploration, positive-delay defers (retry
        # backoffs) are timers whose order relative to in-flight messages
        # is a genuine schedule choice; zero-delay defers are same-instant
        # continuations and stay on the scheduler (see repro.sim.choice).
        choice = self._network.choice
        if choice is not None and delay_ms > 0.0:
            choice.offer_timer(site, action, delay_ms)
            return
        self._network.scheduler.call_later(delay_ms, action, label="deferred")

    # -- fault-injection passthroughs (used by the conformance explorer) --

    def fail_site(self, site: int, notify_after_ms: float = 0.0) -> None:
        self._network.fail_site(site, notify_after_ms)

    def is_failed(self, site: int) -> bool:
        return self._network.is_failed(site)

    def inject_drop(self, dst: int, count: int = 1, src=None):
        return self._network.inject_drop(dst, count=count, src=src)

    def partition(self, group_a, group_b) -> None:
        self._network.partition(group_a, group_b)

    def heal_partition(self) -> None:
        self._network.heal_partition()

    def set_link_latency(self, src: int, dst: int, model) -> None:
        self._network.set_link_latency(src, dst, model)
