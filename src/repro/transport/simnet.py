"""Adapter presenting a simulated :class:`~repro.sim.network.Network` as a Transport."""

from __future__ import annotations

from typing import Any

from repro.sim.network import Network
from repro.transport.base import DeliveryHandler, FailureHandler, Transport


class SimTransport(Transport):
    """Routes site messages over a discrete-event simulated network.

    This is the transport used by all benchmarks: latency, jitter, and
    failures are controlled by the wrapped network, and time is the
    scheduler's simulated clock.
    """

    def __init__(self, network: Network) -> None:
        self.network = network

    @property
    def bus(self):
        """The network's protocol event bus (shared by session and sites)."""
        return self.network.bus

    def register(self, site: int, handler: DeliveryHandler) -> None:
        self.network.register(site, handler)

    def add_failure_listener(self, handler: FailureHandler) -> None:
        self.network.add_failure_listener(handler)

    def send(self, src: int, dst: int, payload: Any) -> None:
        self.network.send(src, dst, payload)

    def now(self) -> float:
        return self.network.scheduler.now

    def pending(self) -> int:
        return self.network.scheduler.pending()

    def quiesce(self, max_events=None) -> int:
        """Run the discrete-event scheduler until no events remain."""
        scheduler = self.network.scheduler
        before = scheduler.events_processed
        if max_events is None:
            scheduler.run_until_quiescent()
        else:
            scheduler.run_until_quiescent(max_events=max_events)
        return scheduler.events_processed - before

    def defer(self, action, delay_ms: float = 0.0, site=None) -> None:
        # Under exhaustive exploration, positive-delay defers (retry
        # backoffs) are timers whose order relative to in-flight messages
        # is a genuine schedule choice; zero-delay defers are same-instant
        # continuations and stay on the scheduler (see repro.sim.choice).
        choice = self.network.choice
        if choice is not None and delay_ms > 0.0:
            choice.offer_timer(site, action, delay_ms)
            return
        self.network.scheduler.call_later(delay_ms, action, label="deferred")

    # -- fault-injection passthroughs (used by the conformance explorer) --

    def fail_site(self, site: int, notify_after_ms: float = 0.0) -> None:
        self.network.fail_site(site, notify_after_ms)

    def is_failed(self, site: int) -> bool:
        return self.network.is_failed(site)

    def inject_drop(self, dst: int, count: int = 1, src=None):
        return self.network.inject_drop(dst, count=count, src=src)

    def partition(self, group_a, group_b) -> None:
        self.network.partition(group_a, group_b)

    def heal_partition(self) -> None:
        self.network.heal_partition()

    def set_link_latency(self, src: int, dst: int, model) -> None:
        self.network.set_link_latency(src, dst, model)
