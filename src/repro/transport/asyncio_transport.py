"""A wall-clock asyncio transport for live, interactive examples.

Each destination site owns an ``asyncio.Queue`` drained by a consumer task.
An optional fixed delay emulates network latency in real time.  This
transport exists so the runnable examples can demonstrate DECAF behaviour
outside the discrete-event simulator; benchmarks use
:class:`~repro.transport.simnet.SimTransport` for determinism.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.obs.clock import WallClock
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.transport.base import DeliveryHandler, FailureHandler, Transport


class AsyncioTransport(Transport):
    """Delivers messages through per-site asyncio queues with optional delay."""

    def __init__(self, delay_ms: float = 0.0) -> None:
        self.delay_ms = delay_ms
        self._handlers: Dict[int, DeliveryHandler] = {}
        self._queues: Dict[int, "asyncio.Queue[Tuple[int, Any]]"] = {}
        self._tasks: List["asyncio.Task"] = []
        self._started = False
        #: Monotonic wall-clock source (repro.obs.clock).
        self.clock = WallClock()
        self._failed: set = set()
        self._failure_handlers: List[FailureHandler] = []
        self._in_flight = 0
        #: Shared with sessions built over this transport (Session reads
        #: ``transport.bus``); starts idle, zero cost until observed.
        self.bus = EventBus()
        #: Transport-level telemetry: per-destination queue-depth gauges
        #: plus message counters, uniform with TcpTransport's registry.
        self.metrics = MetricsRegistry(site=-1)
        self._msg_seq = 0

    def register(self, site: int, handler: DeliveryHandler) -> None:
        self._handlers[site] = handler
        self._queues.setdefault(site, asyncio.Queue())

    def add_failure_listener(self, handler: FailureHandler) -> None:
        self._failure_handlers.append(handler)

    def now(self) -> float:
        return self.clock.now_ms()

    async def start(self) -> None:
        """Spawn the per-site consumer tasks; call once inside a running loop."""
        if self._started:
            return
        self._started = True
        for site, queue in self._queues.items():
            self._tasks.append(asyncio.create_task(self._consume(site, queue)))

    async def _consume(self, site: int, queue: "asyncio.Queue[Tuple[int, Any]]") -> None:
        while True:
            src, payload, msg_id = await queue.get()
            self._in_flight += 1
            try:
                if self.delay_ms > 0:
                    await asyncio.sleep(self.delay_ms / 1000.0)
                if site in self._failed or src in self._failed:
                    continue
                self.metrics.inc("transport.messages_delivered")
                self.metrics.gauge(f"transport.peer.{site}.queue_depth", queue.qsize())
                if msg_id is not None and self.bus.active:
                    self.bus.emit_event(
                        "message_delivered",
                        site,
                        self.clock.now_ms(),
                        getattr(payload, "txn_vt", None),
                        {
                            "src": src,
                            "msg_type": type(payload).__name__,
                            "msg_id": msg_id,
                        },
                    )
                self._handlers[site](src, payload)
            finally:
                self._in_flight -= 1

    def send(self, src: int, dst: int, payload: Any) -> None:
        if dst not in self._queues:
            raise TransportError(f"destination site {dst} is not registered")
        if src in self._failed or dst in self._failed:
            return
        msg_id = None
        if self.bus.active:
            self._msg_seq += 1
            msg_id = f"{src}:{self._msg_seq}"
            self.bus.emit_event(
                "message_sent",
                src,
                self.clock.now_ms(),
                getattr(payload, "txn_vt", None),
                {
                    "dst": dst,
                    "msg_type": type(payload).__name__,
                    "msg_id": msg_id,
                },
            )
        self.metrics.inc("transport.messages_sent")
        self.metrics.gauge(f"transport.peer.{dst}.queue_depth", self._queues[dst].qsize() + 1)
        self._queues[dst].put_nowait((src, payload, msg_id))

    # ``quiesce``/``aquiesce``/``pending`` below implement the Transport
    # drain contract for an event-loop fabric.

    def pending(self) -> int:
        return self._in_flight + sum(q.qsize() for q in self._queues.values())

    def is_failed(self, site: int) -> bool:
        return site in self._failed

    def quiesce(self, max_events: Optional[int] = None) -> int:
        """Event-loop transports cannot drain synchronously."""
        raise TransportError(
            "AsyncioTransport delivers on the event loop; use `await aquiesce()` "
            "instead of the synchronous quiesce()"
        )

    async def aquiesce(self, settle_ms: float = 50.0) -> None:
        """Wait until all queues drain, deliveries finish, and a settle period passes."""

        def idle() -> bool:
            return self._in_flight == 0 and all(q.empty() for q in self._queues.values())

        while True:
            if idle():
                await asyncio.sleep(settle_ms / 1000.0)
                if idle():
                    return
            else:
                await asyncio.sleep(0.005)

    async def stop(self) -> None:
        """Cancel consumer tasks; the transport cannot be restarted."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()

    def defer(self, action, delay_ms: float = 0.0, site=None) -> None:
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            action()
            return
        if delay_ms > 0:
            loop.call_later(delay_ms / 1000.0, action)
        else:
            loop.call_soon(action)

    def fail_site(self, site: int) -> None:
        """Crash ``site`` fail-stop and notify listeners."""
        if site in self._failed:
            return
        self._failed.add(site)
        self.metrics.inc("transport.peers_failed")
        for handler in list(self._failure_handlers):
            handler(site)
