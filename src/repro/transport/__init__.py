"""Transport abstraction binding DECAF sites to a message fabric.

Three interchangeable implementations:

* :class:`~repro.transport.memory.MemoryTransport` — synchronous in-process
  queue with zero latency; used by unit tests that exercise protocol logic
  without timing.
* :class:`~repro.transport.simnet.SimTransport` — adapter over the
  discrete-event :class:`~repro.sim.network.Network`; used by integration
  tests and every benchmark.
* :class:`~repro.transport.asyncio_transport.AsyncioTransport` — wall-clock
  asyncio delivery with optional injected delay; used by the runnable
  examples to demonstrate live behaviour.
* :class:`~repro.transport.tcp.TcpTransport` — length-prefixed wire-codec
  frames over real asyncio TCP streams, with reconnect/backoff and
  fail-stop detection; lets sites in separate OS processes collaborate.
"""

from repro.transport.base import (
    TENANT_STRIDE,
    TenantTransport,
    Transport,
    pack_site,
    unpack_site,
)
from repro.transport.memory import MemoryTransport
from repro.transport.simnet import SimTransport
from repro.transport.asyncio_transport import AsyncioTransport
from repro.transport.tcp import TcpTransport

__all__ = [
    "Transport",
    "TenantTransport",
    "TENANT_STRIDE",
    "pack_site",
    "unpack_site",
    "MemoryTransport",
    "SimTransport",
    "AsyncioTransport",
    "TcpTransport",
]
