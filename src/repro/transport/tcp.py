"""A real TCP transport: DECAF sites in separate OS processes.

Each process runs one :class:`TcpTransport` hosting its *local* sites; all
other site ids in the address map are *remote*.  Frames are length-prefixed
wire-codec payloads (:func:`repro.wire.encode_frame`) on plain asyncio
streams — exactly the per-pair FIFO TCP channels the paper's DECAF
prototype assumed.

Topology and guarantees:

* One listening server per distinct local address; one outbound connection
  per remote site, owned by a sender task.  TCP ordering plus the single
  writer per destination preserves per-pair FIFO.
* **Frame coalescing**: each sender wakeup drains its whole queue (up to
  ``coalesce_max_bytes``) into a single buffered write, so a protocol
  turn's fan-out of small frames costs one syscall instead of one per
  frame.  Frames stay whole and in order; coalescing only batches them.
* **Reconnect with backoff**: a broken or unreachable peer connection is
  retried with exponential backoff (``reconnect_base_ms`` doubling up to
  ``reconnect_max_ms``).  The frame being sent is not lost — the sender
  holds it until a write succeeds.
* **Fail-stop detection**: once a peer has been continuously unreachable
  for ``fail_after_ms``, it is declared failed, registered failure
  listeners fire (feeding the protocol's failure manager), its queued
  frames are dropped, and nothing is ever sent to it again.
* Delivery is decode-then-dispatch: payloads cross the boundary as codec
  bytes, never as live objects, so this transport only carries what the
  wire format can express.

Synchronous :meth:`quiesce` raises — use ``await aquiesce()``; like the
in-process :class:`~repro.transport.asyncio_transport.AsyncioTransport`,
this transport lives on an event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import TransportError, WireError
from repro.transport.base import DeliveryHandler, FailureHandler, Transport
from repro.wire.codec import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    decode_frame_body,
    encode_frame,
)


def maybe_install_uvloop() -> bool:
    """Install the uvloop event-loop policy when the package is available.

    uvloop is an optional accelerator, never a dependency: this returns
    False (and changes nothing) when it is not importable.  Call before
    ``asyncio.run`` — an already-running loop is not replaced.
    """
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


class _PeerLink:
    """Outbound state for one remote site: frame queue + sender task."""

    __slots__ = ("frames", "wakeup", "writer", "task", "writing", "unreachable")

    def __init__(self) -> None:
        self.frames: Deque[bytes] = deque()
        self.wakeup = asyncio.Event()
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task: Optional["asyncio.Task"] = None
        #: Number of frames popped into the in-flight coalesced write.
        self.writing = 0
        #: True after a failed dial, False again once connected; stop's
        #: flush phase does not wait for peers known to be down.
        self.unreachable = False


class TcpTransport(Transport):
    """Length-prefixed codec frames over asyncio TCP streams."""

    def __init__(
        self,
        site_addrs: Dict[int, Tuple[str, int]],
        local_sites: Iterable[int],
        reconnect_base_ms: float = 25.0,
        reconnect_max_ms: float = 1000.0,
        fail_after_ms: float = 10_000.0,
        coalesce_max_bytes: int = 64 * 1024,
    ) -> None:
        self.site_addrs = dict(site_addrs)
        self.local_sites: Set[int] = set(local_sites)
        for site in self.local_sites:
            if site not in self.site_addrs:
                raise TransportError(f"local site {site} has no address")
        self.reconnect_base_ms = reconnect_base_ms
        self.reconnect_max_ms = reconnect_max_ms
        self.fail_after_ms = fail_after_ms
        #: High-water mark for one coalesced write: a sender wakeup batches
        #: queued frames until the buffered write would exceed this.
        self.coalesce_max_bytes = coalesce_max_bytes
        self._handlers: Dict[int, DeliveryHandler] = {}
        self._failure_handlers: List[FailureHandler] = []
        self._failed: Set[int] = set()
        self._links: Dict[int, _PeerLink] = {}
        self._servers: List["asyncio.base_events.Server"] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._start_time = time.monotonic()
        self._local_pending = 0
        self._dispatching = 0
        self._stopped = False
        self._closing = False
        #: Frames successfully written to / read from peer sockets.
        self.frames_sent = 0
        self.frames_received = 0
        #: Socket writes issued, and frames that shared a write with an
        #: earlier frame (``frames_sent - writes``, kept as its own counter
        #: so tests and benchmarks can read the coalescing rate directly).
        self.writes = 0
        self.frames_coalesced = 0

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------

    def register(self, site: int, handler: DeliveryHandler) -> None:
        if site not in self.local_sites:
            raise TransportError(
                f"site {site} is not local to this process (local: {sorted(self.local_sites)})"
            )
        self._handlers[site] = handler

    def add_failure_listener(self, handler: FailureHandler) -> None:
        self._failure_handlers.append(handler)

    def now(self) -> float:
        return (time.monotonic() - self._start_time) * 1000.0

    def is_failed(self, site: int) -> bool:
        return site in self._failed

    def send(self, src: int, dst: int, payload: Any) -> None:
        if self._stopped or self._closing or src in self._failed or dst in self._failed:
            return
        if dst in self.local_sites:
            # Local loopback still crosses the codec so every payload is
            # provably wire-expressible regardless of site placement.
            frame = encode_frame(src, dst, payload)
            self._local_pending += 1
            self._require_loop().call_soon(self._deliver_local, frame)
            return
        if dst not in self.site_addrs:
            raise TransportError(f"destination site {dst} has no address")
        frame = encode_frame(src, dst, payload)
        link = self._links.get(dst)
        if link is None:
            link = _PeerLink()
            self._links[dst] = link
            link.task = self._require_loop().create_task(self._run_peer(dst, link))
        link.frames.append(frame)
        link.wakeup.set()

    def defer(self, action, delay_ms: float = 0.0, site=None) -> None:
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            action()
            return
        if delay_ms > 0:
            loop.call_later(delay_ms / 1000.0, action)
        else:
            loop.call_soon(action)

    def pending(self) -> int:
        return (
            self._local_pending
            + self._dispatching
            + sum(len(link.frames) + link.writing for link in self._links.values())
        )

    def quiesce(self, max_events: Optional[int] = None) -> int:
        """Event-loop transports cannot drain synchronously."""
        raise TransportError(
            "TcpTransport delivers on the event loop; use `await aquiesce()` "
            "instead of the synchronous quiesce()"
        )

    async def aquiesce(self, settle_ms: float = 50.0) -> None:
        """Wait until local delivery and outbound writes drain, then settle.

        Only covers *this* process: a peer may still be processing frames we
        already wrote.  Cross-process convergence needs an application-level
        check (compare state digests), which the two-process example does.
        """

        def idle() -> bool:
            return self.pending() == 0

        while True:
            if idle():
                await asyncio.sleep(settle_ms / 1000.0)
                if idle():
                    return
            else:
                await asyncio.sleep(0.005)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind listening servers for the local sites; call inside the loop."""
        if self._loop is not None:
            return
        self._loop = asyncio.get_running_loop()
        bound: Set[Tuple[str, int]] = set()
        for site in sorted(self.local_sites):
            addr = self.site_addrs[site]
            if addr in bound:
                continue
            bound.add(addr)
            self._servers.append(
                await asyncio.start_server(self._serve_connection, addr[0], addr[1])
            )

    async def stop(self, flush: bool = True, flush_timeout_s: float = 5.0) -> None:
        """Close servers, sender tasks, and peer connections.

        With ``flush`` (the default), frames already accepted by
        :meth:`send` are written out first: new sends are rejected, then
        the sender tasks get up to ``flush_timeout_s`` to drain their
        queues and in-flight coalesced writes to every *connected* peer.
        Frames queued for a peer that is down (reconnecting) are not
        waited for — they are dropped exactly as before.  ``flush=False``
        restores the old hard-stop behaviour.
        """
        self._closing = True
        if flush:
            loop = self._loop or asyncio.get_running_loop()
            deadline = loop.time() + flush_timeout_s

            def unflushed() -> bool:
                return any(
                    (link.frames or link.writing) and not link.unreachable
                    for dst, link in self._links.items()
                    if dst not in self._failed
                )

            while unflushed() and loop.time() < deadline:
                await asyncio.sleep(0.005)
        self._stopped = True
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for link in self._links.values():
            if link.task is not None:
                link.task.cancel()
        for link in self._links.values():
            if link.task is not None:
                try:
                    await link.task
                except asyncio.CancelledError:
                    pass
            if link.writer is not None:
                link.writer.close()
                link.writer = None
        self._links.clear()

    def fail_site(self, site: int) -> None:
        """Administratively declare ``site`` failed (tests / orchestration)."""
        self._declare_failed(site)

    # ------------------------------------------------------------------
    # Inbound path
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                header = await reader.readexactly(FRAME_HEADER_BYTES)
                length = int.from_bytes(header, "big")
                if length > MAX_FRAME_BYTES:
                    raise WireError(f"inbound frame of {length} bytes exceeds limit")
                body = await reader.readexactly(length)
                self.frames_received += 1
                src, dst, payload = decode_frame_body(body)
                self._dispatch(src, dst, payload)
        except asyncio.CancelledError:
            pass  # transport stopping / event loop shutting down
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            pass  # peer went away; its sender will reconnect if it returns
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    def _deliver_local(self, frame: bytes) -> None:
        self._local_pending -= 1
        # memoryview: the decoder cursors over the frame without copying it
        src, dst, payload = decode_frame_body(memoryview(frame)[FRAME_HEADER_BYTES:])
        self._dispatch(src, dst, payload)

    def _dispatch(self, src: int, dst: int, payload: Any) -> None:
        handler = self._handlers.get(dst)
        if handler is None or src in self._failed or dst in self._failed:
            return
        self._dispatching += 1
        try:
            handler(src, payload)
        finally:
            self._dispatching -= 1

    # ------------------------------------------------------------------
    # Outbound path
    # ------------------------------------------------------------------

    async def _run_peer(self, dst: int, link: _PeerLink) -> None:
        host, port = self.site_addrs[dst]
        frames = link.frames
        while not self._stopped and dst not in self._failed:
            if not frames:
                if self._closing:
                    return  # queue drained and no new sends can arrive
                link.wakeup.clear()
                await link.wakeup.wait()
                continue
            if link.writer is None and not await self._connect(dst, link, host, port):
                return  # peer declared failed
            # Coalesce: drain the queue into one buffered write, bounded by
            # the high-water mark so a burst cannot buffer without limit.
            batch = [frames.popleft()]
            size = len(batch[0])
            while frames and size < self.coalesce_max_bytes:
                frame = frames.popleft()
                batch.append(frame)
                size += len(frame)
            link.writing = len(batch)
            try:
                writer = link.writer
                assert writer is not None
                writer.write(b"".join(batch) if len(batch) > 1 else batch[0])
                await writer.drain()
            except (ConnectionError, OSError):
                # Requeue the whole batch in order; the next iteration
                # reconnects and resends (per-pair FIFO is preserved).
                frames.extendleft(reversed(batch))
                link.writing = 0
                self._close_writer(link)
                continue
            except asyncio.CancelledError:
                # Stopped mid-write: the bytes are already buffered on the
                # transport and close() flushes them, so count the batch
                # sent rather than silently dropping it from the books.
                link.writing = 0
                self.frames_sent += len(batch)
                raise
            link.writing = 0
            self.frames_sent += len(batch)
            self.writes += 1
            self.frames_coalesced += len(batch) - 1

    async def _connect(self, dst: int, link: _PeerLink, host: str, port: int) -> bool:
        """Dial ``dst`` with exponential backoff; False once declared failed."""
        backoff_ms = self.reconnect_base_ms
        down_since = time.monotonic()
        while not self._stopped:
            try:
                _, writer = await asyncio.open_connection(host, port)
                link.writer = writer
                link.unreachable = False
                return True
            except (ConnectionError, OSError):
                link.unreachable = True
                if (time.monotonic() - down_since) * 1000.0 >= self.fail_after_ms:
                    self._declare_failed(dst)
                    return False
                await asyncio.sleep(backoff_ms / 1000.0)
                backoff_ms = min(backoff_ms * 2, self.reconnect_max_ms)
        return False

    def _close_writer(self, link: _PeerLink) -> None:
        if link.writer is not None:
            link.writer.close()
            link.writer = None

    def _declare_failed(self, site: int) -> None:
        if site in self._failed:
            return
        self._failed.add(site)
        link = self._links.get(site)
        if link is not None:
            link.frames.clear()
            link.wakeup.set()  # let the sender loop observe the failure and exit
            self._close_writer(link)
        for handler in list(self._failure_handlers):
            handler(site)

    # ------------------------------------------------------------------

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is not None:
            return self._loop
        try:
            return asyncio.get_running_loop()
        except RuntimeError:
            raise TransportError(
                "TcpTransport.start() must run inside the event loop before sends"
            ) from None

    def __repr__(self) -> str:
        return (
            f"TcpTransport(local={sorted(self.local_sites)}, "
            f"peers={sorted(set(self.site_addrs) - self.local_sites)}, "
            f"pending={self.pending()})"
        )
