"""A real TCP transport: DECAF sites in separate OS processes.

Each process runs one :class:`TcpTransport` hosting its *local* sites; all
other site ids in the address map are *remote*.  Frames are length-prefixed
wire-codec payloads (:func:`repro.wire.encode_frame`) on plain asyncio
streams — exactly the per-pair FIFO TCP channels the paper's DECAF
prototype assumed.

Topology and guarantees:

* One listening server per distinct local address; one outbound connection
  per remote site, owned by a sender task.  TCP ordering plus the single
  writer per destination preserves per-pair FIFO.
* **Frame coalescing**: each sender wakeup drains its whole queue (up to
  ``coalesce_max_bytes``) into a single buffered write, so a protocol
  turn's fan-out of small frames costs one syscall instead of one per
  frame.  Frames stay whole and in order; coalescing only batches them.
* **Reconnect with backoff**: a broken or unreachable peer connection is
  retried with exponential backoff (``reconnect_base_ms`` doubling up to
  ``reconnect_max_ms``).  The frame being sent is not lost — the sender
  holds it until a write succeeds.
* **Fail-stop detection**: once a peer has been continuously unreachable
  for ``fail_after_ms``, it is declared failed, registered failure
  listeners fire (feeding the protocol's failure manager), its queued
  frames are dropped, and nothing is ever sent to it again.
* Delivery is decode-then-dispatch: payloads cross the boundary as codec
  bytes, never as live objects, so this transport only carries what the
  wire format can express.

Synchronous :meth:`quiesce` raises — use ``await aquiesce()``; like the
in-process :class:`~repro.transport.asyncio_transport.AsyncioTransport`,
this transport lives on an event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import TransportError, WireError
from repro.obs.clock import WallClock
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.sample import TraceSampler
from repro.transport.base import (
    DeliveryHandler,
    FailureHandler,
    Transport,
    pack_site,
    unpack_site,
)
from repro.wire.codec import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    TraceContext,
    decode_frame,
    encode_frame,
)

#: A TCP endpoint: (host, port).
Addr = Tuple[str, int]

#: A routing key: (tenant, site).  Tenant 0 is the classic unscoped
#: namespace used by single-collaboration processes.
SiteKey = Tuple[int, int]

#: Bucket bounds (wall-clock ms) for transport latency histograms: dial
#: RTTs and coalesced write flushes sit well under the simulator's
#: 5 ms-floor latency buckets, so these start at 50 µs.
RTT_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)


def _transport_counter(name: str) -> property:
    """A registry-backed int attribute on the transport itself.

    Like :func:`repro.obs.metrics.counter_property` but reading
    ``self.metrics`` directly — a transport is not a site.  Keeps the
    pre-registry attribute API (``transport.frames_sent``, ...) working
    while `repro metrics` and the Prometheus exporter see every counter
    uniformly.
    """

    def _get(self) -> int:
        return self.metrics.value(name)

    def _set(self, value: int) -> None:
        self.metrics.set_counter(name, value)

    return property(_get, _set, doc=f"Registry-backed counter {name!r}.")


def maybe_install_uvloop() -> bool:
    """Install the uvloop event-loop policy when the package is available.

    uvloop is an optional accelerator, never a dependency: this returns
    False (and changes nothing) when it is not importable.  Call before
    ``asyncio.run`` — an already-running loop is not replaced.
    """
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


class _PeerLink:
    """Outbound state for one remote *address*: frame queue + sender task.

    Keyed by TCP endpoint, not site id, since the multi-tenant rework:
    every site (of every tenant) placed at that address shares this one
    connection, which is what makes a thousand small collaborations cost
    one socket pair per process pair instead of one per site.  Queue
    entries carry their ``(tenant, site)`` destination key so a single
    failed site's frames can still be dropped selectively.
    """

    __slots__ = ("frames", "wakeup", "writer", "task", "writing", "unreachable",
                 "gauge_name", "ever_connected", "dead")

    def __init__(self, label: Any) -> None:
        self.frames: Deque[Tuple[SiteKey, bytes]] = deque()
        self.wakeup = asyncio.Event()
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task: Optional["asyncio.Task"] = None
        #: Number of frames popped into the in-flight coalesced write.
        self.writing = 0
        #: True after a failed dial, False again once connected; stop's
        #: flush phase does not wait for peers known to be down.
        self.unreachable = False
        #: Precomputed metrics name for this peer's queue-depth gauge.
        self.gauge_name = f"transport.peer.{label}.queue_depth"
        #: False until the first successful dial; distinguishes a reconnect
        #: from the initial lazy connection in events and counters.
        self.ever_connected = False
        #: Set when the address is declared failed; the sender task exits.
        self.dead = False


class TcpTransport(Transport):
    """Length-prefixed codec frames over asyncio TCP streams."""

    def __init__(
        self,
        site_addrs: Dict[int, Tuple[str, int]],
        local_sites: Iterable[int],
        reconnect_base_ms: float = 25.0,
        reconnect_max_ms: float = 1000.0,
        fail_after_ms: float = 10_000.0,
        coalesce_max_bytes: int = 64 * 1024,
        sampler: Optional[TraceSampler] = None,
        placement: Optional[Any] = None,
    ) -> None:
        self.site_addrs = dict(site_addrs)
        self.local_sites: Set[int] = set(local_sites)
        for site in self.local_sites:
            if site not in self.site_addrs:
                raise TransportError(f"local site {site} has no address")
        #: Optional tenant placement (duck-typed; see repro.host.Placement):
        #: ``addr_of(tenant, site)`` and ``sites_at(tenant, addr)``.  When
        #: absent, every tenant's site *i* is co-located with tenant-0 site
        #: *i* — the symmetric SessionHost topology.
        self.placement = placement
        #: Addresses this process listens on (loopback short-circuit).
        self._local_addrs: Set[Addr] = {self.site_addrs[s] for s in self.local_sites}
        self.reconnect_base_ms = reconnect_base_ms
        self.reconnect_max_ms = reconnect_max_ms
        self.fail_after_ms = fail_after_ms
        #: High-water mark for one coalesced write: a sender wakeup batches
        #: queued frames until the buffered write would exceed this.
        self.coalesce_max_bytes = coalesce_max_bytes
        self._handlers: Dict[SiteKey, DeliveryHandler] = {}
        self._failure_handlers: List[FailureHandler] = []
        #: Per-tenant failure listeners (tenant id > 0 → handlers that see
        #: tenant-local site ids).  Cross-tenant isolation: a notice for
        #: tenant A's site never reaches tenant B's listeners.
        self._scoped_failure_handlers: Dict[int, List[FailureHandler]] = {}
        self._failed: Set[SiteKey] = set()
        self._failed_addrs: Set[Addr] = set()
        self._links: Dict[Addr, _PeerLink] = {}
        self._servers: List["asyncio.base_events.Server"] = []
        #: Accepted (inbound) connections; closed on stop() so peers see
        #: the outage instead of writing into a stopped transport.
        self._inbound: Set[asyncio.StreamWriter] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Monotonic wall-clock source; ``now()`` readings and event
        #: timestamps come from here (repro.obs.clock).
        self.clock = WallClock()
        self._local_pending = 0
        self._dispatching = 0
        self._stopped = False
        self._closing = False
        #: The protocol event bus.  Sessions built over this transport
        #: share it (Session reads ``transport.bus``), so transport events
        #: (message_sent/message_delivered, peer transitions) land on the
        #: same timeline as the protocol lifecycle events.  Starts idle:
        #: with no recorder and no subscribers every emission guard is one
        #: attribute load and one branch.
        self.bus = EventBus()
        #: Transport-level metrics (site -1: not owned by any one site).
        self.metrics = MetricsRegistry(site=-1)
        self.metrics.histogram("transport.connect_rtt_ms", RTT_BUCKETS_MS)
        self.metrics.histogram("transport.write_flush_ms", RTT_BUCKETS_MS)
        #: Optional :class:`repro.obs.flight.FlightRecorder`; when set, a
        #: postmortem ring-buffer dump is written the moment a peer is
        #: declared failed.
        self.flight = None
        #: The site this process reports transport-level events under (the
        #: lowest local site id): per-process program order in a merged
        #: cross-process timeline must never interleave two processes.
        self._obs_site = min(self.local_sites)
        #: Per-process sequence for traced sends; with the origin site it
        #: forms the cross-process ``msg_id`` (``TraceContext.msg_id``).
        self._msg_seq = 0
        #: Optional head-based trace sampler (repro.obs.sample).  None
        #: keeps the pre-sampling behavior: every traced frame is
        #: recorded.  With a sampler, the *origin* transport decides per
        #: trace id; the decision rides the frame's TraceContext so every
        #: receiving process records or skips the same transaction.
        self.sampler = sampler

    #: Frames successfully written to / read from peer sockets, socket
    #: writes issued, and frames that shared a write with an earlier frame
    #: (``frames_sent - writes``).  Registry-backed since the telemetry
    #: rework (`repro metrics` and the Prometheus exporter enumerate them);
    #: the attribute API is unchanged.
    frames_sent = _transport_counter("transport.frames_sent")
    frames_received = _transport_counter("transport.frames_received")
    writes = _transport_counter("transport.writes")
    frames_coalesced = _transport_counter("transport.frames_coalesced")
    #: Reconnect/backoff telemetry (also registry-backed).
    dial_attempts = _transport_counter("transport.dial_attempts")
    dial_failures = _transport_counter("transport.dial_failures")
    reconnects = _transport_counter("transport.reconnects")
    peer_unreachable_transitions = _transport_counter("transport.peer_unreachable")
    peers_failed = _transport_counter("transport.peers_failed")
    #: Trace-sampling tallies: sends whose trace the local sampler head-
    #: dropped, and deliveries skipped because the *origin's* in-band
    #: decision was drop (the only per-frame cost of a sampled-out trace).
    sends_sampled_out = _transport_counter("transport.sends_sampled_out")
    deliveries_sampled_out = _transport_counter("transport.deliveries_sampled_out")
    #: Inbound frames whose (tenant, site) destination has no registered
    #: handler — e.g. delivered after tenant eviction.  Dropped, never
    #: raised: eviction must not crash the shared connection.
    frames_dropped_unrouted = _transport_counter("transport.frames_dropped_unrouted")

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------

    def register(self, site: int, handler: DeliveryHandler) -> None:
        if site not in self.local_sites:
            raise TransportError(
                f"site {site} is not local to this process (local: {sorted(self.local_sites)})"
            )
        self._handlers[(0, site)] = handler

    def register_scoped(self, tenant: int, site: int, handler: DeliveryHandler) -> None:
        if tenant == 0:
            self.register(site, handler)
            return
        addr = self._addr_for(tenant, site)
        if addr not in self._local_addrs:
            raise TransportError(
                f"site {site} of tenant {tenant} is not local to this process"
            )
        # Frames carry tenant-local src ids, so the handler needs no
        # unpacking wrapper (unlike the packed-namespace default).
        self._handlers[(tenant, site)] = handler

    def unregister(self, site: int) -> None:
        self._handlers.pop((0, site), None)

    def unregister_scoped(self, tenant: int, site: int) -> None:
        self._handlers.pop((tenant, site), None)

    def add_failure_listener(self, handler: FailureHandler) -> None:
        self._failure_handlers.append(handler)

    def add_failure_listener_scoped(
        self, tenant: int, handler: FailureHandler
    ) -> FailureHandler:
        if tenant == 0:
            self._failure_handlers.append(handler)
        else:
            self._scoped_failure_handlers.setdefault(tenant, []).append(handler)
        return handler

    def remove_failure_listener(self, handler: FailureHandler) -> None:
        try:
            self._failure_handlers.remove(handler)
            return
        except ValueError:
            pass
        for listeners in self._scoped_failure_handlers.values():
            try:
                listeners.remove(handler)
                return
            except ValueError:
                continue

    def now(self) -> float:
        return self.clock.now_ms()

    def is_failed(self, site: int) -> bool:
        return self.is_failed_scoped(0, site)

    def is_failed_scoped(self, tenant: int, site: int) -> bool:
        if (tenant, site) in self._failed:
            return True
        if not self._failed_addrs:
            return False
        return self._addr_for(tenant, site) in self._failed_addrs

    def _addr_for(self, tenant: int, site: int) -> Optional[Addr]:
        """Resolve a (tenant, site) routing key to its TCP endpoint.

        Tenant-scoped keys consult the placement first; without one (or
        when it abstains) each tenant's site *i* shares tenant-0 site
        *i*'s process — the symmetric SessionHost layout.
        """
        if tenant != 0 and self.placement is not None:
            addr = self.placement.addr_of(tenant, site)
            if addr is not None:
                return addr
        return self.site_addrs.get(site)

    def _sites_at(self, tenant: int, addr: Addr) -> List[int]:
        """Every site of ``tenant`` placed at ``addr`` (failure fan-out)."""
        if tenant != 0 and self.placement is not None:
            return sorted(self.placement.sites_at(tenant, addr))
        return sorted(s for s, a in self.site_addrs.items() if a == addr)

    def _peer_label(self, addr: Addr) -> Any:
        """Human-facing identity of a peer address for events and gauges.

        The classic one-site-per-address topology keeps its site-id labels
        (``transport.peer.1.queue_depth``); shared addresses fall back to
        ``host:port``.
        """
        sites = [s for s, a in self.site_addrs.items() if a == addr]
        if len(sites) == 1:
            return sites[0]
        return f"{addr[0]}:{addr[1]}"

    def _trace_for(self, src: int, dst: int, payload: Any) -> Optional[TraceContext]:
        """Build the frame trace header and emit ``message_sent``.

        Only called when the bus is active: untraced processes write
        byte-identical v1 frames and pay nothing.
        """
        self._msg_seq += 1
        seq = self._msg_seq
        txn_vt = getattr(payload, "txn_vt", None)
        # __dict__ construction skips the frozen-dataclass setattr walk;
        # this header is built per frame on the send hot path.  The trace
        # id is the bare "counter@site" of the transaction VT (shorter to
        # build and to wire-encode than the VT repr), "" for control
        # messages with no transaction.
        trace_id = f"{txn_vt.counter}@{txn_vt.site}" if txn_vt is not None else ""
        trace = object.__new__(TraceContext)
        fields = trace.__dict__
        fields["origin"] = src
        fields["trace_id"] = trace_id
        fields["parent_span"] = seq
        sampler = self.sampler
        if sampler is not None and not sampler.sample(trace_id):
            # Head-dropped at the origin: the decision still rides the
            # frame so downstream processes skip their deliveries too.
            # No event is built (the bounded-cost contract bench_obs
            # gates) unless record_dropped marks the send for debugging.
            fields["sampled"] = False
            self.metrics.inc("transport.sends_sampled_out")
            if sampler.record_dropped:
                self.bus.emit_event(
                    "message_sent",
                    src,
                    self.clock.now_ms(),
                    txn_vt,
                    {
                        "dst": dst,
                        "msg_type": type(payload).__name__,
                        "msg_id": f"{src}:{seq}",
                        "sampled": False,
                    },
                )
            return trace
        fields["sampled"] = True
        # No "payload" ref in the data dict (unlike the simulator's sender):
        # nothing subscribes for payloads on the real-socket path, exports
        # skip the key anyway, and retaining every message would pin the
        # payload objects in memory for the life of the recording.
        self.bus.emit_event(
            "message_sent",
            src,
            self.clock.now_ms(),
            txn_vt,
            {
                "dst": dst,
                "msg_type": type(payload).__name__,
                "msg_id": f"{src}:{seq}",
            },
        )
        return trace

    def send(self, src: int, dst: int, payload: Any) -> None:
        self.send_scoped(0, src, dst, payload)

    def send_scoped(self, tenant: int, src: int, dst: int, payload: Any) -> None:
        if (
            self._stopped
            or self._closing
            or (tenant, src) in self._failed
            or (tenant, dst) in self._failed
        ):
            return
        addr = self._addr_for(tenant, dst)
        if addr is None:
            raise TransportError(f"destination site {dst} has no address")
        if addr in self._failed_addrs:
            return
        if self.bus.active:
            # Events and trace ids use packed site ids so a merged timeline
            # never conflates two tenants' site 0 (tenant 0 is unchanged).
            trace = self._trace_for(
                pack_site(tenant, src), pack_site(tenant, dst), payload
            )
        else:
            trace = None
        if (tenant == 0 and dst in self.local_sites) or (
            tenant != 0 and addr in self._local_addrs
        ):
            # Local loopback still crosses the codec so every payload is
            # provably wire-expressible regardless of site placement.
            frame = encode_frame(src, dst, payload, trace, tenant=tenant)
            self._local_pending += 1
            self._require_loop().call_soon(self._deliver_local, frame)
            return
        frame = encode_frame(src, dst, payload, trace, tenant=tenant)
        link = self._links.get(addr)
        if link is None:
            link = _PeerLink(self._peer_label(addr))
            self._links[addr] = link
            link.task = self._require_loop().create_task(self._run_peer(addr, link))
        link.frames.append(((tenant, dst), frame))
        link.wakeup.set()

    def defer(self, action, delay_ms: float = 0.0, site=None) -> None:
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            action()
            return
        if delay_ms > 0:
            loop.call_later(delay_ms / 1000.0, action)
        else:
            loop.call_soon(action)

    def pending(self) -> int:
        return (
            self._local_pending
            + self._dispatching
            + sum(len(link.frames) + link.writing for link in self._links.values())
        )

    def quiesce(self, max_events: Optional[int] = None) -> int:
        """Event-loop transports cannot drain synchronously."""
        raise TransportError(
            "TcpTransport delivers on the event loop; use `await aquiesce()` "
            "instead of the synchronous quiesce()"
        )

    async def aquiesce(self, settle_ms: float = 50.0) -> None:
        """Wait until local delivery and outbound writes drain, then settle.

        Only covers *this* process: a peer may still be processing frames we
        already wrote.  Cross-process convergence needs an application-level
        check (compare state digests), which the two-process example does.
        """

        def idle() -> bool:
            return self.pending() == 0

        while True:
            if idle():
                await asyncio.sleep(settle_ms / 1000.0)
                if idle():
                    return
            else:
                await asyncio.sleep(0.005)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind listening servers for the local sites; call inside the loop."""
        if self._loop is not None:
            return
        self._loop = asyncio.get_running_loop()
        bound: Set[Tuple[str, int]] = set()
        for site in sorted(self.local_sites):
            addr = self.site_addrs[site]
            if addr in bound:
                continue
            bound.add(addr)
            self._servers.append(
                await asyncio.start_server(self._serve_connection, addr[0], addr[1])
            )

    async def stop(self, flush: bool = True, flush_timeout_s: float = 5.0) -> None:
        """Close servers, sender tasks, and peer connections.

        With ``flush`` (the default), frames already accepted by
        :meth:`send` are written out first: new sends are rejected, then
        the sender tasks get up to ``flush_timeout_s`` to drain their
        queues and in-flight coalesced writes to every *connected* peer.
        Frames queued for a peer that is down (reconnecting) are not
        waited for — they are dropped exactly as before.  ``flush=False``
        restores the old hard-stop behaviour.
        """
        self._closing = True
        if flush:
            loop = self._loop or asyncio.get_running_loop()
            deadline = loop.time() + flush_timeout_s

            def unflushed() -> bool:
                return any(
                    (link.frames or link.writing)
                    and not link.unreachable
                    and not link.dead
                    for link in self._links.values()
                )

            while unflushed() and loop.time() < deadline:
                await asyncio.sleep(0.005)
        self._stopped = True
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        # server.close() only stops listening; sever accepted connections
        # too so still-running peers observe the outage promptly.
        for writer in list(self._inbound):
            with contextlib.suppress(Exception):
                writer.close()
        self._inbound.clear()
        for link in self._links.values():
            if link.task is not None:
                link.task.cancel()
        for link in self._links.values():
            if link.task is not None:
                try:
                    await link.task
                except asyncio.CancelledError:
                    pass
            if link.writer is not None:
                link.writer.close()
                link.writer = None
        self._links.clear()

    def fail_site(self, site: int) -> None:
        """Administratively declare ``site`` failed (tests / orchestration).

        Accepts either a classic flat site id or a packed ``(tenant,
        site)`` id (as produced by :func:`repro.transport.base.pack_site`,
        the form :class:`~repro.transport.base.TenantTransport` sends).
        """
        tenant, local = unpack_site(site)
        self._fail_pair(tenant, local)

    # ------------------------------------------------------------------
    # Inbound path
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._inbound.add(writer)
        try:
            while True:
                header = await reader.readexactly(FRAME_HEADER_BYTES)
                length = int.from_bytes(header, "big")
                if length > MAX_FRAME_BYTES:
                    raise WireError(f"inbound frame of {length} bytes exceeds limit")
                body = await reader.readexactly(length)
                self.metrics.inc("transport.frames_received")
                tenant, src, dst, payload, trace = decode_frame(body)
                self._dispatch(tenant, src, dst, payload, trace)
        except asyncio.CancelledError:
            pass  # transport stopping / event loop shutting down
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            pass  # peer went away; its sender will reconnect if it returns
        finally:
            self._inbound.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    def _deliver_local(self, frame: bytes) -> None:
        self._local_pending -= 1
        # memoryview: the decoder cursors over the frame without copying it
        tenant, src, dst, payload, trace = decode_frame(
            memoryview(frame)[FRAME_HEADER_BYTES:]
        )
        self._dispatch(tenant, src, dst, payload, trace)

    def _dispatch(
        self,
        tenant: int,
        src: int,
        dst: int,
        payload: Any,
        trace: Optional[TraceContext] = None,
    ) -> None:
        handler = self._handlers.get((tenant, dst))
        if handler is None:
            # Evicted (or never-hosted) destination: the shared connection
            # must survive stray frames, so drop and count.
            self.metrics.inc("transport.frames_dropped_unrouted")
            return
        if (tenant, src) in self._failed or (tenant, dst) in self._failed:
            return
        if trace is not None and self.bus.active and not trace.sampled:
            # The origin head-dropped this trace: honor its in-band
            # decision so a sampled run records complete span trees for
            # exactly the sampled transactions, nothing partial.
            self.metrics.inc("transport.deliveries_sampled_out")
        elif trace is not None and self.bus.active:
            # Pairs with the sender process's message_sent via the trace
            # header's msg_id — the cross-process happens-before edge the
            # merged timeline (repro.obs.merge) reconstructs.
            self.bus.emit_event(
                "message_delivered",
                pack_site(tenant, dst),
                self.clock.now_ms(),
                getattr(payload, "txn_vt", None),
                {
                    "src": src,
                    "msg_type": type(payload).__name__,
                    # inline trace.msg_id: no property hop on the hot path
                    "msg_id": f"{trace.origin}:{trace.parent_span}",
                },
            )
        self._dispatching += 1
        try:
            handler(src, payload)
        finally:
            self._dispatching -= 1

    # ------------------------------------------------------------------
    # Outbound path
    # ------------------------------------------------------------------

    async def _run_peer(self, addr: Addr, link: _PeerLink) -> None:
        host, port = addr
        frames = link.frames
        while not self._stopped and not link.dead:
            if not frames:
                if self._closing:
                    return  # queue drained and no new sends can arrive
                link.wakeup.clear()
                await link.wakeup.wait()
                continue
            if link.writer is None and not await self._connect(addr, link, host, port):
                return  # peer declared failed
            # Coalesce: drain the queue into one buffered write, bounded by
            # the high-water mark so a burst cannot buffer without limit.
            # Frames whose destination site failed after queuing are
            # skipped (the shared link still serves the address's other
            # sites and tenants).
            batch: List[Tuple[SiteKey, bytes]] = []
            size = 0
            while frames and size < self.coalesce_max_bytes:
                key, frame = frames.popleft()
                if key in self._failed:
                    continue
                batch.append((key, frame))
                size += len(frame)
            if not batch:
                continue
            link.writing = len(batch)
            metrics = self.metrics
            metrics.gauge(link.gauge_name, len(frames))
            try:
                writer = link.writer
                assert writer is not None
                flush_start = time.monotonic()
                if len(batch) > 1:
                    writer.write(b"".join(frame for _key, frame in batch))
                else:
                    writer.write(batch[0][1])
                await writer.drain()
            except (ConnectionError, OSError):
                # Requeue the whole batch in order; the next iteration
                # reconnects and resends (per-pair FIFO is preserved).
                frames.extendleft(reversed(batch))
                link.writing = 0
                self._close_writer(link)
                continue
            except asyncio.CancelledError:
                # Stopped mid-write: the bytes are already buffered on the
                # transport and close() flushes them, so count the batch
                # sent rather than silently dropping it from the books.
                link.writing = 0
                metrics.inc("transport.frames_sent", len(batch))
                raise
            link.writing = 0
            metrics.inc("transport.frames_sent", len(batch))
            metrics.inc("transport.writes")
            metrics.inc("transport.frames_coalesced", len(batch) - 1)
            metrics.observe(
                "transport.write_flush_ms",
                (time.monotonic() - flush_start) * 1000.0,
                RTT_BUCKETS_MS,
            )

    async def _connect(self, addr: Addr, link: _PeerLink, host: str, port: int) -> bool:
        """Dial ``addr`` with exponential backoff; False once declared failed.

        Telemetry here is **edge-triggered**: the backoff loop retries many
        times per outage, but ``peer_unreachable`` fires only on the
        reachable→unreachable transition and ``peer_connected`` only when a
        dial actually succeeds — exactly one event per transition, never
        one per retry.
        """
        backoff_ms = self.reconnect_base_ms
        down_since = time.monotonic()
        while not self._stopped:
            try:
                self.metrics.inc("transport.dial_attempts")
                dial_start = time.monotonic()
                _, writer = await asyncio.open_connection(host, port)
            except (ConnectionError, OSError):
                self.metrics.inc("transport.dial_failures")
                if not link.unreachable:
                    link.unreachable = True
                    self.metrics.inc("transport.peer_unreachable")
                    if self.bus.active:
                        self.bus.emit(
                            "peer_unreachable",
                            site=self._obs_site,
                            time_ms=self.now(),
                            peer=self._peer_label(addr),
                        )
                if (time.monotonic() - down_since) * 1000.0 >= self.fail_after_ms:
                    self._fail_addr(addr)
                    return False
                await asyncio.sleep(backoff_ms / 1000.0)
                backoff_ms = min(backoff_ms * 2, self.reconnect_max_ms)
                continue
            link.writer = writer
            was_down = link.unreachable or link.ever_connected
            link.unreachable = False
            self.metrics.observe(
                "transport.connect_rtt_ms",
                (time.monotonic() - dial_start) * 1000.0,
                RTT_BUCKETS_MS,
            )
            if was_down:
                # A re-dial after an outage or a broken connection — the
                # initial lazy connect is not a "reconnect".
                self.metrics.inc("transport.reconnects")
            link.ever_connected = True
            if self.bus.active:
                self.bus.emit(
                    "peer_connected",
                    site=self._obs_site,
                    time_ms=self.now(),
                    peer=self._peer_label(addr),
                    reconnect=was_down,
                )
            return True
        return False

    def _close_writer(self, link: _PeerLink) -> None:
        if link.writer is not None:
            link.writer.close()
            link.writer = None

    def _fail_addr(self, addr: Addr) -> None:
        """Declare every site placed at ``addr`` failed (fail-stop detection).

        The whole process behind the address is gone, so the notice fans
        out per tenant: tenant-0 listeners get the classic flat site ids;
        each tenant with scoped listeners gets its own local site ids and
        nothing else.
        """
        if addr in self._failed_addrs:
            return
        self._failed_addrs.add(addr)
        link = self._links.get(addr)
        if link is not None:
            link.dead = True
            link.frames.clear()
            link.wakeup.set()  # let the sender loop observe the failure and exit
            self._close_writer(link)
        for site in self._sites_at(0, addr):
            self._fail_pair(0, site)
        for tenant in sorted(self._scoped_failure_handlers):
            if tenant == 0:
                continue
            for site in self._sites_at(tenant, addr):
                self._fail_pair(tenant, site)

    def _fail_pair(self, tenant: int, site: int) -> None:
        """Declare one (tenant, site) failed; notify that tenant only."""
        key = (tenant, site)
        if key in self._failed:
            return
        self._failed.add(key)
        self.metrics.inc("transport.peers_failed")
        addr = self._addr_for(tenant, site)
        link = self._links.get(addr) if addr is not None else None
        if link is not None and not link.dead and link.frames:
            # Drop only this destination's queued frames; the shared link
            # keeps serving the address's other sites and tenants.  Mutate
            # in place — the sender task holds a reference to the deque.
            kept = [entry for entry in link.frames if entry[0] != key]
            if len(kept) != len(link.frames):
                link.frames.clear()
                link.frames.extend(kept)
            link.wakeup.set()
        if tenant == 0:
            for handler in list(self._failure_handlers):
                handler(site)
        else:
            for handler in list(self._scoped_failure_handlers.get(tenant, ())):
                handler(site)
        if self.flight is not None:
            # Postmortem: the ring buffer of recent events, dumped the
            # moment fail-stop detection fires (repro.obs.flight).
            label = site if tenant == 0 else f"{tenant}:{site}"
            self.flight.dump(f"fail-stop: site {label} declared failed")

    # ------------------------------------------------------------------

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is not None:
            return self._loop
        try:
            return asyncio.get_running_loop()
        except RuntimeError:
            raise TransportError(
                "TcpTransport.start() must run inside the event loop before sends"
            ) from None

    def __repr__(self) -> str:
        return (
            f"TcpTransport(local={sorted(self.local_sites)}, "
            f"peers={sorted(set(self.site_addrs) - self.local_sites)}, "
            f"pending={self.pending()})"
        )
