"""The abstract transport interface used by DECAF site runtimes.

Two layers of addressing live here:

* The classic flat namespace — every site is one integer, one Session per
  process.  All pre-tenant code keeps working unchanged through it.
* Tenant-scoped addressing for multi-tenant hosting (:mod:`repro.host`):
  a *(tenant, site)* pair names one replica of one collaboration set.
  The default implementation packs the pair into the flat namespace
  (``tenant * TENANT_STRIDE + site``), which makes every existing
  transport multi-tenant-capable without changes; transports with a real
  wire format (TCP) override the ``*_scoped`` hooks to carry the tenant
  id in the frame header instead (wire v3, docs/WIRE.md).

:class:`TenantTransport` is the bridge between the layers: a facade that
looks like an ordinary single-collaboration :class:`Transport` to a
``Session``/``SiteRuntime`` while routing everything through the scoped
hooks of a shared inner transport.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Set

from repro.errors import TransportError

DeliveryHandler = Callable[[int, Any], None]
FailureHandler = Callable[[int], None]

#: Width of one tenant's site-id range in the packed flat namespace.
#: ``pack_site(0, s) == s``, so tenant 0 is the classic unscoped namespace
#: and every pre-tenant site id is a valid tenant-0 address.
TENANT_STRIDE = 1 << 20


def pack_site(tenant: int, site: int) -> int:
    """Flatten a *(tenant, site)* pair into the packed site namespace."""
    if tenant == 0:
        return site
    if tenant < 0:
        raise TransportError(f"tenant id must be non-negative, got {tenant}")
    if not 0 <= site < TENANT_STRIDE:
        raise TransportError(
            f"tenant-scoped site id must be in [0, {TENANT_STRIDE}), got {site}"
        )
    return tenant * TENANT_STRIDE + site


def unpack_site(packed: int) -> tuple:
    """Split a packed site id back into its *(tenant, site)* pair."""
    if packed < TENANT_STRIDE:
        return (0, packed)
    return divmod(packed, TENANT_STRIDE)


class Transport(ABC):
    """Delivers opaque payloads between numbered sites.

    Implementations must deliver each payload exactly once to the
    registered handler of the destination site (unless the destination has
    failed), and should preserve FIFO order per ordered site pair.  The
    DECAF protocol tolerates cross-pair reordering (stragglers) but site
    runtimes assume per-pair FIFO, matching the TCP channels of the
    original Java prototype.
    """

    @abstractmethod
    def register(self, site: int, handler: DeliveryHandler) -> None:
        """Attach the delivery handler for ``site``."""

    @abstractmethod
    def send(self, src: int, dst: int, payload: Any) -> None:
        """Queue ``payload`` for delivery from ``src`` to ``dst``."""

    @abstractmethod
    def now(self) -> float:
        """Current transport time in milliseconds (simulated or wall-clock)."""

    @abstractmethod
    def pending(self) -> int:
        """Number of messages accepted but not yet delivered."""

    @abstractmethod
    def quiesce(self, max_events: Optional[int] = None) -> int:
        """Synchronously drive delivery until no messages remain in flight.

        Returns the number of deliveries performed.  ``max_events`` bounds
        the work for transports that process one event at a time (the
        simulator); queue transports may ignore it.  Event-loop transports
        cannot drain synchronously and must raise
        :class:`~repro.errors.TransportError` directing callers to
        ``await aquiesce()`` instead of silently doing nothing.
        """

    # -- capability protocol ---------------------------------------------

    def scheduler(self):
        """The deterministic scheduler behind this transport, or None.

        Replaces the old ``isinstance(transport, SimTransport)`` dispatch
        in :class:`~repro.core.session.Session`: callers that need
        virtual-time control (``run_for``, workload generators) ask the
        transport for the capability instead of sniffing its type.
        """
        return None

    def network(self):
        """The simulated :class:`~repro.sim.network.Network`, or None.

        Fault-injection helpers (drops, partitions, latency models) hang
        off the network; transports without a simulated fabric return
        None and callers must cope.
        """
        return None

    # -- membership ------------------------------------------------------

    def unregister(self, site: int) -> None:
        """Detach ``site``'s delivery handler; in-flight messages to it drop.

        Best-effort by default (transports without eviction support keep
        the handler).  Concrete transports override this so tenant
        eviction (:meth:`repro.host.SessionHost.evict`) actually releases
        routing state.
        """

    def is_failed(self, site: int) -> bool:
        """Whether ``site`` has been reported failed; default transport never fails."""
        return False

    def add_failure_listener(self, handler: FailureHandler) -> None:
        """Subscribe to fail-stop notifications; default transport never fails."""

    def remove_failure_listener(self, handler: FailureHandler) -> None:
        """Unsubscribe a failure listener; default transport has none."""

    def broadcast(self, src: int, dsts: List[int], payload: Any) -> None:
        """Send ``payload`` to each live destination independently.

        Destinations already reported failed are skipped: fail-stop sites
        never receive another message, so sending would at best be dropped
        by the fabric and at worst resurrect a dead queue.
        """
        for dst in dsts:
            if self.is_failed(dst):
                continue
            self.send(src, dst, payload)

    def defer(
        self, action: Callable[[], None], delay_ms: float = 0.0, site: Optional[int] = None
    ) -> None:
        """Run ``action`` asynchronously after ``delay_ms`` (transaction retries).

        ``site`` identifies the deferring site when known; the simulated
        transport uses it to present positive-delay defers as schedule
        choice points during exhaustive exploration (``repro mc``).  The
        default executes immediately (zero-latency transports have no
        meaningful delay); scheduler-backed transports queue it so retries
        never recurse on the current call stack.
        """
        action()

    # -- tenant-scoped addressing ----------------------------------------
    #
    # Defaults pack (tenant, site) into the flat namespace, so any
    # transport that implements the flat interface is multi-tenant-capable
    # for free.  Transports with a wire format override these to put the
    # tenant id in the frame header instead (TcpTransport).

    def register_scoped(self, tenant: int, site: int, handler: DeliveryHandler) -> None:
        """Attach the delivery handler for site ``site`` of ``tenant``.

        The handler sees *tenant-local* source ids: for packed transports
        the wrapper unpacks the flat source id before dispatch.
        """
        if tenant == 0:
            self.register(site, handler)
            return
        base = tenant * TENANT_STRIDE

        def unpacking(src: int, payload: Any) -> None:
            handler(src - base, payload)

        self.register(pack_site(tenant, site), unpacking)

    def unregister_scoped(self, tenant: int, site: int) -> None:
        """Detach the handler for site ``site`` of ``tenant``."""
        self.unregister(pack_site(tenant, site))

    def send_scoped(self, tenant: int, src: int, dst: int, payload: Any) -> None:
        """Queue ``payload`` from ``src`` to ``dst`` within ``tenant``."""
        self.send(pack_site(tenant, src), pack_site(tenant, dst), payload)

    def is_failed_scoped(self, tenant: int, site: int) -> bool:
        """Whether site ``site`` of ``tenant`` has been reported failed."""
        return self.is_failed(pack_site(tenant, site))

    def add_failure_listener_scoped(
        self, tenant: int, handler: FailureHandler
    ) -> FailureHandler:
        """Subscribe to fail-stop notices for ``tenant``'s sites only.

        The handler receives tenant-local site ids; notices for other
        tenants never reach it (cross-tenant failure isolation).  Returns
        the listener actually registered on the flat transport so callers
        can later pass it to :meth:`remove_failure_listener`.
        """
        if tenant == 0:
            self.add_failure_listener(handler)
            return handler
        lo = tenant * TENANT_STRIDE
        hi = lo + TENANT_STRIDE

        def scoped(packed: int) -> None:
            if lo <= packed < hi:
                handler(packed - lo)

        self.add_failure_listener(scoped)
        return scoped


class TenantTransport(Transport):
    """One tenant's view of a shared multi-tenant transport.

    Presents the classic single-collaboration :class:`Transport` interface
    — so :class:`~repro.core.session.Session` and
    :class:`~repro.core.site.SiteRuntime` run on it completely unchanged —
    while routing every operation through the tenant-scoped hooks of the
    shared ``inner`` transport.  This is the seam that breaks the old
    one-session-per-process assumption: a :class:`repro.host.SessionHost`
    hands each tenant Session its own facade over one shared transport
    (shared sockets, shared event loop, shared metrics registry).
    """

    def __init__(self, inner: Transport, tenant: int) -> None:
        if tenant <= 0:
            raise TransportError(
                f"tenant id must be a positive integer, got {tenant} "
                "(0 is the reserved unscoped namespace)"
            )
        self.inner = inner
        self.tenant = tenant
        self._registered: Set[int] = set()
        self._listeners: List[FailureHandler] = []

    # -- routing ---------------------------------------------------------

    def register(self, site: int, handler: DeliveryHandler) -> None:
        self.inner.register_scoped(self.tenant, site, handler)
        self._registered.add(site)

    def unregister(self, site: int) -> None:
        self.inner.unregister_scoped(self.tenant, site)
        self._registered.discard(site)

    def send(self, src: int, dst: int, payload: Any) -> None:
        self.inner.send_scoped(self.tenant, src, dst, payload)

    # -- time / draining -------------------------------------------------

    def now(self) -> float:
        return self.inner.now()

    def pending(self) -> int:
        # Shared fabric: pending counts traffic of *all* tenants.  That is
        # the conservative direction for settle()-style loops.
        return self.inner.pending()

    def quiesce(self, max_events: Optional[int] = None) -> int:
        return self.inner.quiesce(max_events)

    async def aquiesce(self, *args: Any, **kwargs: Any) -> int:
        fn = getattr(self.inner, "aquiesce", None)
        if fn is None:
            raise TransportError("inner transport has no async quiesce")
        return await fn(*args, **kwargs)

    def defer(
        self, action: Callable[[], None], delay_ms: float = 0.0, site: Optional[int] = None
    ) -> None:
        packed = None if site is None else pack_site(self.tenant, site)
        self.inner.defer(action, delay_ms, site=packed)

    # -- failure plane ---------------------------------------------------

    def is_failed(self, site: int) -> bool:
        return self.inner.is_failed_scoped(self.tenant, site)

    def add_failure_listener(self, handler: FailureHandler) -> None:
        self._listeners.append(self.inner.add_failure_listener_scoped(self.tenant, handler))

    def fail_site(self, site: int, **kwargs: Any) -> None:
        """Inject a fail-stop for one of this tenant's sites (tests)."""
        fail = getattr(self.inner, "fail_site", None)
        if fail is None:
            raise TransportError("inner transport does not support fail_site")
        fail(pack_site(self.tenant, site), **kwargs)

    # -- capabilities / shared services ----------------------------------

    def scheduler(self):
        return self.inner.scheduler()

    def network(self):
        return self.inner.network()

    @property
    def bus(self):
        """The shared host-wide event bus (one EventBus across tenants)."""
        return getattr(self.inner, "bus", None)

    @property
    def metrics(self):
        """The shared transport-level (site −1) metrics registry, if any."""
        return getattr(self.inner, "metrics", None)

    # -- lifecycle -------------------------------------------------------

    def detach(self) -> None:
        """Tear down every registration this facade made (tenant eviction).

        After detach, frames still in flight to this tenant are dropped by
        the inner transport (counted, not raised) and failure notices no
        longer reach the evicted session.
        """
        for site in sorted(self._registered):
            self.inner.unregister_scoped(self.tenant, site)
        self._registered.clear()
        for listener in self._listeners:
            self.inner.remove_failure_listener(listener)
        self._listeners.clear()

    def __repr__(self) -> str:
        return f"TenantTransport(tenant={self.tenant}, inner={self.inner!r})"
