"""The abstract transport interface used by DECAF site runtimes."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional

DeliveryHandler = Callable[[int, Any], None]
FailureHandler = Callable[[int], None]


class Transport(ABC):
    """Delivers opaque payloads between numbered sites.

    Implementations must deliver each payload exactly once to the
    registered handler of the destination site (unless the destination has
    failed), and should preserve FIFO order per ordered site pair.  The
    DECAF protocol tolerates cross-pair reordering (stragglers) but site
    runtimes assume per-pair FIFO, matching the TCP channels of the
    original Java prototype.
    """

    @abstractmethod
    def register(self, site: int, handler: DeliveryHandler) -> None:
        """Attach the delivery handler for ``site``."""

    @abstractmethod
    def send(self, src: int, dst: int, payload: Any) -> None:
        """Queue ``payload`` for delivery from ``src`` to ``dst``."""

    @abstractmethod
    def now(self) -> float:
        """Current transport time in milliseconds (simulated or wall-clock)."""

    @abstractmethod
    def pending(self) -> int:
        """Number of messages accepted but not yet delivered."""

    @abstractmethod
    def quiesce(self, max_events: Optional[int] = None) -> int:
        """Synchronously drive delivery until no messages remain in flight.

        Returns the number of deliveries performed.  ``max_events`` bounds
        the work for transports that process one event at a time (the
        simulator); queue transports may ignore it.  Event-loop transports
        cannot drain synchronously and must raise
        :class:`~repro.errors.TransportError` directing callers to
        ``await aquiesce()`` instead of silently doing nothing.
        """

    def is_failed(self, site: int) -> bool:
        """Whether ``site`` has been reported failed; default transport never fails."""
        return False

    def add_failure_listener(self, handler: FailureHandler) -> None:
        """Subscribe to fail-stop notifications; default transport never fails."""

    def broadcast(self, src: int, dsts: List[int], payload: Any) -> None:
        """Send ``payload`` to each live destination independently.

        Destinations already reported failed are skipped: fail-stop sites
        never receive another message, so sending would at best be dropped
        by the fabric and at worst resurrect a dead queue.
        """
        for dst in dsts:
            if self.is_failed(dst):
                continue
            self.send(src, dst, payload)

    def defer(
        self, action: Callable[[], None], delay_ms: float = 0.0, site: Optional[int] = None
    ) -> None:
        """Run ``action`` asynchronously after ``delay_ms`` (transaction retries).

        ``site`` identifies the deferring site when known; the simulated
        transport uses it to present positive-delay defers as schedule
        choice points during exhaustive exploration (``repro mc``).  The
        default executes immediately (zero-latency transports have no
        meaningful delay); scheduler-backed transports queue it so retries
        never recurse on the current call stack.
        """
        action()
