"""Write-free reservation intervals kept at primary copies.

When a primary copy confirms a *Read Latest* (RL) guess for a transaction
that read an object at VT ``t_read`` and runs at VT ``t_txn``, it reserves
the open interval ``(t_read, t_txn)`` as *write-free* (paper section 3.1).
A later transaction attempting to write at a VT strictly inside a reserved
interval fails its *No Conflict* (NC) guess: confirming that write would
retroactively invalidate the already confirmed read.

Intervals are open on both ends: the value read was written *at* ``t_read``
(so a write exactly at ``t_read`` is the read value itself), and the
reserving transaction itself acts *at* ``t_txn`` (VT uniqueness means no
other transaction shares that VT).

Implementation: live intervals are kept in an insertion-ordered dict keyed
by a monotone sequence number, alongside two indexes — a list sorted by the
interval's upper bound (``hi``) for bisect-pruned NC checks and prefix-drop
garbage collection, and a per-owner dict so releasing a transaction's
reservations on abort is O(k) in the number released.  Removals from the
``hi``-sorted list are lazy (tombstoned via absence from the live dict) and
the list is compacted once dead entries exceed half its length.  The naive
linear implementation is preserved verbatim in
:mod:`repro.bench.reference` as the equivalence/benchmark baseline.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.vtime.lamport import VirtualTime


@dataclass(frozen=True)
class Interval:
    """An open write-free interval ``(lo, hi)`` reserved by transaction ``owner``."""

    lo: VirtualTime
    hi: VirtualTime
    owner: VirtualTime

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"interval upper bound {self.hi} precedes lower bound {self.lo}")

    def contains_strictly(self, vt: VirtualTime) -> bool:
        """True if ``vt`` lies strictly inside the open interval."""
        return self.lo < vt < self.hi

    def is_empty(self) -> bool:
        """True for degenerate intervals (blind writes reserve nothing)."""
        return not self.lo < self.hi


#: Minimum number of tombstoned index slots before a compaction can trigger
#: (avoids rebuild churn on tiny sets).
_COMPACT_MIN_DEAD = 16


class IntervalSet:
    """The set of write-free reservations for one object at its primary copy.

    The structure supports the two primary-side checks of the concurrency
    control algorithm plus commit-driven pruning:

    * :meth:`blocking_reservation` — the NC guess check,
    * :meth:`reserve` — recording a confirmed RL guess,
    * :meth:`prune_before` — garbage collection once commits make old
      reservations unreachable by any future straggler.
    """

    __slots__ = ("_live", "_by_hi", "_by_owner", "_next_seq", "_dead")

    def __init__(self) -> None:
        # seq -> Interval, in insertion order (dicts preserve it).
        self._live: Dict[int, Interval] = {}
        # (hi.key, seq) sorted ascending; may contain tombstoned seqs.
        self._by_hi: List[Tuple[Tuple[int, int], int]] = []
        # owner -> seqs reserved by that owner (may contain tombstoned seqs).
        self._by_owner: Dict[VirtualTime, List[int]] = {}
        self._next_seq = 0
        # Count of tombstoned entries still present in _by_hi.
        self._dead = 0

    def __len__(self) -> int:
        return len(self._live)

    def __iter__(self) -> Iterator[Interval]:
        return iter(list(self._live.values()))

    def reserve(self, lo: VirtualTime, hi: VirtualTime, owner: VirtualTime) -> Interval:
        """Record the open interval ``(lo, hi)`` as write-free for ``owner``.

        Empty intervals (``lo >= hi``, e.g. blind writes where the read time
        equals the transaction time) are accepted but not stored, since they
        can never block anything.
        """
        interval = Interval(lo, hi, owner)
        if not interval.is_empty():
            seq = self._next_seq
            self._next_seq = seq + 1
            self._live[seq] = interval
            insort(self._by_hi, (hi.key, seq))
            self._by_owner.setdefault(owner, []).append(seq)
        return interval

    def blocking_reservation(
        self, vt: VirtualTime, exclude_owner: Optional[VirtualTime] = None
    ) -> Optional[Interval]:
        """Return a reservation by another transaction strictly containing ``vt``.

        This is the NC guess check: a write at ``vt`` conflicts if some other
        transaction has reserved a write-free region containing ``vt``.  The
        writer's own reservations (``exclude_owner``) never block it.
        Returns the earliest-reserved blocking interval, or ``None`` if the
        write is conflict-free.

        Only intervals with ``hi > vt`` can strictly contain ``vt``, and the
        index is sorted by ``hi``, so the scan starts at the bisect point
        past all reservations ending at or before ``vt`` — under commit-driven
        pruning the skipped prefix is most of the set.
        """
        start = bisect_right(self._by_hi, (vt.key, self._next_seq))
        live = self._live
        best_seq: Optional[int] = None
        for _, seq in self._by_hi[start:]:
            if best_seq is not None and seq >= best_seq:
                continue
            interval = live.get(seq)
            if interval is None:
                continue
            if interval.owner == exclude_owner:
                continue
            if interval.lo < vt:
                best_seq = seq
        if best_seq is None:
            return None
        return live[best_seq]

    def release_owner(self, owner: VirtualTime) -> int:
        """Drop all reservations held by ``owner`` (on abort); returns count dropped."""
        seqs = self._by_owner.pop(owner, None)
        if not seqs:
            return 0
        dropped = 0
        for seq in seqs:
            if self._live.pop(seq, None) is not None:
                dropped += 1
        self._dead += dropped
        self._maybe_compact()
        return dropped

    def prune_before(self, vt: VirtualTime) -> int:
        """Drop reservations with ``hi <= vt``; returns the count dropped.

        Once every site has applied a committed write at ``vt``, no future
        transaction can be assigned a VT below ``vt`` that would need to be
        checked against those reservations, so they are garbage.  A
        reservation ending exactly *at* ``vt`` is equally dead: only VTs
        strictly inside it could ever be blocked, and those precede ``vt``.
        """
        cut = bisect_right(self._by_hi, (vt.key, self._next_seq))
        if cut == 0:
            return 0
        dropped = 0
        for _, seq in self._by_hi[:cut]:
            if self._live.pop(seq, None) is not None:
                dropped += 1
            else:
                self._dead -= 1
        del self._by_hi[:cut]
        return dropped

    def _maybe_compact(self) -> None:
        """Rebuild the ``hi`` index once tombstones outnumber live entries."""
        if self._dead < _COMPACT_MIN_DEAD or self._dead <= len(self._by_hi) // 2:
            return
        self._by_hi = sorted(
            ((interval.hi.key, seq) for seq, interval in self._live.items())
        )
        self._dead = 0
        # Drop tombstoned seqs from the owner index while we are at it.
        live = self._live
        self._by_owner = {}
        for seq, interval in live.items():
            self._by_owner.setdefault(interval.owner, []).append(seq)

    def covering_intervals(self, vt: VirtualTime) -> List[Interval]:
        """All reservations strictly containing ``vt`` (diagnostics/tests)."""
        return [i for i in self._live.values() if i.contains_strictly(vt)]

    def owners(self) -> List[VirtualTime]:
        """The distinct reservation owners, in insertion order."""
        return list(dict.fromkeys(i.owner for i in self._live.values()))

    def __repr__(self) -> str:
        return f"IntervalSet({list(self._live.values())!r})"
