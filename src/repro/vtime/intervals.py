"""Write-free reservation intervals kept at primary copies.

When a primary copy confirms a *Read Latest* (RL) guess for a transaction
that read an object at VT ``t_read`` and runs at VT ``t_txn``, it reserves
the open interval ``(t_read, t_txn)`` as *write-free* (paper section 3.1).
A later transaction attempting to write at a VT strictly inside a reserved
interval fails its *No Conflict* (NC) guess: confirming that write would
retroactively invalidate the already confirmed read.

Intervals are open on both ends: the value read was written *at* ``t_read``
(so a write exactly at ``t_read`` is the read value itself), and the
reserving transaction itself acts *at* ``t_txn`` (VT uniqueness means no
other transaction shares that VT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.vtime.lamport import VirtualTime


@dataclass(frozen=True)
class Interval:
    """An open write-free interval ``(lo, hi)`` reserved by transaction ``owner``."""

    lo: VirtualTime
    hi: VirtualTime
    owner: VirtualTime

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"interval upper bound {self.hi} precedes lower bound {self.lo}")

    def contains_strictly(self, vt: VirtualTime) -> bool:
        """True if ``vt`` lies strictly inside the open interval."""
        return self.lo < vt < self.hi

    def is_empty(self) -> bool:
        """True for degenerate intervals (blind writes reserve nothing)."""
        return not self.lo < self.hi


class IntervalSet:
    """The set of write-free reservations for one object at its primary copy.

    The structure supports the two primary-side checks of the concurrency
    control algorithm plus commit-driven pruning:

    * :meth:`blocking_reservation` — the NC guess check,
    * :meth:`reserve` — recording a confirmed RL guess,
    * :meth:`prune_before` — garbage collection once commits make old
      reservations unreachable by any future straggler.
    """

    def __init__(self) -> None:
        self._intervals: List[Interval] = []

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def reserve(self, lo: VirtualTime, hi: VirtualTime, owner: VirtualTime) -> Interval:
        """Record the open interval ``(lo, hi)`` as write-free for ``owner``.

        Empty intervals (``lo >= hi``, e.g. blind writes where the read time
        equals the transaction time) are accepted but not stored, since they
        can never block anything.
        """
        interval = Interval(lo, hi, owner)
        if not interval.is_empty():
            self._intervals.append(interval)
        return interval

    def blocking_reservation(
        self, vt: VirtualTime, exclude_owner: Optional[VirtualTime] = None
    ) -> Optional[Interval]:
        """Return a reservation by another transaction strictly containing ``vt``.

        This is the NC guess check: a write at ``vt`` conflicts if some other
        transaction has reserved a write-free region containing ``vt``.  The
        writer's own reservations (``exclude_owner``) never block it.
        Returns the first blocking interval, or ``None`` if the write is
        conflict-free.
        """
        for interval in self._intervals:
            if interval.owner == exclude_owner:
                continue
            if interval.contains_strictly(vt):
                return interval
        return None

    def release_owner(self, owner: VirtualTime) -> int:
        """Drop all reservations held by ``owner`` (on abort); returns count dropped."""
        before = len(self._intervals)
        self._intervals = [i for i in self._intervals if i.owner != owner]
        return before - len(self._intervals)

    def prune_before(self, vt: VirtualTime) -> int:
        """Drop reservations wholly before ``vt``; returns the count dropped.

        Once every site has applied a committed write at ``vt``, no future
        transaction can be assigned a VT below ``vt`` that would need to be
        checked against those reservations, so they are garbage.
        """
        before = len(self._intervals)
        self._intervals = [i for i in self._intervals if not i.hi < vt and i.hi != vt]
        return before - len(self._intervals)

    def covering_intervals(self, vt: VirtualTime) -> List[Interval]:
        """All reservations strictly containing ``vt`` (diagnostics/tests)."""
        return [i for i in self._intervals if i.contains_strictly(vt)]

    def owners(self) -> List[VirtualTime]:
        """The distinct reservation owners, in insertion order."""
        seen: List[VirtualTime] = []
        for interval in self._intervals:
            if interval.owner not in seen:
                seen.append(interval.owner)
        return seen

    def __repr__(self) -> str:
        return f"IntervalSet({self._intervals!r})"
