"""Lamport virtual time with site identifiers.

Every transaction, snapshot, and graph update in DECAF is stamped with a
*virtual time* (VT).  The paper computes VTs "as a Lamport time, including a
site identifier to guarantee uniqueness" (section 3).  Two VTs from different
sites therefore never compare equal, and all VTs in the system are totally
ordered.
"""

from __future__ import annotations

from typing import Optional, Tuple


class VirtualTime:
    """A totally ordered ``(counter, site)`` Lamport timestamp.

    Ordering is lexicographic: the Lamport counter dominates and the site
    identifier breaks ties.  Instances are immutable and hashable so they
    can key history entries, reservation tables, and commit logs.

    VTs are the single most-compared object in the system — every history
    lookup, reservation check, and commit-log ordering goes through them —
    so the class is slotted and keeps a precomputed ``key`` tuple that all
    comparisons, hashing, and the bisect-backed indexes share.
    """

    __slots__ = ("counter", "site", "key", "_wire")

    counter: int
    site: int
    #: Precomputed ``(counter, site)`` — the sort key used by comparisons
    #: and by the bisect indexes in histories and interval sets.
    key: Tuple[int, int]
    #: Lazily cached canonical wire encoding (tag byte + two zigzag
    #: varints), written once by the codec via ``object.__setattr__`` the
    #: first time this VT is encoded.  Commit fan-out and dict/frozenset
    #: canonicalization re-encode the same timestamps many times; the cache
    #: makes every encode after the first a single list append.
    _wire: bytes

    def __init__(self, counter: int, site: int) -> None:
        object.__setattr__(self, "counter", counter)
        object.__setattr__(self, "site", site)
        object.__setattr__(self, "key", (counter, site))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"VirtualTime is immutable; cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"VirtualTime is immutable; cannot delete {name!r}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VirtualTime):
            return NotImplemented
        return self.key == other.key

    def __ne__(self, other: object) -> bool:
        if not isinstance(other, VirtualTime):
            return NotImplemented
        return self.key != other.key

    def __lt__(self, other: "VirtualTime") -> bool:
        if not isinstance(other, VirtualTime):
            return NotImplemented
        return self.key < other.key

    def __le__(self, other: "VirtualTime") -> bool:
        if not isinstance(other, VirtualTime):
            return NotImplemented
        return self.key <= other.key

    def __gt__(self, other: "VirtualTime") -> bool:
        if not isinstance(other, VirtualTime):
            return NotImplemented
        return self.key > other.key

    def __ge__(self, other: "VirtualTime") -> bool:
        if not isinstance(other, VirtualTime):
            return NotImplemented
        return self.key >= other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __reduce__(self):
        return (VirtualTime, (self.counter, self.site))

    def __repr__(self) -> str:
        return f"VT({self.counter}@{self.site})"

    def next_at(self, site: int) -> "VirtualTime":
        """Return the smallest VT at ``site`` strictly after this VT."""
        return VirtualTime(self.counter + 1, site)


#: The distinguished origin of virtual time.  Initial object values and
#: initial replication graphs are recorded at VT_ZERO, which precedes every
#: transaction-assigned VT (real sites use positive identifiers).
VT_ZERO = VirtualTime(0, -1)


class LamportClock:
    """A per-site Lamport clock producing unique :class:`VirtualTime` values.

    ``tick()`` stamps a local event; ``observe(vt)`` merges a timestamp seen
    on an incoming message so that causally later local events receive
    later VTs (Lamport's rule).
    """

    def __init__(self, site: int, start: int = 0) -> None:
        if site < 0:
            raise ValueError("site identifiers must be non-negative")
        self._site = site
        self._counter = start

    @property
    def site(self) -> int:
        """The site identifier embedded in every produced VT."""
        return self._site

    @property
    def counter(self) -> int:
        """The current Lamport counter (last issued or observed)."""
        return self._counter

    def tick(self) -> VirtualTime:
        """Advance the clock and return a fresh, unique VT for a local event."""
        self._counter += 1
        return VirtualTime(self._counter, self._site)

    def observe(self, vt: Optional[VirtualTime]) -> None:
        """Merge a VT carried by an incoming message (no-op for ``None``)."""
        if vt is not None and vt.counter > self._counter:
            self._counter = vt.counter

    def observe_counter(self, counter: int) -> None:
        """Merge a bare Lamport counter from an incoming message.

        Equivalent to ``observe(VirtualTime(counter, src))`` for any site —
        the merge only reads the counter — without allocating a throwaway
        :class:`VirtualTime`.  The message dispatch loop calls this once
        per incoming message.
        """
        if counter > self._counter:
            self._counter = counter

    def peek(self) -> VirtualTime:
        """Return the VT the next :meth:`tick` would produce, without ticking."""
        return VirtualTime(self._counter + 1, self._site)

    def __repr__(self) -> str:
        return f"LamportClock(site={self._site}, counter={self._counter})"
