"""Lamport virtual time with site identifiers.

Every transaction, snapshot, and graph update in DECAF is stamped with a
*virtual time* (VT).  The paper computes VTs "as a Lamport time, including a
site identifier to guarantee uniqueness" (section 3).  Two VTs from different
sites therefore never compare equal, and all VTs in the system are totally
ordered.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional


@functools.total_ordering
@dataclass(frozen=True)
class VirtualTime:
    """A totally ordered ``(counter, site)`` Lamport timestamp.

    Ordering is lexicographic: the Lamport counter dominates and the site
    identifier breaks ties.  Instances are immutable and hashable so they
    can key history entries, reservation tables, and commit logs.
    """

    counter: int
    site: int

    def __lt__(self, other: "VirtualTime") -> bool:
        if not isinstance(other, VirtualTime):
            return NotImplemented
        return (self.counter, self.site) < (other.counter, other.site)

    def __repr__(self) -> str:
        return f"VT({self.counter}@{self.site})"

    def next_at(self, site: int) -> "VirtualTime":
        """Return the smallest VT at ``site`` strictly after this VT."""
        return VirtualTime(self.counter + 1, site)


#: The distinguished origin of virtual time.  Initial object values and
#: initial replication graphs are recorded at VT_ZERO, which precedes every
#: transaction-assigned VT (real sites use positive identifiers).
VT_ZERO = VirtualTime(0, -1)


class LamportClock:
    """A per-site Lamport clock producing unique :class:`VirtualTime` values.

    ``tick()`` stamps a local event; ``observe(vt)`` merges a timestamp seen
    on an incoming message so that causally later local events receive
    later VTs (Lamport's rule).
    """

    def __init__(self, site: int, start: int = 0) -> None:
        if site < 0:
            raise ValueError("site identifiers must be non-negative")
        self._site = site
        self._counter = start

    @property
    def site(self) -> int:
        """The site identifier embedded in every produced VT."""
        return self._site

    @property
    def counter(self) -> int:
        """The current Lamport counter (last issued or observed)."""
        return self._counter

    def tick(self) -> VirtualTime:
        """Advance the clock and return a fresh, unique VT for a local event."""
        self._counter += 1
        return VirtualTime(self._counter, self._site)

    def observe(self, vt: Optional[VirtualTime]) -> None:
        """Merge a VT carried by an incoming message (no-op for ``None``)."""
        if vt is not None and vt.counter > self._counter:
            self._counter = vt.counter

    def peek(self) -> VirtualTime:
        """Return the VT the next :meth:`tick` would produce, without ticking."""
        return VirtualTime(self._counter + 1, self._site)

    def __repr__(self) -> str:
        return f"LamportClock(site={self._site}, counter={self._counter})"
