"""Virtual time: Lamport clocks with site tie-break, and interval sets.

The paper assigns every transaction a unique *virtual time* (VT) computed as
a Lamport time including a site identifier to guarantee uniqueness
(section 3).  This package provides:

* :class:`~repro.vtime.lamport.VirtualTime` — a totally ordered
  ``(counter, site)`` timestamp,
* :class:`~repro.vtime.lamport.LamportClock` — a per-site clock that ticks
  on local events and merges on message receipt,
* :class:`~repro.vtime.intervals.IntervalSet` — the write-free reservation
  structure kept at primary copies.
"""

from repro.vtime.lamport import VirtualTime, LamportClock, VT_ZERO
from repro.vtime.intervals import Interval, IntervalSet

__all__ = [
    "VirtualTime",
    "LamportClock",
    "VT_ZERO",
    "Interval",
    "IntervalSet",
]
