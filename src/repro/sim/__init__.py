"""Deterministic discrete-event simulation substrate.

The paper evaluates DECAF on a Java prototype with *artificially induced
network delays* (section 5.2.2).  This package is our substitute substrate:
a deterministic discrete-event kernel (:mod:`repro.sim.scheduler`) plus a
simulated point-to-point network (:mod:`repro.sim.network`) with
configurable latency models, FIFO channels, partitions, and fail-stop
failure injection with failure notification (the ISIS-style assumption of
paper section 3.4).

Simulated time is a ``float`` in milliseconds; all randomness flows through
a seeded RNG so every run is exactly reproducible.
"""

from repro.sim.scheduler import Scheduler, ScheduledEvent
from repro.sim.network import (
    Network,
    LatencyModel,
    FixedLatency,
    UniformLatency,
    NormalLatency,
    NetworkStats,
)

__all__ = [
    "Scheduler",
    "ScheduledEvent",
    "Network",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "NormalLatency",
    "NetworkStats",
]
