"""The discrete-event scheduler at the heart of the simulation substrate.

A :class:`Scheduler` maintains a priority queue of timestamped callbacks.
Ties in simulated time are broken by insertion order, which makes every run
fully deterministic: the same seed and the same call sequence always yield
the same execution.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(order=True)
class ScheduledEvent:
    """A pending callback in the event queue.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    insertion counter that makes simultaneous events fire in FIFO order.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap but is skipped)."""
        self.cancelled = True


class Scheduler:
    """A deterministic discrete-event loop over simulated milliseconds."""

    def __init__(self) -> None:
        self._queue: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def call_at(self, time: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current time {self._now}"
            )
        event = ScheduledEvent(time=time, seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def call_later(self, delay: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` after ``delay`` simulated milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.call_at(self._now + delay, action, label)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Execute the single earliest event.  Returns False if queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the queue drains or simulated time passes ``until``.

        Returns the final simulated time.  ``max_events`` bounds runaway
        simulations (a protocol livelock surfaces as an error rather than a
        hang).
        """
        if self._running:
            raise SimulationError("scheduler.run() is not reentrant")
        self._running = True
        try:
            executed = 0
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = head.time
                self._events_processed += 1
                head.action()
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; probable protocol livelock"
                    )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def run_until_quiescent(self, max_events: int = 10_000_000) -> float:
        """Drain every pending event; returns the final simulated time.

        The paper's optimistic-view liveness guarantee is phrased in terms of
        the system reaching a *quiescent* state; this is the simulation
        analogue.
        """
        return self.run(until=None, max_events=max_events)

    def advance_to(self, time: float) -> None:
        """Move the clock forward with no events (idle time)."""
        if time < self._now:
            raise SimulationError(f"cannot move clock backwards to {time}")
        self._now = time

    def __repr__(self) -> str:
        return f"Scheduler(now={self._now}, pending={self.pending()})"
