"""The discrete-event scheduler at the heart of the simulation substrate.

A :class:`Scheduler` maintains a priority queue of timestamped callbacks.
Ties in simulated time are broken by insertion order, which makes every run
fully deterministic: the same seed and the same call sequence always yield
the same execution.

Implementation: the heap holds plain ``(time, seq, event)`` tuples, so
sift comparisons resolve on the first two ints (``seq`` is unique — the
event object itself is never compared).  Cancelled events are skipped
lazily on pop, but the scheduler counts them and compacts the heap once
they exceed half of it, so cancellation-heavy workloads (retry timers,
timeouts that almost always get cancelled) don't accumulate garbage.  A
live-event counter makes :meth:`Scheduler.pending` O(1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: Minimum heap size before cancelled-event compaction can trigger.
_COMPACT_MIN_HEAP = 64


@dataclass
class ScheduledEvent:
    """A pending callback in the event queue.

    Events fire in ``(time, seq)`` order; ``seq`` is a monotonically
    increasing insertion counter that makes simultaneous events fire in
    FIFO order.
    """

    time: float
    seq: int
    action: Callable[[], None]
    label: str = ""
    cancelled: bool = False
    # Back-reference for cancellation bookkeeping; cleared once the event
    # leaves the heap so late cancels cannot corrupt the live counter.
    _sched: Optional["Scheduler"] = field(default=None, repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap but is skipped)."""
        if self.cancelled:
            return
        self.cancelled = True
        sched = self._sched
        if sched is not None:
            self._sched = None
            sched._note_cancelled()


class Scheduler:
    """A deterministic discrete-event loop over simulated milliseconds."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._live = 0
        self._cancelled_in_heap = 0

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def call_at(self, time: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current time {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time=time, seq=seq, action=action, label=label, _sched=self)
        heapq.heappush(self._queue, (time, seq, event))
        self._live += 1
        return event

    def call_later(self, delay: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` after ``delay`` simulated milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.call_at(self._now + delay, action, label)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > len(self._queue) // 2
            and len(self._queue) >= _COMPACT_MIN_HEAP
        ):
            self._compact()

    def _compact(self) -> None:
        """Purge cancelled entries and re-heapify (heap order is (time, seq))."""
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_heap = 0

    def _pop_live(self) -> Optional[ScheduledEvent]:
        """Pop the earliest live event off the heap, discarding cancelled ones."""
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            event._sched = None
            self._live -= 1
            return event
        return None

    def step(self) -> bool:
        """Execute the single earliest event.  Returns False if queue is empty."""
        event = self._pop_live()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.action()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the queue drains or simulated time passes ``until``.

        Returns the final simulated time.  ``max_events`` bounds runaway
        simulations (a protocol livelock surfaces as an error rather than a
        hang).
        """
        if self._running:
            raise SimulationError("scheduler.run() is not reentrant")
        self._running = True
        try:
            executed = 0
            while self._queue:
                time, _, head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                head._sched = None
                self._live -= 1
                self._now = time
                self._events_processed += 1
                head.action()
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; probable protocol livelock"
                    )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def run_until_quiescent(self, max_events: int = 10_000_000) -> float:
        """Drain every pending event; returns the final simulated time.

        The paper's optimistic-view liveness guarantee is phrased in terms of
        the system reaching a *quiescent* state; this is the simulation
        analogue.
        """
        return self.run(until=None, max_events=max_events)

    def advance_to(self, time: float) -> None:
        """Move the clock forward with no events (idle time)."""
        if time < self._now:
            raise SimulationError(f"cannot move clock backwards to {time}")
        self._now = time

    def __repr__(self) -> str:
        return f"Scheduler(now={self._now}, pending={self.pending()})"
