"""Network topology builders for simulations and benchmarks.

The default :class:`~repro.sim.network.Network` applies one latency model
to every ordered pair.  These helpers configure structured topologies:

* :func:`star` — clients around a hub (the centralized-server shape),
* :func:`ring` — neighbours are fast, distant pairs pay per-hop cost
  (the GVT token's world),
* :func:`clusters` — LAN clusters joined by WAN links (the paper's widely
  distributed collaborations: "one with a financial planner, another with
  an accountant"),
* :func:`chain_sets` — the section 5.1.3 overlapping replica-set chain.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.network import FixedLatency, Network


def star(network: Network, hub: int, spokes: Sequence[int], spoke_ms: float) -> None:
    """Hub-and-spoke: every spoke is ``spoke_ms`` from the hub; spoke-to-
    spoke traffic is routed conceptually via the hub (2x the latency)."""
    for spoke in spokes:
        network.set_link_latency(hub, spoke, FixedLatency(spoke_ms))
        network.set_link_latency(spoke, hub, FixedLatency(spoke_ms))
        for other in spokes:
            if other != spoke:
                network.set_link_latency(spoke, other, FixedLatency(2 * spoke_ms))


def ring(network: Network, sites: Sequence[int], hop_ms: float) -> None:
    """Ring distances: latency proportional to the hop count between sites."""
    n = len(sites)
    for i, a in enumerate(sites):
        for j, b in enumerate(sites):
            if a == b:
                continue
            hops = min((j - i) % n, (i - j) % n)
            network.set_link_latency(a, b, FixedLatency(hops * hop_ms))


def clusters(
    network: Network,
    groups: Sequence[Sequence[int]],
    lan_ms: float,
    wan_ms: float,
) -> None:
    """LAN latency within each group; WAN latency across groups."""
    membership: Dict[int, int] = {}
    for index, group in enumerate(groups):
        for site in group:
            membership[site] = index
    sites = list(membership)
    for a in sites:
        for b in sites:
            if a == b:
                continue
            latency = lan_ms if membership[a] == membership[b] else wan_ms
            network.set_link_latency(a, b, FixedLatency(latency))


def chain_sets(n_sites: int, set_size: int = 3, overlap: int = 1) -> List[List[int]]:
    """The section 5.1.3 replica-set chain: (0,1,2), (2,3,4), (4,5,6), …

    Returns the site-id groups; callers replicate one object per group.
    """
    if set_size <= overlap:
        raise ValueError("set_size must exceed overlap")
    groups: List[List[int]] = []
    start = 0
    step = set_size - overlap
    while start + set_size <= n_sites:
        groups.append(list(range(start, start + set_size)))
        start += step
    if not groups:
        groups = [list(range(n_sites))]
    return groups
