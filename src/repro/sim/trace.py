"""Message tracing for the simulated network.

A :class:`MessageTrace` subscribes to a network's protocol event bus
(:mod:`repro.obs`) and records every send with its simulated timestamp,
endpoints, message type, and (when present) transaction VT.  Traces
support filtering and a compact textual rendering — the primary debugging
tool for protocol work, and the source of the message-count numbers
quoted in the ablation benchmarks.

Because traces are bus subscribers (not ``network.send`` monkeypatches,
as in earlier revisions), any number of traces can be installed
concurrently and uninstalled in any order without interfering with each
other or with the bus's own recording.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.obs.events import ProtocolEvent
from repro.sim.network import Network


@dataclass(frozen=True)
class TraceEntry:
    """One recorded send."""

    time_ms: float
    src: int
    dst: int
    msg_type: str
    txn_vt: Optional[Any]
    payload: Any

    def render(self) -> str:
        vt = f" vt={self.txn_vt}" if self.txn_vt is not None else ""
        return f"{self.time_ms:9.1f}ms  {self.src}->{self.dst}  {self.msg_type}{vt}"


class MessageTrace:
    """Records sends on a network; supports filtering and summaries."""

    def __init__(self, network: Network, capture_payloads: bool = True) -> None:
        self.network = network
        self.capture_payloads = capture_payloads
        self.entries: List[TraceEntry] = []
        self._installed = True
        network.bus.subscribe(self._on_event)

    def _on_event(self, event: ProtocolEvent) -> None:
        if event.kind != "message_sent":
            return
        self.entries.append(
            TraceEntry(
                time_ms=event.time_ms,
                src=event.site,
                dst=event.data["dst"],
                msg_type=event.data["msg_type"],
                txn_vt=event.txn_vt,
                payload=event.data.get("payload") if self.capture_payloads else None,
            )
        )

    def uninstall(self) -> None:
        """Stop tracing (existing entries are kept).  Order-independent:
        other traces on the same network are unaffected."""
        if self._installed:
            self.network.bus.unsubscribe(self._on_event)
            self._installed = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def filter(
        self,
        msg_type: Optional[str] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        txn_vt: Optional[Any] = None,
        predicate: Optional[Callable[[TraceEntry], bool]] = None,
    ) -> List[TraceEntry]:
        """Entries matching every given criterion."""
        out = []
        for entry in self.entries:
            if msg_type is not None and entry.msg_type != msg_type:
                continue
            if src is not None and entry.src != src:
                continue
            if dst is not None and entry.dst != dst:
                continue
            if txn_vt is not None and entry.txn_vt != txn_vt:
                continue
            if predicate is not None and not predicate(entry):
                continue
            out.append(entry)
        return out

    def counts_by_type(self) -> Dict[str, int]:
        """Message counts per type — the ablation benchmarks' metric."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.msg_type] = counts.get(entry.msg_type, 0) + 1
        return counts

    def transaction_story(self, txn_vt: Any) -> List[TraceEntry]:
        """Every message belonging to one transaction, in send order."""
        return self.filter(txn_vt=txn_vt)

    def render(self, limit: Optional[int] = None) -> str:
        """A compact textual log (last ``limit`` entries if given)."""
        entries = self.entries[-limit:] if limit else self.entries
        return "\n".join(entry.render() for entry in entries)

    def clear(self) -> None:
        self.entries.clear()
