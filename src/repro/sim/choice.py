"""Choice-point injection for the simulated network (exhaustive exploration).

When a :class:`ScheduleController` is installed on a
:class:`~repro.sim.network.Network` (``network.choice``), message deliveries
stop flowing through sampled latencies: each send is parked in a per-channel
FIFO queue and the *order* in which channel heads fire becomes an explicit
choice, delegated to a pluggable strategy.  The model checker in
:mod:`repro.explore.mc` uses this hook to enumerate every interleaving of a
small trial; a fixed-schedule strategy replays one recorded interleaving.

Event alphabet
--------------

Every choice event carries a stable, replayable key:

``("msg", src, dst, n)``
    The ``n``-th message sent on the ordered channel ``(src, dst)`` since
    the controller was installed.  Per-channel FIFO is structural: only the
    head of each channel queue is ever enabled, so no schedule can violate
    the TCP-like ordering the protocol assumes.
``("txn", party, n)``
    The ``n``-th workload transaction of party ``party`` arriving at its
    site.  Per-party program order is likewise structural.
``("tmr", site, step, n)``
    A positive-delay deferred action (transaction retry backoff) created at
    ``site`` during macro step ``step``.  Timers created by the same macro
    step at the same site fire in delay order (they share one creation
    instant, so only that order is realizable in the timed simulation);
    timers from different steps or sites interleave freely.

Granularity (what is — and is not — a choice point)
---------------------------------------------------

One fired event is a *macro step*: the delivery/arrival/timer itself plus
all same-instant local follow-ups (zero-delay defers and zero-latency
loopback self-sends drain through the scheduler before the next choice).
In the timed simulation those follow-ups always precede any cross-site
delivery, which all carry positive latency, so folding them into the macro
step never constructs an unrealizable schedule.  Conversely every schedule
the controller *can* produce is realizable by some assignment of link
latencies and timer expiries: the enabled set only ever contains events
whose causal predecessors have fired.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError

#: A stable, JSON-serializable identifier for one choice event.
EventKey = Tuple[Any, ...]


class PruneBranch(Exception):
    """Raised by a strategy to cut the current branch (not a real terminal).

    The controller stops driving and flags :attr:`ScheduleController.pruned`;
    the trial's final state must not be treated as a quiescent outcome.
    """


class ScheduleExhausted(Exception):
    """A fixed-schedule replay ran out of (or diverged from) its schedule."""


class _Pending:
    """One parked choice event: its key and the closure that fires it."""

    __slots__ = ("key", "fire")

    def __init__(self, key: EventKey, fire: Callable[[], None]) -> None:
        self.key = key
        self.fire = fire


class ScheduleController:
    """Parks deliverable events and fires them in a strategy-chosen order.

    ``strategy`` is any object with ``choose(depth, enabled) -> EventKey``
    where ``enabled`` is the canonically sorted list of currently enabled
    event keys; it may raise :class:`PruneBranch` to cut the branch.

    The controller is single-use: one instance drives one trial execution.
    """

    def __init__(self, strategy: Any, max_steps: int = 100_000) -> None:
        self.strategy = strategy
        self.max_steps = max_steps
        #: Fired event keys, in order — the schedule this execution took.
        self.trace: List[EventKey] = []
        #: True when the strategy pruned the branch (partial execution).
        self.pruned = False
        self._queues: "OrderedDict[Tuple[Any, ...], Deque[_Pending]]" = OrderedDict()
        self._channel_seq: Dict[Tuple[int, int], int] = {}
        self._party_seq: Dict[int, int] = {}
        #: Timers offered during the current macro step, flushed (in delay
        #: order per site) into per-(site, step) queues before the next
        #: choice is presented.
        self._timer_buffer: List[Tuple[int, float, int, Callable[[], None]]] = []
        self._timer_seq = 0

    # ------------------------------------------------------------------
    # Offer side (called by the network / transport / trial harness)
    # ------------------------------------------------------------------

    def offer_message(self, src: int, dst: int, fire: Callable[[], None]) -> EventKey:
        """Park a message delivery on the FIFO channel ``(src, dst)``."""
        n = self._channel_seq.get((src, dst), 0)
        self._channel_seq[(src, dst)] = n + 1
        key = ("msg", src, dst, n)
        self._queues.setdefault(("msg", src, dst), deque()).append(_Pending(key, fire))
        return key

    def offer_arrival(self, party: int, fire: Callable[[], None]) -> EventKey:
        """Park a workload transaction arrival (program order per party)."""
        n = self._party_seq.get(party, 0)
        self._party_seq[party] = n + 1
        key = ("txn", party, n)
        self._queues.setdefault(("txn", party), deque()).append(_Pending(key, fire))
        return key

    def offer_timer(self, site: Optional[int], fire: Callable[[], None], delay_ms: float) -> None:
        """Park a positive-delay deferred action (e.g. a retry backoff)."""
        seq = self._timer_seq
        self._timer_seq = seq + 1
        self._timer_buffer.append((site if site is not None else -1, delay_ms, seq, fire))

    def _flush_timers(self) -> None:
        if not self._timer_buffer:
            return
        step = len(self.trace)
        # Same-instant timers at one site can only fire in delay order in
        # the timed simulation, so that order is structural (FIFO queue);
        # the tie on equal delays breaks by creation order.
        self._timer_buffer.sort(key=lambda t: (t[0], t[1], t[2]))
        counts: Dict[int, int] = {}
        for site, _delay, _seq, fire in self._timer_buffer:
            n = counts.get(site, 0)
            counts[site] = n + 1
            key = ("tmr", site, step, n)
            self._queues.setdefault(("tmr", site, step), deque()).append(_Pending(key, fire))
        self._timer_buffer = []

    # ------------------------------------------------------------------
    # Drive side (called by the trial harness)
    # ------------------------------------------------------------------

    def enabled(self) -> List[EventKey]:
        """Canonically sorted keys of every channel head."""
        return sorted(queue[0].key for queue in self._queues.values() if queue)

    def _pop(self, key: EventKey) -> _Pending:
        for qkey, queue in self._queues.items():
            if queue and queue[0].key == key:
                pending = queue.popleft()
                if not queue:
                    del self._queues[qkey]
                return pending
        raise SimulationError(f"choice {key!r} is not an enabled channel head")

    def drive(self, scheduler: Any, max_events: int = 10_000_000) -> None:
        """Run the trial to quiescence under strategy-chosen event order.

        Each iteration drains same-instant local work through the
        scheduler, flushes newly created timers, presents the enabled set
        to the strategy, and fires its choice one simulated millisecond
        later (the tick keeps recorded timelines monotone; no protocol
        logic reads wall-clock time).
        """
        while True:
            scheduler.run_until_quiescent(max_events=max_events)
            self._flush_timers()
            enabled = self.enabled()
            if not enabled:
                return
            if len(self.trace) >= self.max_steps:
                raise SimulationError(
                    f"exhaustive schedule exceeded max_steps={self.max_steps}; "
                    "probable protocol livelock"
                )
            try:
                key = self.strategy.choose(len(self.trace), enabled)
            except PruneBranch:
                self.pruned = True
                return
            pending = self._pop(key)
            self.trace.append(key)
            scheduler.advance_to(scheduler.now + 1.0)
            pending.fire()
