"""A simulated point-to-point network with latency, partitions, and failures.

Sites register a delivery handler; :meth:`Network.send` samples a one-way
latency from the configured :class:`LatencyModel` and schedules delivery on
the shared :class:`~repro.sim.scheduler.Scheduler`.  Channels are FIFO per
ordered site pair by default (like TCP); messages between *different* pairs
may interleave arbitrarily, which is exactly the reordering ("stragglers")
the paper's algorithms must tolerate.

Fail-stop failures follow the paper's section 3.4 assumption: "the
underlying communication infrastructure provides notification of such
failures and ... presents them to the application as fail-stop failures —
further communication with failed or disconnected clients is prevented by
the communication layer."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.messages import Envelope
from repro.errors import SimulationError, TransportError
from repro.obs.events import EventBus
from repro.sim.scheduler import Scheduler

DeliveryHandler = Callable[[int, Any], None]
FailureHandler = Callable[[int], None]


class LatencyModel:
    """Samples a one-way message latency in milliseconds for a site pair."""

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """A constant one-way latency ``t`` — the paper's analytic model."""

    def __init__(self, latency_ms: float) -> None:
        if latency_ms < 0:
            raise ValueError("latency must be non-negative")
        self.latency_ms = latency_ms

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return self.latency_ms

    def __repr__(self) -> str:
        return f"FixedLatency({self.latency_ms}ms)"


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]`` — bounded jitter."""

    def __init__(self, low_ms: float, high_ms: float) -> None:
        if not 0 <= low_ms <= high_ms:
            raise ValueError("require 0 <= low <= high")
        self.low_ms = low_ms
        self.high_ms = high_ms

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return rng.uniform(self.low_ms, self.high_ms)

    def __repr__(self) -> str:
        return f"UniformLatency([{self.low_ms}, {self.high_ms}]ms)"


class NormalLatency(LatencyModel):
    """Gaussian latency truncated at a floor — realistic WAN jitter."""

    def __init__(self, mean_ms: float, stddev_ms: float, floor_ms: float = 0.1) -> None:
        if mean_ms < 0 or stddev_ms < 0 or floor_ms < 0:
            raise ValueError("latency parameters must be non-negative")
        self.mean_ms = mean_ms
        self.stddev_ms = stddev_ms
        self.floor_ms = floor_ms

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return max(self.floor_ms, rng.gauss(self.mean_ms, self.stddev_ms))

    def __repr__(self) -> str:
        return f"NormalLatency(mean={self.mean_ms}ms, sd={self.stddev_ms}ms)"


@dataclass
class NetworkStats:
    """Counters used by the benchmark harness to report message complexity.

    The lifecycle counters reconcile at all times::

        messages_sent == messages_delivered + messages_dropped + messages_in_flight

    A message is *in flight* from the moment its delivery is scheduled until
    ``deliver`` runs; drops at send time (dead/partitioned destination, armed
    drop rule) never enter the in-flight count, drops at delivery time leave
    it first.  ``reconcile()`` asserts the invariant for tests.

    All lifecycle counters are in units of *protocol messages*: an
    :class:`~repro.core.messages.Envelope` frame carrying K messages counts
    as K sent/delivered/dropped, so message-complexity reports are
    comparable with and without batching.  ``envelopes_sent`` additionally
    counts multi-message frames; ``per_type_sent`` counts the inner types.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_dropped_injected: int = 0
    messages_in_flight: int = 0
    envelopes_sent: int = 0
    per_type_sent: Dict[str, int] = field(default_factory=dict)

    def record_send(self, payload: Any) -> None:
        if isinstance(payload, Envelope):
            self.envelopes_sent += 1
            self.messages_sent += len(payload.messages)
            for message in payload.messages:
                name = type(message).__name__
                self.per_type_sent[name] = self.per_type_sent.get(name, 0) + 1
            return
        self.messages_sent += 1
        name = type(payload).__name__
        self.per_type_sent[name] = self.per_type_sent.get(name, 0) + 1

    def reconcile(self) -> bool:
        """True iff sent == delivered + dropped + in_flight."""
        return self.messages_sent == (
            self.messages_delivered + self.messages_dropped + self.messages_in_flight
        )

    def snapshot(self) -> "NetworkStats":
        copy = NetworkStats(
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            messages_dropped=self.messages_dropped,
            messages_dropped_injected=self.messages_dropped_injected,
            messages_in_flight=self.messages_in_flight,
            envelopes_sent=self.envelopes_sent,
        )
        copy.per_type_sent = dict(self.per_type_sent)
        return copy


@dataclass
class DropRule:
    """A fault-injection rule: silently drop up to ``remaining`` messages
    addressed to ``dst`` (optionally only those from ``src``)."""

    dst: int
    remaining: int
    src: Optional[int] = None

    def matches(self, src: int, dst: int) -> bool:
        return (
            self.remaining > 0
            and dst == self.dst
            and (self.src is None or src == self.src)
        )


class Network:
    """The simulated network connecting DECAF sites.

    Parameters
    ----------
    scheduler:
        The shared discrete-event scheduler.
    latency:
        One-way latency model applied to every ordered site pair unless
        overridden per pair with :meth:`set_link_latency`.
    seed:
        Seed for the network's private RNG (latency sampling).
    fifo:
        When True (default), deliveries on each ordered ``(src, dst)`` pair
        never overtake earlier sends on the same pair.
    flush_inflight_on_fail:
        When True, messages already in flight *from* a site at the moment it
        crashes are still delivered (only messages *to* a failed site are
        dropped).  This models the paper's ISIS-style infrastructure
        guarantee — if any survivor received a transaction's COMMIT, every
        replica received its WRITEs — which the conformance explorer relies
        on.  The default (False) keeps the stricter drop-everything
        semantics that the existing failure tests exercise.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        fifo: bool = True,
        flush_inflight_on_fail: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.default_latency = latency if latency is not None else FixedLatency(50.0)
        self.fifo = fifo
        self.flush_inflight_on_fail = flush_inflight_on_fail
        self.stats = NetworkStats()
        #: Protocol event bus shared with the session and every site built
        #: on this network (see repro.obs).  Idle unless enabled/subscribed.
        self.bus = EventBus()
        self._rng = random.Random(seed)
        self._handlers: Dict[int, DeliveryHandler] = {}
        self._failure_handlers: List[FailureHandler] = []
        self._link_latency: Dict[Tuple[int, int], LatencyModel] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        self._failed: Set[int] = set()
        self._partitioned: Set[Tuple[int, int]] = set()
        self._drop_rules: List[DropRule] = []
        #: Network-wide message sequence.  Assigned on every send (observed
        #: or not) so a message's id is identical whether or not the bus is
        #: recording; ``message_sent``/``message_delivered`` events carry it,
        #: giving the causal analyzer exact send→deliver edges.
        self._msg_seq = 0
        #: Optional hook adding deterministic extra delay per message:
        #: ``fn(src, dst, payload) -> extra_ms``.  With ``fifo=False`` this
        #: reorders messages within a pair; with FIFO it stretches queues.
        self.delay_hook: Optional[Callable[[int, int, Any], float]] = None
        #: When True (default), a partition also destroys messages already
        #: in flight across the cut.  The conformance explorer sets this to
        #: False so a partition models "no *new* communication" while
        #: messages already handed to the infrastructure still arrive —
        #: the view of disconnection the paper's fail-stop presentation
        #: implies.
        self.partition_cuts_inflight: bool = True
        #: Choice-point hook (see :mod:`repro.sim.choice`).  When set to a
        #: :class:`~repro.sim.choice.ScheduleController`, cross-site
        #: deliveries bypass latency sampling and park in per-channel FIFO
        #: queues; *which* channel head fires next becomes an explicit
        #: choice the controller's strategy makes.  Zero-latency loopback
        #: self-sends keep the timed path (they are same-instant local
        #: continuations, not schedule choices).
        self.choice: Optional[Any] = None

    # ------------------------------------------------------------------
    # Registration / topology
    # ------------------------------------------------------------------

    def register(self, site: int, handler: DeliveryHandler) -> None:
        """Attach ``site``'s message handler; replaces any previous handler."""
        self._handlers[site] = handler

    def unregister(self, site: int) -> None:
        """Detach ``site``'s handler (tenant eviction); in-flight drops are counted."""
        self._handlers.pop(site, None)

    def add_failure_listener(self, handler: FailureHandler) -> None:
        """Register a callback invoked (once per surviving site's view) on failures."""
        self._failure_handlers.append(handler)

    def remove_failure_listener(self, handler: FailureHandler) -> None:
        """Unsubscribe a failure listener previously added (no-op if absent)."""
        try:
            self._failure_handlers.remove(handler)
        except ValueError:
            pass

    def set_link_latency(self, src: int, dst: int, model: LatencyModel) -> None:
        """Override the latency model for the ordered pair ``(src, dst)``."""
        self._link_latency[(src, dst)] = model

    def sites(self) -> List[int]:
        """All registered site identifiers, sorted."""
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Queue ``payload`` from ``src`` to ``dst`` after a sampled latency.

        Messages to or from failed sites, and messages across a partition,
        are silently dropped (fail-stop / partition semantics); the drop is
        counted in :attr:`stats`.
        """
        if dst not in self._handlers:
            raise TransportError(f"destination site {dst} is not registered")
        self.stats.record_send(payload)
        # Lifecycle counters stay in protocol-message units even when the
        # payload is a multi-message envelope frame.
        units = len(payload.messages) if isinstance(payload, Envelope) else 1
        msg_id = self._msg_seq
        self._msg_seq = msg_id + 1
        if self.bus.active:
            # Emitted for every send attempt — including ones dropped below —
            # matching what a wire sniffer at the sender would observe.
            self.bus.emit(
                "message_sent",
                site=src,
                time_ms=self.scheduler.now,
                txn_vt=getattr(payload, "txn_vt", None),
                dst=dst,
                msg_type=type(payload).__name__,
                msg_id=msg_id,
                payload=payload,
            )
        if src in self._failed or dst in self._failed or self._is_partitioned(src, dst):
            self.stats.messages_dropped += units
            return
        if self._consume_drop_rule(src, dst):
            self.stats.messages_dropped += units
            self.stats.messages_dropped_injected += units
            return
        def deliver() -> None:
            self.stats.messages_in_flight -= units
            if dst in self._failed:
                self.stats.messages_dropped += units
                return
            if src in self._failed and not self.flush_inflight_on_fail:
                self.stats.messages_dropped += units
                return
            if self._is_partitioned(src, dst) and self.partition_cuts_inflight:
                self.stats.messages_dropped += units
                return
            handler = self._handlers.get(dst)
            if handler is None:
                # Destination evicted while the message was in flight
                # (SessionHost tenant eviction): drop, never raise.
                self.stats.messages_dropped += units
                return
            self.stats.messages_delivered += units
            if self.bus.active:
                # Paired with the message_sent event via msg_id: together
                # they are the cross-site happens-before edges of the
                # causal analyzer (repro.obs.causal).
                self.bus.emit(
                    "message_delivered",
                    site=dst,
                    time_ms=self.scheduler.now,
                    txn_vt=getattr(payload, "txn_vt", None),
                    src=src,
                    msg_type=type(payload).__name__,
                    msg_id=msg_id,
                )
            handler(src, payload)

        if self.choice is not None and src != dst:
            self.stats.messages_in_flight += units
            self.choice.offer_message(src, dst, deliver)
            return

        if src == dst:
            # Local loopback delivers on the next scheduler step with zero
            # latency; it still goes through the queue so handler re-entrancy
            # is never required.
            delivery_time = self.scheduler.now
        else:
            model = self._link_latency.get((src, dst), self.default_latency)
            delivery_time = self.scheduler.now + model.sample(self._rng, src, dst)
        if self.delay_hook is not None and src != dst:
            delivery_time += max(0.0, self.delay_hook(src, dst, payload))
        if self.fifo:
            key = (src, dst)
            floor = self._last_delivery.get(key, 0.0)
            delivery_time = max(delivery_time, floor)
            self._last_delivery[key] = delivery_time

        self.stats.messages_in_flight += units
        self.scheduler.call_at(delivery_time, deliver, label=f"deliver {src}->{dst}")

    def broadcast(self, src: int, dsts: List[int], payload: Any) -> None:
        """Send ``payload`` from ``src`` to each destination independently."""
        for dst in dsts:
            self.send(src, dst, payload)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def inject_drop(self, dst: int, count: int = 1, src: Optional[int] = None) -> DropRule:
        """Arm a rule dropping the next ``count`` messages addressed to ``dst``.

        With ``src`` given, only messages from that site match.  Drops are
        counted in ``stats.messages_dropped_injected``.  Note this breaks
        the reliable-channel assumption the protocol is built on; it exists
        for adversarial/conformance testing, where a drop is only sound when
        the receiver (or sender) is about to crash fail-stop anyway.
        """
        if count <= 0:
            raise SimulationError("inject_drop requires a positive count")
        rule = DropRule(dst=dst, remaining=count, src=src)
        self._drop_rules.append(rule)
        return rule

    def _consume_drop_rule(self, src: int, dst: int) -> bool:
        for rule in self._drop_rules:
            if rule.matches(src, dst):
                rule.remaining -= 1
                if rule.remaining == 0:
                    self._drop_rules = [r for r in self._drop_rules if r.remaining > 0]
                return True
        return False

    # ------------------------------------------------------------------
    # Failures and partitions
    # ------------------------------------------------------------------

    def fail_site(self, site: int, notify_after_ms: float = 0.0) -> None:
        """Crash ``site`` fail-stop; notify survivors after ``notify_after_ms``.

        In-flight messages to/from the failed site are dropped at delivery
        time; survivors receive a failure notification through the failure
        listeners (the ISIS-style assumption of paper section 3.4).
        """
        if site in self._failed:
            return
        self._failed.add(site)
        notify_time = self.scheduler.now + notify_after_ms
        if self.flush_inflight_on_fail and self.fifo:
            # Virtual synchrony: the failure notification is ordered after
            # every message the dead site already handed to the transport
            # (ISIS view-change semantics).  Without this a survivor could
            # resolve a transaction as aborted and then receive its COMMIT.
            for (src, _dst), last in self._last_delivery.items():
                if src == site and last > notify_time:
                    notify_time = last

        def notify() -> None:
            for handler in list(self._failure_handlers):
                handler(site)

        self.scheduler.call_at(notify_time, notify, label=f"fail-notify {site}")

    def is_failed(self, site: int) -> bool:
        return site in self._failed

    def partition(self, group_a: List[int], group_b: List[int]) -> None:
        """Sever communication between every pair across the two groups."""
        for a in group_a:
            for b in group_b:
                self._partitioned.add((a, b))
                self._partitioned.add((b, a))

    def heal_partition(self) -> None:
        """Restore full connectivity (failed sites stay failed)."""
        self._partitioned.clear()

    def _is_partitioned(self, src: int, dst: int) -> bool:
        return (src, dst) in self._partitioned

    def __repr__(self) -> str:
        return (
            f"Network(sites={self.sites()}, failed={sorted(self._failed)}, "
            f"latency={self.default_latency!r})"
        )
