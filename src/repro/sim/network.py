"""A simulated point-to-point network with latency, partitions, and failures.

Sites register a delivery handler; :meth:`Network.send` samples a one-way
latency from the configured :class:`LatencyModel` and schedules delivery on
the shared :class:`~repro.sim.scheduler.Scheduler`.  Channels are FIFO per
ordered site pair by default (like TCP); messages between *different* pairs
may interleave arbitrarily, which is exactly the reordering ("stragglers")
the paper's algorithms must tolerate.

Fail-stop failures follow the paper's section 3.4 assumption: "the
underlying communication infrastructure provides notification of such
failures and ... presents them to the application as fail-stop failures —
further communication with failed or disconnected clients is prevented by
the communication layer."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError, TransportError
from repro.sim.scheduler import Scheduler

DeliveryHandler = Callable[[int, Any], None]
FailureHandler = Callable[[int], None]


class LatencyModel:
    """Samples a one-way message latency in milliseconds for a site pair."""

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """A constant one-way latency ``t`` — the paper's analytic model."""

    def __init__(self, latency_ms: float) -> None:
        if latency_ms < 0:
            raise ValueError("latency must be non-negative")
        self.latency_ms = latency_ms

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return self.latency_ms

    def __repr__(self) -> str:
        return f"FixedLatency({self.latency_ms}ms)"


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]`` — bounded jitter."""

    def __init__(self, low_ms: float, high_ms: float) -> None:
        if not 0 <= low_ms <= high_ms:
            raise ValueError("require 0 <= low <= high")
        self.low_ms = low_ms
        self.high_ms = high_ms

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return rng.uniform(self.low_ms, self.high_ms)

    def __repr__(self) -> str:
        return f"UniformLatency([{self.low_ms}, {self.high_ms}]ms)"


class NormalLatency(LatencyModel):
    """Gaussian latency truncated at a floor — realistic WAN jitter."""

    def __init__(self, mean_ms: float, stddev_ms: float, floor_ms: float = 0.1) -> None:
        if mean_ms < 0 or stddev_ms < 0 or floor_ms < 0:
            raise ValueError("latency parameters must be non-negative")
        self.mean_ms = mean_ms
        self.stddev_ms = stddev_ms
        self.floor_ms = floor_ms

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return max(self.floor_ms, rng.gauss(self.mean_ms, self.stddev_ms))

    def __repr__(self) -> str:
        return f"NormalLatency(mean={self.mean_ms}ms, sd={self.stddev_ms}ms)"


@dataclass
class NetworkStats:
    """Counters used by the benchmark harness to report message complexity."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    per_type_sent: Dict[str, int] = field(default_factory=dict)

    def record_send(self, payload: Any) -> None:
        self.messages_sent += 1
        name = type(payload).__name__
        self.per_type_sent[name] = self.per_type_sent.get(name, 0) + 1

    def snapshot(self) -> "NetworkStats":
        copy = NetworkStats(
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            messages_dropped=self.messages_dropped,
        )
        copy.per_type_sent = dict(self.per_type_sent)
        return copy


class Network:
    """The simulated network connecting DECAF sites.

    Parameters
    ----------
    scheduler:
        The shared discrete-event scheduler.
    latency:
        One-way latency model applied to every ordered site pair unless
        overridden per pair with :meth:`set_link_latency`.
    seed:
        Seed for the network's private RNG (latency sampling).
    fifo:
        When True (default), deliveries on each ordered ``(src, dst)`` pair
        never overtake earlier sends on the same pair.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        fifo: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.default_latency = latency if latency is not None else FixedLatency(50.0)
        self.fifo = fifo
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        self._handlers: Dict[int, DeliveryHandler] = {}
        self._failure_handlers: List[FailureHandler] = []
        self._link_latency: Dict[Tuple[int, int], LatencyModel] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        self._failed: Set[int] = set()
        self._partitioned: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Registration / topology
    # ------------------------------------------------------------------

    def register(self, site: int, handler: DeliveryHandler) -> None:
        """Attach ``site``'s message handler; replaces any previous handler."""
        self._handlers[site] = handler

    def add_failure_listener(self, handler: FailureHandler) -> None:
        """Register a callback invoked (once per surviving site's view) on failures."""
        self._failure_handlers.append(handler)

    def set_link_latency(self, src: int, dst: int, model: LatencyModel) -> None:
        """Override the latency model for the ordered pair ``(src, dst)``."""
        self._link_latency[(src, dst)] = model

    def sites(self) -> List[int]:
        """All registered site identifiers, sorted."""
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Queue ``payload`` from ``src`` to ``dst`` after a sampled latency.

        Messages to or from failed sites, and messages across a partition,
        are silently dropped (fail-stop / partition semantics); the drop is
        counted in :attr:`stats`.
        """
        if dst not in self._handlers:
            raise TransportError(f"destination site {dst} is not registered")
        self.stats.record_send(payload)
        if src in self._failed or dst in self._failed or self._is_partitioned(src, dst):
            self.stats.messages_dropped += 1
            return
        if src == dst:
            # Local loopback delivers on the next scheduler step with zero
            # latency; it still goes through the queue so handler re-entrancy
            # is never required.
            delivery_time = self.scheduler.now
        else:
            model = self._link_latency.get((src, dst), self.default_latency)
            delivery_time = self.scheduler.now + model.sample(self._rng, src, dst)
        if self.fifo:
            key = (src, dst)
            floor = self._last_delivery.get(key, 0.0)
            delivery_time = max(delivery_time, floor)
            self._last_delivery[key] = delivery_time

        def deliver() -> None:
            if dst in self._failed or src in self._failed:
                self.stats.messages_dropped += 1
                return
            if self._is_partitioned(src, dst):
                self.stats.messages_dropped += 1
                return
            self.stats.messages_delivered += 1
            self._handlers[dst](src, payload)

        self.scheduler.call_at(delivery_time, deliver, label=f"deliver {src}->{dst}")

    def broadcast(self, src: int, dsts: List[int], payload: Any) -> None:
        """Send ``payload`` from ``src`` to each destination independently."""
        for dst in dsts:
            self.send(src, dst, payload)

    # ------------------------------------------------------------------
    # Failures and partitions
    # ------------------------------------------------------------------

    def fail_site(self, site: int, notify_after_ms: float = 0.0) -> None:
        """Crash ``site`` fail-stop; notify survivors after ``notify_after_ms``.

        In-flight messages to/from the failed site are dropped at delivery
        time; survivors receive a failure notification through the failure
        listeners (the ISIS-style assumption of paper section 3.4).
        """
        if site in self._failed:
            return
        self._failed.add(site)

        def notify() -> None:
            for handler in list(self._failure_handlers):
                handler(site)

        self.scheduler.call_later(notify_after_ms, notify, label=f"fail-notify {site}")

    def is_failed(self, site: int) -> bool:
        return site in self._failed

    def partition(self, group_a: List[int], group_b: List[int]) -> None:
        """Sever communication between every pair across the two groups."""
        for a in group_a:
            for b in group_b:
                self._partitioned.add((a, b))
                self._partitioned.add((b, a))

    def heal_partition(self) -> None:
        """Restore full connectivity (failed sites stay failed)."""
        self._partitioned.clear()

    def _is_partitioned(self, src: int, dst: int) -> bool:
        return (src, dst) in self._partitioned

    def __repr__(self) -> str:
        return (
            f"Network(sites={self.sites()}, failed={sorted(self._failed)}, "
            f"latency={self.default_latency!r})"
        )
