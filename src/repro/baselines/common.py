"""Shared scaffolding for baseline systems.

Each baseline exposes the same micro-interface the benchmark harness
drives:

* ``issue_update(site_index, value)`` — a user gesture at one site,
  returning an :class:`UpdateProbe` whose fields fill in as the update
  echoes locally, propagates, and commits.
* ``value_at(site_index)`` — the site's current (optimistic) value.
* ``committed_value_at(site_index)`` — what a pessimistic view would show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.network import Network
from repro.sim.scheduler import Scheduler


@dataclass
class UpdateProbe:
    """Timing probe for one update issued at ``origin``."""

    origin: int
    value: Any
    issue_time_ms: float
    #: When the ORIGIN site's own display could show the new value.
    local_echo_ms: Optional[float] = None
    #: When each site's display could show the new value (optimistically).
    visible_ms: Dict[int, float] = field(default_factory=dict)
    #: When each site knew the update was committed/stable.
    committed_ms: Dict[int, float] = field(default_factory=dict)

    def local_echo_latency(self) -> Optional[float]:
        if self.local_echo_ms is None:
            return None
        return self.local_echo_ms - self.issue_time_ms

    def commit_latency_at(self, site: int) -> Optional[float]:
        t = self.committed_ms.get(site)
        return None if t is None else t - self.issue_time_ms


class BaselineSystem:
    """Base class: owns the scheduler/network pair and the probes list."""

    name = "baseline"

    def __init__(self, n_sites: int, latency_ms: float = 50.0, seed: int = 0) -> None:
        from repro.sim.network import FixedLatency

        self.n_sites = n_sites
        self.scheduler = Scheduler()
        self.network = Network(self.scheduler, latency=FixedLatency(latency_ms), seed=seed)
        self.probes: List[UpdateProbe] = []
        for site in range(n_sites):
            self.network.register(site, self._make_handler(site))

    def _make_handler(self, site: int):
        def handler(src: int, payload: Any) -> None:
            self.on_message(site, src, payload)

        return handler

    def on_message(self, site: int, src: int, payload: Any) -> None:
        raise NotImplementedError

    def issue_update(self, site: int, value: Any) -> UpdateProbe:
        raise NotImplementedError

    def value_at(self, site: int) -> Any:
        raise NotImplementedError

    def committed_value_at(self, site: int) -> Any:
        raise NotImplementedError

    def settle(self) -> None:
        self.scheduler.run_until_quiescent()

    def run_for(self, ms: float) -> None:
        self.scheduler.run(until=self.scheduler.now + ms)
