"""Baseline/comparator systems the paper discusses (sections 5.1.3 and 6).

Implemented for measured, head-to-head comparison with DECAF:

* :mod:`repro.baselines.gvt` — optimistic replication whose commit point is
  a Jefferson-style **Global Virtual Time sweep** (a token circulating all
  sites, as in ORESTE/COAST-era groupware).  Local echo is immediate, but
  commit latency grows with the size of the network — the scalability
  contrast of section 5.1.3.
* :mod:`repro.baselines.locking` — **pessimistic primary-copy two-phase
  locking** (the database-style alternative of section 6): correct and
  simple, but the user's own GUI echo waits a lock round trip.
* :mod:`repro.baselines.oreste` — the **ORESTE operation-history
  algorithm** (section 6): commutativity/masking relations with undo/redo
  reordering; correct only at quiescence, no multi-object transactions.
* :mod:`repro.baselines.centralized` — the **non-replicated architecture**
  of section 1 (shared-X style): one server owns the state; every client
  interaction is a round trip.

All three run on the same discrete-event network as DECAF, so latency
comparisons are apples-to-apples.
"""

from repro.baselines.gvt import GvtSystem
from repro.baselines.locking import LockingSystem
from repro.baselines.centralized import CentralizedSystem
from repro.baselines.oreste import OresteSystem

__all__ = ["GvtSystem", "LockingSystem", "CentralizedSystem", "OresteSystem"]
