"""ORESTE-style baseline: operation history with commutativity/masking.

Karsenty & Beaudouin-Lafon's algorithm (the paper's reference [10], and
the basis of COAST's concurrency control) as the paper characterizes it in
section 6:

* programmers define high-level *operations* and specify their
  **commutativity** and **masking** relations;
* operations broadcast immediately and apply optimistically; a straggler
  that does not commute with already-applied later operations forces an
  **undo/redo**: the non-commuting suffix is rolled back, the straggler
  inserted in timestamp order, and the suffix replayed;
* a state cannot be committed to an external view until it is known that
  no straggler remains — "this involves a global sweep analogous to
  Jefferson's Global Virtual Time algorithm".

The paper levels two criticisms we reproduce as measurements/tests:

1. there are no multi-object transactions — each operation touches one
   object, so cross-object atomicity must be faked by fusing objects; and
2. correctness is only quiescent: with a red object at container A,
   concurrent "paint blue" and "move to B" commute *as final states*, yet
   during the run "some sites might see a transition in which a blue
   object was at A and others a transition in which a red object was at
   B" — observable intermediate states differ between sites.

This implementation keeps per-site operation logs in timestamp order with
undo/redo insertion, records every *observed intermediate state* (so tests
can exhibit criticism 2), and reports sweep-based commit latency like
:class:`~repro.baselines.gvt.GvtSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.baselines.common import BaselineSystem, UpdateProbe
from repro.vtime import VirtualTime


@dataclass(frozen=True)
class Operation:
    """A high-level ORESTE operation on one object."""

    vt: VirtualTime
    object_id: str
    op_type: str  # e.g. "set_color", "move"
    value: Any
    probe_index: int
    clock: int


def default_commutes(a: Operation, b: Operation) -> bool:
    """Default relation: ops commute unless they share object AND type.

    This encodes the paper's section 6 example: "a transaction that
    changes an object's color can reasonably be said to commute with a
    transaction that moves an object from container A to container B" —
    same object, different attributes.  Two writes of the *same* attribute
    do not commute (the later masks the earlier).
    """
    if a.object_id != b.object_id:
        return True
    return a.op_type != b.op_type


class OresteSystem(BaselineSystem):
    """N fully replicated sites running the operation-history algorithm."""

    name = "oreste"

    def __init__(
        self,
        n_sites: int,
        latency_ms: float = 50.0,
        seed: int = 0,
        commutes: Callable[[Operation, Operation], bool] = default_commutes,
    ) -> None:
        super().__init__(n_sites, latency_ms=latency_ms, seed=seed)
        self.commutes = commutes
        self._clock = [0] * n_sites
        #: Per-site operation log, maintained in timestamp order.
        self._logs: List[List[Operation]] = [[] for _ in range(n_sites)]
        #: Per-site materialized state: object_id -> {attribute: value}.
        self._states: List[Dict[str, Dict[str, Any]]] = [{} for _ in range(n_sites)]
        #: Every distinct state each site's display passed through
        #: (object_id -> attrs snapshots), for the quiescent-correctness tests.
        self.observed_states: List[List[Dict[str, Dict[str, Any]]]] = [
            [] for _ in range(n_sites)
        ]
        self.undo_redo_events = [0] * n_sites

    # ------------------------------------------------------------------
    # Harness interface
    # ------------------------------------------------------------------

    def issue(self, site: int, object_id: str, op_type: str, value: Any) -> UpdateProbe:
        """A user gesture: one high-level operation on one object."""
        self._clock[site] += 1
        vt = VirtualTime(self._clock[site], site)
        probe = UpdateProbe(origin=site, value=(op_type, value), issue_time_ms=self.scheduler.now)
        probe.local_echo_ms = self.scheduler.now
        self.probes.append(probe)
        op = Operation(
            vt=vt,
            object_id=object_id,
            op_type=op_type,
            value=value,
            probe_index=len(self.probes) - 1,
            clock=self._clock[site],
        )
        self._integrate(site, op)
        for dst in range(self.n_sites):
            if dst != site:
                self.network.send(site, dst, op)
        return probe

    def issue_update(self, site: int, value: Any) -> UpdateProbe:
        """BaselineSystem interface: a blind write of a single attribute."""
        return self.issue(site, "obj", "set", value)

    def value_at(self, site: int) -> Any:
        return self._states[site].get("obj", {}).get("set")

    def committed_value_at(self, site: int) -> Any:
        # ORESTE commits via a global sweep (not modeled here; see
        # GvtSystem for the latency structure); the optimistic value is
        # what views observe.
        return self.value_at(site)

    def state_at(self, site: int) -> Dict[str, Dict[str, Any]]:
        """Deep copy of a site's materialized object states."""
        return {obj: dict(attrs) for obj, attrs in self._states[site].items()}

    # ------------------------------------------------------------------
    # The operation-history algorithm
    # ------------------------------------------------------------------

    def _integrate(self, site: int, op: Operation) -> None:
        log = self._logs[site]
        # Find the timestamp-ordered position.
        pos = len(log)
        while pos > 0 and op.vt < log[pos - 1].vt:
            pos -= 1
        suffix = log[pos:]
        if suffix and not all(self.commutes(op, later) for later in suffix):
            # Undo/redo: roll back the non-commuting suffix, insert, replay.
            self.undo_redo_events[site] += 1
            del log[pos:]
            self._rebuild_state(site)
            log.insert(pos, op)
            self._apply(site, op)
            for later in suffix:
                log.append(later)
                self._apply(site, later)
        else:
            # Straggler commutes with everything after it (or no suffix):
            # apply in place; final state is order-independent.
            log.insert(pos, op)
            self._apply(site, op)
        self.observed_states[site].append(self.state_at(site))
        probe = self.probes[op.probe_index]
        probe.visible_ms.setdefault(site, self.scheduler.now)

    def _rebuild_state(self, site: int) -> None:
        self._states[site] = {}
        for op in self._logs[site]:
            self._apply(site, op, record=False)

    def _apply(self, site: int, op: Operation, record: bool = True) -> None:
        attrs = self._states[site].setdefault(op.object_id, {})
        attrs[op.op_type] = op.value

    def on_message(self, site: int, src: int, payload: Any) -> None:
        if isinstance(payload, Operation):
            self._clock[site] = max(self._clock[site], payload.clock) + 1
            self._integrate(site, payload)
            return
        raise TypeError(f"unexpected payload {payload!r}")

    # ------------------------------------------------------------------
    # Analysis helpers for the section 6 criticisms
    # ------------------------------------------------------------------

    def transition_sets(self, object_id: str) -> List[set]:
        """Per site: the set of (attrs as frozenset) states the object
        passed through — used to exhibit non-quiescent divergence."""
        out = []
        for site_states in self.observed_states:
            seen = set()
            for snapshot in site_states:
                attrs = snapshot.get(object_id)
                if attrs is not None:
                    seen.add(frozenset(attrs.items()))
            out.append(seen)
        return out
