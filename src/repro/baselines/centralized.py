"""Non-replicated (centralized) architecture baseline.

The shared-application-server architecture of the paper's introduction:
"only one instance of the application executes and GUI events are multicast
to all the clients" (shared X servers).  Site 0 is the server and owns the
only copy of the state; every user gesture is shipped to the server, which
applies it and multicasts the refreshed state to all clients — so even the
*initiating* user's display updates only after a full round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.baselines.common import BaselineSystem, UpdateProbe


@dataclass(frozen=True)
class ClientOp:
    probe_index: int
    value: Any


@dataclass(frozen=True)
class StateRefresh:
    probe_index: int
    value: Any


class CentralizedSystem(BaselineSystem):
    """Server at site 0; sites 1..N-1 are thin clients."""

    name = "centralized"

    def __init__(self, n_sites: int, latency_ms: float = 50.0, seed: int = 0) -> None:
        super().__init__(n_sites, latency_ms=latency_ms, seed=seed)
        self._server_value: Any = 0
        self._displays: List[Any] = [0] * n_sites
        self.server = 0

    def issue_update(self, site: int, value: Any) -> UpdateProbe:
        probe = UpdateProbe(origin=site, value=value, issue_time_ms=self.scheduler.now)
        self.probes.append(probe)
        index = len(self.probes) - 1
        op = ClientOp(probe_index=index, value=value)
        if site == self.server:
            self._apply_at_server(op)
        else:
            self.network.send(site, self.server, op)
        return probe

    def _apply_at_server(self, op: ClientOp) -> None:
        self._server_value = op.value
        refresh = StateRefresh(probe_index=op.probe_index, value=op.value)
        self._show(self.server, refresh)
        for dst in range(self.n_sites):
            if dst != self.server:
                self.network.send(self.server, dst, refresh)

    def _show(self, site: int, refresh: StateRefresh) -> None:
        self._displays[site] = refresh.value
        probe = self.probes[refresh.probe_index]
        now = self.scheduler.now
        probe.visible_ms.setdefault(site, now)
        probe.committed_ms.setdefault(site, now)
        if site == probe.origin and probe.local_echo_ms is None:
            probe.local_echo_ms = now

    def value_at(self, site: int) -> Any:
        return self._displays[site]

    def committed_value_at(self, site: int) -> Any:
        return self._displays[site]

    def on_message(self, site: int, src: int, payload: Any) -> None:
        if isinstance(payload, ClientOp):
            assert site == self.server
            self._apply_at_server(payload)
        elif isinstance(payload, StateRefresh):
            self._show(site, payload)
        else:
            raise TypeError(f"unexpected payload {payload!r}")
