"""Pessimistic primary-copy two-phase-locking baseline.

The database-style alternative the paper contrasts with in section 6:
"almost all databases use pessimistic concurrency control because it gives
much better throughput ... In interactive groupware systems, pessimistic
strategies are not always suitable because of impact on response times to
user actions."

Protocol: a site wanting to update the shared object requests the lock
from the object's primary (site 0); the grant carries the current value;
the holder applies its update locally (this is the first moment its own
GUI can echo — a full round trip after the gesture), broadcasts the new
value to all replicas, and releases the lock.  The primary queues
conflicting requests FIFO.  Updates are committed the moment they apply
(pessimism: nothing is ever rolled back).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from collections import deque

from repro.baselines.common import BaselineSystem, UpdateProbe


@dataclass(frozen=True)
class LockRequest:
    requester: int
    probe_index: int


@dataclass(frozen=True)
class LockGrant:
    probe_index: int
    current_value: Any


@dataclass(frozen=True)
class ValueUpdate:
    probe_index: int
    value: Any


@dataclass(frozen=True)
class LockRelease:
    holder: int


class LockingSystem(BaselineSystem):
    """One shared object; primary at site 0 serializes via a queued lock."""

    name = "primary-locking"

    def __init__(self, n_sites: int, latency_ms: float = 50.0, seed: int = 0) -> None:
        super().__init__(n_sites, latency_ms=latency_ms, seed=seed)
        self._values: List[Any] = [0] * n_sites
        self._lock_free = True
        self._queue: Deque[LockRequest] = deque()
        self.primary = 0

    # ------------------------------------------------------------------
    # Harness interface
    # ------------------------------------------------------------------

    def issue_update(self, site: int, value: Any) -> UpdateProbe:
        probe = UpdateProbe(origin=site, value=value, issue_time_ms=self.scheduler.now)
        self.probes.append(probe)
        index = len(self.probes) - 1
        request = LockRequest(requester=site, probe_index=index)
        if site == self.primary:
            self._handle_lock_request(request)
        else:
            self.network.send(site, self.primary, request)
        return probe

    def value_at(self, site: int) -> Any:
        return self._values[site]

    def committed_value_at(self, site: int) -> Any:
        return self._values[site]  # pessimistic: applied == committed

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def _handle_lock_request(self, request: LockRequest) -> None:
        if self._lock_free:
            self._lock_free = False
            self._grant(request)
        else:
            self._queue.append(request)

    def _grant(self, request: LockRequest) -> None:
        grant = LockGrant(
            probe_index=request.probe_index, current_value=self._values[self.primary]
        )
        if request.requester == self.primary:
            self._on_grant(self.primary, grant)
        else:
            self.network.send(self.primary, request.requester, grant)

    def _on_grant(self, site: int, grant: LockGrant) -> None:
        probe = self.probes[grant.probe_index]
        now = self.scheduler.now
        # Holding the lock, the site applies its update: first local echo.
        self._values[site] = probe.value
        probe.local_echo_ms = now
        probe.visible_ms[site] = now
        probe.committed_ms[site] = now
        update = ValueUpdate(probe_index=grant.probe_index, value=probe.value)
        for dst in range(self.n_sites):
            if dst != site:
                self.network.send(site, dst, update)
        if site == self.primary:
            self._release()
        else:
            self.network.send(site, self.primary, LockRelease(holder=site))

    def _release(self) -> None:
        self._lock_free = True
        if self._queue:
            self._lock_free = False
            self._grant(self._queue.popleft())

    def on_message(self, site: int, src: int, payload: Any) -> None:
        if isinstance(payload, LockRequest):
            assert site == self.primary
            self._handle_lock_request(payload)
        elif isinstance(payload, LockGrant):
            self._on_grant(site, payload)
        elif isinstance(payload, ValueUpdate):
            self._values[site] = payload.value
            probe = self.probes[payload.probe_index]
            probe.visible_ms.setdefault(site, self.scheduler.now)
            probe.committed_ms.setdefault(site, self.scheduler.now)
        elif isinstance(payload, LockRelease):
            assert site == self.primary
            self._release()
        else:
            raise TypeError(f"unexpected payload {payload!r}")
