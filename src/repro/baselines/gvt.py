"""Global-Virtual-Time sweep baseline (Jefferson-style commit point).

Optimistic replication identical in spirit to DECAF's update propagation —
updates apply locally with zero latency and broadcast to all replicas — but
the *commit point* is a network-wide GVT sweep: a token circulates all N
sites in a ring, collecting the minimum Lamport clock; after a full round,
the minimum bounds every future (and in-flight) update's VT, so state below
it is stable/committed.  The token carries the previous completed round's
GVT, so sites learn commitment as the token passes.

This is the commit discipline of the systems the paper contrasts itself
with (ORESTE, COAST — section 5.1.3 and 6): "commit speed depends upon the
frequency of global sweeps", and the sweep is proportional to the size of
the network.  DECAF's per-collaboration-set primaries need a constant
number of confirmations instead.

Implementation notes: values converge by last-writer-wins on VT (blind
writes), matching the DECAF configuration used in the scalability
experiment; the commit rule "counter < previous round minimum" is safe
because clocks are monotone and any in-flight update's counter is at most
its sender's stamped clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.common import BaselineSystem, UpdateProbe
from repro.vtime import VirtualTime


@dataclass(frozen=True)
class GvtUpdate:
    vt: VirtualTime
    value: Any
    probe_index: int
    clock: int


@dataclass(frozen=True)
class GvtToken:
    round_id: int
    min_counter: int  # running minimum of this round's site stamps
    gvt: int  # completed GVT from the previous round
    clock: int


class GvtSystem(BaselineSystem):
    """N fully replicated sites; commit via a circulating GVT token."""

    name = "gvt-sweep"

    def __init__(
        self,
        n_sites: int,
        latency_ms: float = 50.0,
        seed: int = 0,
        start_token: bool = True,
    ) -> None:
        super().__init__(n_sites, latency_ms=latency_ms, seed=seed)
        self._clock = [0] * n_sites
        # Per site: VT-sorted update list (the newest visible value wins).
        self._entries: List[List[GvtUpdate]] = [[] for _ in range(n_sites)]
        self._committed_counter = [0] * n_sites  # local knowledge of GVT
        self._initial: Any = 0
        self.rounds_completed = 0
        if start_token and n_sites > 1:
            self.scheduler.call_at(
                0.0,
                lambda: self.network.send(
                    0, 1 % n_sites, GvtToken(round_id=0, min_counter=self._clock[0], gvt=0, clock=self._clock[0])
                ),
                label="gvt-token-start",
            )

    # ------------------------------------------------------------------
    # Harness interface
    # ------------------------------------------------------------------

    def issue_update(self, site: int, value: Any) -> UpdateProbe:
        self._clock[site] += 1
        vt = VirtualTime(self._clock[site], site)
        probe = UpdateProbe(origin=site, value=value, issue_time_ms=self.scheduler.now)
        probe.local_echo_ms = self.scheduler.now  # optimistic: instant echo
        probe.visible_ms[site] = self.scheduler.now
        self.probes.append(probe)
        index = len(self.probes) - 1
        update = GvtUpdate(vt=vt, value=value, probe_index=index, clock=self._clock[site])
        if self.n_sites == 1:
            self._committed_counter[site] = self._clock[site] + 1
        self._apply(site, update)
        for dst in range(self.n_sites):
            if dst != site:
                self.network.send(site, dst, update)
        return probe

    def value_at(self, site: int) -> Any:
        entries = self._entries[site]
        return entries[-1].value if entries else self._initial

    def committed_value_at(self, site: int) -> Any:
        committed = [e for e in self._entries[site] if self._is_committed(site, e)]
        return committed[-1].value if committed else self._initial

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _is_committed(self, site: int, entry: GvtUpdate) -> bool:
        return entry.vt.counter < self._committed_counter[site]

    def _apply(self, site: int, update: GvtUpdate) -> None:
        entries = self._entries[site]
        pos = len(entries)
        while pos > 0 and update.vt < entries[pos - 1].vt:
            pos -= 1
        entries.insert(pos, update)
        probe = self.probes[update.probe_index]
        if site not in probe.visible_ms:
            probe.visible_ms[site] = self.scheduler.now
        if self._is_committed(site, update):
            probe.committed_ms.setdefault(site, self.scheduler.now)

    def _note_commit_progress(self, site: int) -> None:
        """Record commit times for entries newly below the local GVT."""
        for entry in self._entries[site]:
            if self._is_committed(site, entry):
                self.probes[entry.probe_index].committed_ms.setdefault(
                    site, self.scheduler.now
                )

    def on_message(self, site: int, src: int, payload: Any) -> None:
        if isinstance(payload, GvtUpdate):
            self._clock[site] = max(self._clock[site], payload.clock) + 1
            self._apply(site, payload)
            self._note_commit_progress(site)
            return
        if isinstance(payload, GvtToken):
            self._clock[site] = max(self._clock[site], payload.clock) + 1
            # Learn the latest completed GVT carried by the token.
            if payload.gvt > self._committed_counter[site]:
                self._committed_counter[site] = payload.gvt
                self._note_commit_progress(site)
            nxt = (site + 1) % self.n_sites
            if site == 0:
                # The token returned home: the round's running minimum is
                # the new GVT; start the next round.
                self.rounds_completed += 1
                new_gvt = max(self._committed_counter[site], payload.min_counter)
                self._committed_counter[site] = new_gvt
                self._note_commit_progress(site)
                token = GvtToken(
                    round_id=payload.round_id + 1,
                    min_counter=self._clock[site],
                    gvt=new_gvt,
                    clock=self._clock[site],
                )
            else:
                token = GvtToken(
                    round_id=payload.round_id,
                    min_counter=min(payload.min_counter, self._clock[site]),
                    gvt=payload.gvt,
                    clock=self._clock[site],
                )
            self.network.send(site, nxt, token)
            return
        raise TypeError(f"unexpected payload {payload!r}")

    def run_with_token(self, ms: float) -> None:
        """Advance the simulation (the token keeps circulating)."""
        self.scheduler.run(until=self.scheduler.now + ms)
