"""`repro top`: a live terminal dashboard over exported telemetry files.

The live processes (``examples/two_process_tcp.py --trace-dir``, any
process using :func:`repro.obs.prom.flush_periodically` plus a
:class:`~repro.obs.agg.TelemetryAggregator`) periodically rewrite two
kinds of files into a directory:

* ``metrics*.prom`` — Prometheus 0.0.4 text snapshots of their
  registries (counters, histograms, sketch-backed summaries);
* ``agg*.json`` — windowed per-tenant rollup snapshots (``repro-agg/1``).

This module is the read side: :func:`read_dashboard` tails those files
(atomic-replace writes mean a reader never sees a torn snapshot),
fuses the per-process aggregates with
:func:`~repro.obs.agg.merge_agg_snapshots`, and derives per-tenant
commit rates, latency quantiles, and active SLO alerts;
:func:`render_dashboard` turns the result into a fixed-width text frame.
Both are pure functions of the file contents, so the CLI smoke test
(``repro top --once`` in the tcp-smoke job) is deterministic given the
files on disk.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.agg import merge_agg_snapshots
from repro.obs.prom import parse_prometheus_text

__all__ = ["DashboardState", "TenantRow", "read_dashboard", "render_dashboard"]

#: Alert when the abort burn rate (bad fraction / error budget) exceeds
#: this in both the newest window and the whole retained horizon —
#: mirroring the fast/slow multi-window rule in repro.obs.health.
ABORT_OBJECTIVE = 0.90
ABORT_BURN_THRESHOLD = 3.0
ABORT_MIN_EVENTS = 8


@dataclass
class TenantRow:
    """One tenant's line in the dashboard."""

    tenant: str
    commits: int
    aborts: int
    commits_per_s: float
    p50_ms: float
    p99_ms: float
    notify_p99_ms: float
    alerts: List[str] = field(default_factory=list)


@dataclass
class DashboardState:
    """Everything one frame renders, derived from the telemetry files."""

    directory: str
    prom_files: List[str]
    agg_files: List[str]
    #: Process-wide counters summed over all .prom files.
    transport: Dict[str, float]
    rows: List[TenantRow]
    window_ms: float
    alerts: List[str]


def _read_if_exists(path: str) -> Optional[str]:
    try:
        with open(path) as fh:
            return fh.read()
    except OSError:
        return None


#: Transport counters surfaced in the header line (prom family names).
_TRANSPORT_FAMILIES = {
    "repro_transport_frames_sent_total": "frames_sent",
    "repro_transport_frames_received_total": "frames_received",
    "repro_transport_sends_sampled_out_total": "sends_sampled_out",
    "repro_transport_deliveries_sampled_out_total": "deliveries_sampled_out",
}


def _tenant_rows(merged: Dict[str, Any]) -> Tuple[List[TenantRow], List[str]]:
    windows = merged.get("windows", [])
    window_s = merged.get("window_ms", 1000.0) / 1000.0
    if not windows:
        return [], []
    latest = windows[-1]
    # Aggregate over every retained window (the "slow" horizon)...
    totals: Dict[str, Dict[str, Any]] = {}
    for window in windows:
        for tenant, cell in window["tenants"].items():
            agg = totals.setdefault(
                tenant, {"commits": 0, "aborts": 0, "latest_commits": 0,
                         "p50": 0.0, "p99": 0.0, "notify_p99": 0.0}
            )
            agg["commits"] += cell["counters"].get("commits", 0)
            agg["aborts"] += cell["counters"].get("aborts", 0)
            quantiles = cell.get("quantiles", {})
            if "commit_latency_ms" in quantiles:
                agg["p50"] = quantiles["commit_latency_ms"]["p50"]
                agg["p99"] = quantiles["commit_latency_ms"]["p99"]
            if "notify_lag_ms" in quantiles:
                agg["notify_p99"] = quantiles["notify_lag_ms"]["p99"]
    # ...and read the rate + alert fast-window from the newest one.
    rows: List[TenantRow] = []
    alerts: List[str] = []
    budget = 1.0 - ABORT_OBJECTIVE
    for tenant in sorted(totals):
        agg = totals[tenant]
        latest_cell = latest["tenants"].get(tenant, {"counters": {}})
        latest_commits = latest_cell["counters"].get("commits", 0)
        latest_aborts = latest_cell["counters"].get("aborts", 0)
        row = TenantRow(
            tenant=tenant,
            commits=agg["commits"],
            aborts=agg["aborts"],
            commits_per_s=latest_commits / window_s,
            p50_ms=agg["p50"],
            p99_ms=agg["p99"],
            notify_p99_ms=agg["notify_p99"],
        )
        fast_total = latest_commits + latest_aborts
        slow_total = agg["commits"] + agg["aborts"]
        if fast_total >= ABORT_MIN_EVENTS and slow_total:
            fast_burn = (latest_aborts / fast_total) / budget
            slow_burn = (agg["aborts"] / slow_total) / budget
            if fast_burn >= ABORT_BURN_THRESHOLD and slow_burn >= ABORT_BURN_THRESHOLD:
                msg = (
                    f"{tenant}: abort burn {fast_burn:.1f}x fast / "
                    f"{slow_burn:.1f}x slow (SLO {ABORT_OBJECTIVE:.0%})"
                )
                row.alerts.append(msg)
                alerts.append(msg)
        rows.append(row)
    rows.sort(key=lambda r: (-r.commits_per_s, -r.commits, r.tenant))
    return rows, alerts


def read_dashboard(directory: str) -> DashboardState:
    """Build one dashboard frame from the files currently in ``directory``."""
    prom_files = sorted(glob.glob(os.path.join(directory, "*.prom")))
    agg_files = sorted(glob.glob(os.path.join(directory, "agg*.json")))

    transport: Dict[str, float] = {}
    for path in prom_files:
        text = _read_if_exists(path)
        if text is None:
            continue
        _types, samples = parse_prometheus_text(text)
        for name, _labels, value in samples:
            label = _TRANSPORT_FAMILIES.get(name)
            if label is not None:
                transport[label] = transport.get(label, 0.0) + value

    snapshots = []
    for path in agg_files:
        text = _read_if_exists(path)
        if text is None:
            continue
        try:
            snap = json.loads(text)
        except ValueError:
            continue  # mid-write on a non-atomic writer; next refresh wins
        if isinstance(snap, dict) and snap.get("format") == "repro-agg/1":
            snapshots.append(snap)
    merged = merge_agg_snapshots(*snapshots) if snapshots else {"windows": []}
    rows, alerts = _tenant_rows(merged)
    return DashboardState(
        directory=directory,
        prom_files=prom_files,
        agg_files=agg_files,
        transport=transport,
        rows=rows,
        window_ms=merged.get("window_ms", 0.0) or 0.0,
        alerts=alerts,
    )


def render_dashboard(state: DashboardState, max_rows: int = 20) -> str:
    """One fixed-width text frame (no ANSI codes — the CLI adds those)."""
    lines: List[str] = []
    lines.append(
        f"repro top — {state.directory}  "
        f"({len(state.prom_files)} prom, {len(state.agg_files)} agg files)"
    )
    if state.transport:
        parts = [f"{k}={int(v)}" for k, v in sorted(state.transport.items())]
        lines.append("transport: " + "  ".join(parts))
    if state.window_ms:
        lines.append(f"window: {state.window_ms:.0f} ms")
    lines.append("")
    header = (
        f"{'tenant':<24} {'commits':>8} {'aborts':>7} {'c/s':>8} "
        f"{'p50 ms':>9} {'p99 ms':>9} {'notify p99':>11}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    if not state.rows:
        lines.append("(no per-tenant aggregates yet)")
    for row in state.rows[:max_rows]:
        flag = " !" if row.alerts else ""
        lines.append(
            f"{row.tenant:<24} {row.commits:>8} {row.aborts:>7} "
            f"{row.commits_per_s:>8.1f} {row.p50_ms:>9.2f} {row.p99_ms:>9.2f} "
            f"{row.notify_p99_ms:>11.2f}{flag}"
        )
    hidden = len(state.rows) - max_rows
    if hidden > 0:
        lines.append(f"... {hidden} more tenant(s)")
    lines.append("")
    if state.alerts:
        lines.append(f"ALERTS ({len(state.alerts)}):")
        for alert in state.alerts:
            lines.append(f"  ! {alert}")
    else:
        lines.append("alerts: none")
    return "\n".join(lines)
