"""Per-site metrics registry: counters, gauges, deterministic histograms.

Replaces the scattered ad-hoc integer attributes (``engine.commits``,
``failures.graphs_repaired``, per-proxy notification counts) with one
registry per :class:`~repro.core.site.SiteRuntime`.  Existing attribute
access keeps working — the engine and failure manager expose registry-backed
properties — but every counter is now also enumerable, snapshotable, and
exported alongside traces.

Everything here is deterministic: histograms use *fixed* bucket boundaries
and observe *simulated* quantities (latency in simulated ms, attempt
counts), never the wall clock, so a metrics snapshot for a given seed is
byte-stable across runs and platforms.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # import cycle: sketch -> wire -> batch -> metrics
    from repro.obs.sketch import QuantileSketch

#: Quantiles a summary exports (Prometheus ``quantile`` label values).
SUMMARY_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

#: Default bucket upper bounds (simulated milliseconds) for latency
#: histograms.  Chosen to straddle the simulator's common latency models
#: (5–200 ms links): sub-RTT, one-RTT, multi-round, and retry-backoff tails.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Bucket bounds for small integer distributions (attempt counts, fanout
#: sizes): one bucket per value up to 8, then a tail.
COUNT_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 16.0)


class Histogram:
    """A fixed-bucket histogram with deterministic accounting.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last edge.  ``counts``/``total``/``sum``
    are exact (no sampling), so two runs that observe the same sequence of
    values produce identical snapshots.
    """

    __slots__ = ("bounds", "counts", "total", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS_MS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bisect_left on the upper edges makes each bound inclusive:
        # bucket i covers (bounds[i-1], bounds[i]], overflow past the end.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-serializable snapshot."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": round(self.sum, 6),
            "mean": round(self.mean, 6),
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram(total={self.total}, mean={self.mean:.2f})"


class MetricsRegistry:
    """One site's metrics: named counters, gauges, and histograms.

    Names are dotted strings (``txn.commits``, ``view.lost_updates``,
    ``txn.commit_latency_ms``).  Counters spring into existence at zero on
    first touch; histograms must declare their buckets once via
    :meth:`histogram` (re-declaring with the same bounds is a no-op).
    """

    __slots__ = ("site", "counters", "gauges", "histograms", "summaries")

    def __init__(self, site: int = -1) -> None:
        self.site = site
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.summaries: Dict[str, "QuantileSketch"] = {}

    # -- counters --------------------------------------------------------

    def inc(self, name: str, delta: int = 1) -> int:
        value = self.counters.get(name, 0) + delta
        self.counters[name] = value
        return value

    def set_counter(self, name: str, value: int) -> None:
        self.counters[name] = value

    def value(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- gauges ----------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # -- histograms ------------------------------------------------------

    def histogram(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS_MS) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(bounds)
            self.histograms[name] = hist
        return hist

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = LATENCY_BUCKETS_MS) -> None:
        self.histogram(name, bounds).observe(value)

    # -- summaries (sketch-backed quantiles) -----------------------------

    def summary(
        self, name: str, relative_accuracy: Optional[float] = None
    ) -> "QuantileSketch":
        """Get-or-create the quantile sketch behind summary ``name``.

        Unlike :meth:`histogram`, a summary has no fixed bounds: the
        sketch guarantees every exported quantile is within
        ``relative_accuracy`` (default
        :data:`repro.obs.sketch.DEFAULT_RELATIVE_ACCURACY`) of the true
        value regardless of scale.
        """
        sketch = self.summaries.get(name)
        if sketch is None:
            # Deferred import: sketch pulls the wire codec, which pulls
            # this module back in through repro.wire.batch.
            from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

            if relative_accuracy is None:
                relative_accuracy = DEFAULT_RELATIVE_ACCURACY
            sketch = self.summaries[name] = QuantileSketch(relative_accuracy)
        return sketch

    def observe_summary(self, name: str, value: float) -> None:
        self.summary(name).observe(value)

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic full dump: keys sorted, histograms expanded.

        The ``summaries`` key appears only when a summary exists, so
        snapshots from registries that never used one keep their
        pre-sketch shape byte-for-byte.
        """
        snap = {
            "site": self.site,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].to_dict() for k in sorted(self.histograms)},
        }
        if self.summaries:
            snap["summaries"] = {
                k: summary_dict(self.summaries[k]) for k in sorted(self.summaries)
            }
        return snap

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(site={self.site}, {len(self.counters)} counters, "
            f"{len(self.histograms)} histograms)"
        )


def summary_dict(sketch: "QuantileSketch") -> Dict[str, Any]:
    """The prom.py-consumable rendering of one summary sketch.

    Quantile keys are strings (``"0.5"``) because they become Prometheus
    ``quantile`` label values verbatim.
    """
    return {
        "quantiles": {str(q): round(sketch.quantile(q), 6) for q in SUMMARY_QUANTILES},
        "sum": round(sketch.sum, 6),
        "count": sketch.total,
    }


def counter_property(name: str, doc: Optional[str] = None) -> property:
    """A registry-backed int attribute for protocol components.

    Lets existing call sites (``engine.commits += 1``, tests asserting
    ``site.engine.aborts_conflict``) keep their shape while the value
    lives in ``site.metrics``.  The owning object must expose ``site``
    with a ``metrics`` registry.
    """

    def _get(self) -> int:
        return self.site.metrics.value(name)

    def _set(self, value: int) -> None:
        self.site.metrics.set_counter(name, value)

    return property(_get, _set, doc=doc or f"Registry-backed counter {name!r}.")
