"""Offline causal analysis over recorded protocol timelines.

Three analyses, all derived purely from :class:`~repro.obs.events.ProtocolEvent`
streams (live bus recordings or timelines re-loaded from explorer violation
artifacts):

* :class:`CausalGraph` — the cross-site **happens-before DAG**: same-site
  program order plus message send→deliver edges (paired by the network's
  ``msg_id``).  Reachability over this graph *is* Lamport happens-before
  for the recorded run, which lets tests validate a causal chain
  edge-by-edge against the actual message timeline.
* :func:`commit_critical_paths` — **critical-path attribution**: each
  committed transaction's end-to-end latency decomposed into
  ``submit_fanout`` (local execution + local primary checks), ``transit``
  (fan-out send → propagate delivery at the deciding primary),
  ``validate`` (delivery → primary validation), and ``ack`` (validation →
  summary resolution).  The four segments are built as a monotone chain of
  marks between submit and resolution, so they always sum *exactly* to the
  span's ``duration_ms`` — missing marks collapse to zero-length segments
  instead of breaking the identity.
* :class:`GuessGraph` — the **guess-dependency graph**: one node per
  transaction VT, one edge per RC/RL/NC guess on another transaction's
  (uncommitted or conflicting) state, taken from ``guess_made``
  ``depends_on`` fields and from the guessed-against VT sets carried on
  ``validated`` denial events.  ``dependency_chain`` walks the transitive
  closure — the cascade that explains an abort or a straggler — and the
  graph exports as DOT and JSONL.

Everything is deterministic: inputs are seq-ordered event streams, all
iteration orders are explicit, and every serialization sorts its keys, so
a given seed produces byte-identical reports.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import ProtocolEvent, event_to_dict
from repro.obs.spans import TxnSpan, build_spans
from repro.vtime import VirtualTime

#: Critical-path segment names, in causal order.  Ties in the dominant-hop
#: computation resolve to the earliest segment in this order.
SEGMENTS: Tuple[str, ...] = ("submit_fanout", "transit", "validate", "ack")

_VT_RE = re.compile(r"^VT\((-?\d+)@(-?\d+)\)$")
_OBJ_RE = re.compile(r" denied on (\S+?)(?=: |$)")


def parse_vt(token: Any) -> Optional[VirtualTime]:
    """A :class:`VirtualTime` from a live VT or its ``VT(c@s)`` string form.

    Returns None for anything else (e.g. snapshot-reservation owners),
    letting analyzers accept live event streams and re-loaded JSON
    timelines interchangeably.
    """
    if isinstance(token, VirtualTime):
        return token
    if isinstance(token, str):
        match = _VT_RE.match(token)
        if match:
            return VirtualTime(int(match.group(1)), int(match.group(2)))
    return None


def normalize_events(events: Iterable[ProtocolEvent]) -> List[ProtocolEvent]:
    """Seq-sort and round event times to export precision (6 decimals).

    :func:`~repro.obs.events.event_to_dict` rounds ``time_ms`` on export,
    so a timeline reloaded from JSON differs from the live stream by up to
    one ulp at the sixth decimal.  Every analysis entry point normalizes
    through here first, making live and re-imported timelines analyze
    byte-identically.
    """
    out = [
        e if e.time_ms == round(e.time_ms, 6) else replace(e, time_ms=round(e.time_ms, 6))
        for e in events
    ]
    out.sort(key=lambda e: e.seq)
    return out


def events_from_timeline(timeline: Iterable[Dict[str, Any]]) -> List[ProtocolEvent]:
    """Rebuild :class:`ProtocolEvent` objects from an exported timeline.

    Inverse of :func:`~repro.obs.events.event_to_dict` up to data-value
    stringification: ``txn_vt`` is parsed back into a :class:`VirtualTime`;
    data payloads keep their exported (JSON-safe) values, which
    :func:`parse_vt` re-interprets where a VT is expected.
    """
    events: List[ProtocolEvent] = []
    for entry in timeline:
        events.append(
            ProtocolEvent(
                seq=int(entry["seq"]),
                time_ms=float(entry["time_ms"]),
                site=int(entry["site"]),
                kind=str(entry["kind"]),
                txn_vt=parse_vt(entry.get("txn_vt")),
                data=dict(entry.get("data", {})),
            )
        )
    events.sort(key=lambda e: e.seq)
    return events


# ---------------------------------------------------------------------------
# Happens-before DAG
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HBEdge:
    """One happens-before edge between two recorded events (by ``seq``).

    ``kind`` is ``"program"`` (same-site order) or ``"message"`` (a
    ``message_sent`` → ``message_delivered`` pair sharing a ``msg_id``).
    """

    src: int
    dst: int
    kind: str
    label: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"src": self.src, "dst": self.dst, "kind": self.kind, "label": self.label}


class CausalGraph:
    """The happens-before DAG of one recorded timeline.

    Nodes are events (keyed by their bus ``seq``); edges are same-site
    program order plus message delivery edges.  Because the bus records in
    scheduler order, ``seq`` is a topological order of the DAG — every
    edge goes from a smaller to a larger seq — which both bounds the
    reachability search and guarantees acyclicity by construction.
    """

    def __init__(self, events: Sequence[ProtocolEvent]) -> None:
        self.events: List[ProtocolEvent] = sorted(events, key=lambda e: e.seq)
        self.by_seq: Dict[int, ProtocolEvent] = {e.seq: e for e in self.events}
        self.edges: List[HBEdge] = []
        self._succ: Dict[int, List[int]] = {}
        self._pred: Dict[int, List[int]] = {}
        self._build()

    # -- construction ----------------------------------------------------

    def _add_edge(self, src: int, dst: int, kind: str, label: str = "") -> None:
        if src == dst:
            return
        self.edges.append(HBEdge(src=src, dst=dst, kind=kind, label=label))
        self._succ.setdefault(src, []).append(dst)
        self._pred.setdefault(dst, []).append(src)

    def _build(self) -> None:
        last_at_site: Dict[int, int] = {}
        # msg_id is keyed as a string: the simulator uses bare ints, the
        # real transports "origin:seq" — str() unifies live and merged
        # timelines without caring which plane produced them.
        sends_by_msg_id: Dict[str, int] = {}
        for event in self.events:
            prev = last_at_site.get(event.site)
            if prev is not None:
                self._add_edge(prev, event.seq, "program")
            last_at_site[event.site] = event.seq
            msg_id = event.data.get("msg_id")
            if msg_id is None:
                continue
            if event.kind == "message_sent":
                sends_by_msg_id[str(msg_id)] = event.seq
            elif event.kind == "message_delivered":
                send_seq = sends_by_msg_id.get(str(msg_id))
                if send_seq is not None:
                    self._add_edge(
                        send_seq,
                        event.seq,
                        "message",
                        label=str(event.data.get("msg_type", "")),
                    )

    # -- queries ---------------------------------------------------------

    def successors(self, seq: int) -> List[int]:
        return list(self._succ.get(seq, ()))

    def predecessors(self, seq: int) -> List[int]:
        return list(self._pred.get(seq, ()))

    def happens_before(self, a_seq: int, b_seq: int) -> bool:
        """True iff event ``a`` causally precedes event ``b`` in this run."""
        if a_seq == b_seq:
            return False
        if a_seq > b_seq:  # seq is a topological order: edges only go forward
            return False
        frontier = [a_seq]
        seen = {a_seq}
        while frontier:
            node = frontier.pop()
            for succ in self._succ.get(node, ()):
                if succ == b_seq:
                    return True
                if succ < b_seq and succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False

    def path(self, a_seq: int, b_seq: int) -> Optional[List[HBEdge]]:
        """A shortest happens-before path from ``a`` to ``b`` (None if
        concurrent).  Deterministic: BFS visits successors in insertion
        order, which is seq order of edge creation."""
        if a_seq >= b_seq:
            return None
        edge_by_pair = {(e.src, e.dst): e for e in self.edges}
        parents: Dict[int, int] = {}
        frontier = [a_seq]
        seen = {a_seq}
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for succ in self._succ.get(node, ()):
                    if succ > b_seq or succ in seen:
                        continue
                    seen.add(succ)
                    parents[succ] = node
                    if succ == b_seq:
                        hops: List[HBEdge] = []
                        cur = b_seq
                        while cur != a_seq:
                            prev = parents[cur]
                            hops.append(edge_by_pair[(prev, cur)])
                            cur = prev
                        hops.reverse()
                        return hops
                    next_frontier.append(succ)
            frontier = next_frontier
        return None

    def txn_events(self, vt: VirtualTime) -> List[ProtocolEvent]:
        """All recorded events of one transaction, in seq order."""
        return [e for e in self.events if e.txn_vt == vt]

    def txn_chain(self, vt: VirtualTime) -> List[Dict[str, Any]]:
        """The transaction's lifecycle chain, each hop checked against the
        DAG.

        ``connected`` reports whether the recorded message timeline
        contains a happens-before path between consecutive same-VT events,
        and ``via`` lists the hop's edge kinds.  A False ``connected``
        marks genuine concurrency — e.g. a local validation racing a
        remote delivery, or parallel deliveries at two replicas — which is
        expected for fan-out protocols; use :func:`abort_causal_chain` for
        the strictly-causal submit → denial → abort story.
        """
        chain: List[Dict[str, Any]] = []
        events = self.txn_events(vt)
        for prev, cur in zip(events, events[1:]):
            if prev.site == cur.site:
                hops: Optional[List[HBEdge]] = [
                    HBEdge(src=prev.seq, dst=cur.seq, kind="program")
                ]
            else:
                hops = self.path(prev.seq, cur.seq)
            chain.append(
                {
                    "src_seq": prev.seq,
                    "dst_seq": cur.seq,
                    "src": f"{prev.kind}@s{prev.site}",
                    "dst": f"{cur.kind}@s{cur.site}",
                    "connected": hops is not None,
                    "via": [h.kind for h in hops] if hops else [],
                }
            )
        return chain

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {"events": len(self.events)}
        for edge in self.edges:
            out[f"edges_{edge.kind}"] = out.get(f"edges_{edge.kind}", 0) + 1
        return out

    def __repr__(self) -> str:
        return f"CausalGraph({len(self.events)} events, {len(self.edges)} edges)"


def build_causal_graph(events: Sequence[ProtocolEvent]) -> CausalGraph:
    """Construct the happens-before DAG for a recorded timeline."""
    return CausalGraph(events)


def _hop_dicts(graph: CausalGraph, hops: Sequence[HBEdge]) -> List[Dict[str, Any]]:
    out = []
    for hop in hops:
        src, dst = graph.by_seq[hop.src], graph.by_seq[hop.dst]
        out.append(
            {
                "src_seq": hop.src,
                "dst_seq": hop.dst,
                "src": f"{src.kind}@s{src.site}",
                "dst": f"{dst.kind}@s{dst.site}",
                "kind": hop.kind,
                "label": hop.label,
            }
        )
    return out


def abort_causal_chain(graph: CausalGraph, vt: VirtualTime) -> Dict[str, Any]:
    """The strictly-causal happens-before path explaining one abort.

    Walks the DAG from the transaction's submit to the first denial
    (``validated`` with ``ok=False``, when one was recorded) and from the
    denial to the origin-site abort — every hop is a real program-order or
    message edge of the recorded timeline, which is what the conformance
    tests validate edge-by-edge.  Without a denial event (user abort,
    join/membership denial decided off the validated path) the chain runs
    submit → abort directly.
    """
    events = graph.txn_events(vt)
    submit = next((e for e in events if e.kind == "txn_submitted"), None)
    origin_abort = next(
        (e for e in events if e.kind == "aborted" and e.site == vt.site), None
    )
    denial = next(
        (e for e in events if e.kind == "validated" and not e.data.get("ok", True)),
        None,
    )
    if submit is None or origin_abort is None:
        return {"connected": False, "via_denial": False, "hops": []}
    hops: List[Dict[str, Any]] = []
    connected = True
    waypoints = [submit]
    if denial is not None:
        waypoints.append(denial)
    waypoints.append(origin_abort)
    for a, b in zip(waypoints, waypoints[1:]):
        leg = graph.path(a.seq, b.seq)
        if leg is None:
            connected = False
            continue
        hops.extend(_hop_dicts(graph, leg))
    return {"connected": connected, "via_denial": denial is not None, "hops": hops}


# ---------------------------------------------------------------------------
# Commit critical-path attribution
# ---------------------------------------------------------------------------


@dataclass
class CommitCriticalPath:
    """One committed transaction's latency decomposition.

    ``segments`` maps each name in :data:`SEGMENTS` to a simulated-ms
    duration; by construction ``sum(segments.values()) == duration_ms``
    exactly (the marks form a monotone chain from submit to resolution).
    ``validator_site`` is the site whose primary validation decided the
    transaction (-1 when no remote validation was recorded, e.g. a purely
    local commit).
    """

    vt: VirtualTime
    origin: int
    validator_site: int
    duration_ms: float
    segments: Dict[str, float]
    dominant: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vt": str(self.vt),
            "origin": self.origin,
            "validator_site": self.validator_site,
            "duration_ms": round(self.duration_ms, 6),
            "segments": {name: round(self.segments[name], 6) for name in SEGMENTS},
            "dominant": self.dominant,
        }


def _first_remote_validated(
    events: Sequence[ProtocolEvent], vt: VirtualTime, origin: int
) -> Optional[ProtocolEvent]:
    for event in events:
        if event.kind == "validated" and event.txn_vt == vt and event.site != origin:
            return event
    return None


def _propagate_delivery_before(
    events: Sequence[ProtocolEvent], vt: VirtualTime, site: int, before_seq: int
) -> Optional[ProtocolEvent]:
    """The latest TxnPropagateMsg delivery at ``site`` preceding the
    validation — the message whose arrival triggered the primary checks."""
    best: Optional[ProtocolEvent] = None
    for event in events:
        if event.seq >= before_seq:
            break
        if (
            event.kind == "message_delivered"
            and event.txn_vt == vt
            and event.site == site
            and event.data.get("msg_type") == "TxnPropagateMsg"
        ):
            best = event
    return best


def commit_critical_paths(
    events: Sequence[ProtocolEvent], spans: Optional[List[TxnSpan]] = None
) -> List[CommitCriticalPath]:
    """Per-committed-VT latency decomposition (see module docstring).

    Only spans with a recorded submit and a ``committed`` resolution are
    attributed; the result is ordered by VT (total Lamport order), so the
    report is stable regardless of event interleaving.
    """
    events = normalize_events(events)
    if spans is None:
        spans = build_spans(events)
    paths: List[CommitCriticalPath] = []
    for span in spans:
        if span.resolution != "committed" or span.submit_ms is None or span.resolved_ms is None:
            continue
        submit, resolved = span.submit_ms, span.resolved_ms
        validated = _first_remote_validated(events, span.vt, span.origin)
        validator_site = validated.site if validated is not None else -1
        deliver = (
            _propagate_delivery_before(events, span.vt, validated.site, validated.seq)
            if validated is not None
            else None
        )
        # Monotone mark chain submit → fanout → deliver → validated →
        # resolved; a missing mark collapses onto its predecessor and every
        # mark is clamped into [predecessor, resolved], so the segment
        # diffs telescope to exactly (resolved - submit).
        marks = [submit]
        for value in (
            span.first_fanout_ms,
            deliver.time_ms if deliver is not None else None,
            validated.time_ms if validated is not None else None,
        ):
            mark = marks[-1] if value is None else value
            marks.append(min(max(mark, marks[-1]), resolved))
        marks.append(max(resolved, marks[-1]))
        segments = {
            name: marks[i + 1] - marks[i] for i, name in enumerate(SEGMENTS)
        }
        dominant = max(SEGMENTS, key=lambda name: (segments[name], -SEGMENTS.index(name)))
        paths.append(
            CommitCriticalPath(
                vt=span.vt,
                origin=span.origin,
                validator_site=validator_site,
                duration_ms=resolved - submit,
                segments=segments,
                dominant=dominant,
            )
        )
    paths.sort(key=lambda p: p.vt.key)
    return paths


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Deterministic nearest-rank percentile over pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 10000))  # ceil(q*n)
    return sorted_values[min(rank, len(sorted_values)) - 1]


def critical_path_report(
    events: Sequence[ProtocolEvent], spans: Optional[List[TxnSpan]] = None
) -> Dict[str, Any]:
    """Aggregate critical-path statistics across one run.

    The report carries every per-VT decomposition plus, per segment, the
    total/mean/p50/p90/max and the share of summed end-to-end latency, and
    names the dominant hop for the run (the segment with the largest total).
    """
    paths = commit_critical_paths(events, spans)
    total_duration = sum(p.duration_ms for p in paths)
    aggregates: Dict[str, Any] = {}
    for name in SEGMENTS:
        values = sorted(p.segments[name] for p in paths)
        total = sum(values)
        aggregates[name] = {
            "total_ms": round(total, 6),
            "mean_ms": round(total / len(values), 6) if values else 0.0,
            "p50_ms": round(_percentile(values, 0.50), 6),
            "p90_ms": round(_percentile(values, 0.90), 6),
            "max_ms": round(values[-1], 6) if values else 0.0,
            "share_pct": round(100.0 * total / total_duration, 2) if total_duration else 0.0,
            "dominant_in": sum(1 for p in paths if p.dominant == name),
        }
    dominant = max(
        SEGMENTS, key=lambda name: (aggregates[name]["total_ms"], -SEGMENTS.index(name))
    )
    return {
        "format": "repro-causal/1",
        "committed": len(paths),
        "total_duration_ms": round(total_duration, 6),
        "dominant": dominant if paths else None,
        "segments": aggregates,
        "per_txn": [p.to_dict() for p in paths],
    }


def format_critical_path_report(report: Dict[str, Any], limit: int = 10) -> str:
    """A byte-stable plain-text rendering of a critical-path report."""
    lines = [
        f"commit critical path: {report['committed']} committed txns, "
        f"total {report['total_duration_ms']:.1f} ms"
    ]
    if not report["committed"]:
        lines.append("  (no committed transactions in this timeline)")
        return "\n".join(lines) + "\n"
    header = f"  {'segment':14s} {'total':>9s} {'share':>7s} {'mean':>8s} {'p50':>8s} {'p90':>8s} {'max':>8s} {'dom#':>5s}"
    lines.append(header)
    for name in SEGMENTS:
        agg = report["segments"][name]
        lines.append(
            f"  {name:14s} {agg['total_ms']:9.1f} {agg['share_pct']:6.1f}% "
            f"{agg['mean_ms']:8.1f} {agg['p50_ms']:8.1f} {agg['p90_ms']:8.1f} "
            f"{agg['max_ms']:8.1f} {agg['dominant_in']:5d}"
        )
    lines.append(f"  dominant hop: {report['dominant']}")
    slowest = sorted(
        report["per_txn"], key=lambda p: (-p["duration_ms"], p["vt"])
    )[:limit]
    if slowest:
        lines.append(f"  slowest {len(slowest)} commits:")
        for entry in slowest:
            segs = " ".join(f"{n}={entry['segments'][n]:.1f}" for n in SEGMENTS)
            lines.append(
                f"    {entry['vt']:12s} dur={entry['duration_ms']:8.1f}  {segs}"
                f"  dominant={entry['dominant']}"
            )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Guess-dependency graphs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GuessEdge:
    """One guess dependency: ``src`` guessed against ``dst``'s state.

    ``guess`` is the guess class (``RC`` — read of uncommitted state;
    ``RL``/``NC`` — denial evidence from a primary's ``validated`` event,
    with ``graph``/``snapshot`` variants).  ``dst`` is a VT string, or a
    ``snap:...`` token when the blocker was a pessimistic snapshot
    reservation rather than a transaction.
    """

    src: str
    dst: str
    guess: str
    obj: str
    site: int
    seq: int
    time_ms: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "guess": self.guess,
            "obj": self.obj,
            "site": self.site,
            "seq": self.seq,
            "time_ms": round(self.time_ms, 6),
        }


def _denial_guess_kind(reason: str) -> str:
    if reason.startswith("graph RL"):
        return "RL:graph"
    if reason.startswith("graph NC"):
        return "NC:graph"
    if "snapshot reservation" in reason:
        return "NC:snapshot"
    if reason.startswith("NC"):
        return "NC"
    return "RL"


def _against_token(value: Any) -> str:
    vt = parse_vt(value)
    if vt is not None:
        return str(vt)
    if isinstance(value, (list, tuple)):
        return ":".join(str(v) for v in value)
    return str(value)


class GuessGraph:
    """Guess-dependency graph over one timeline's transactions."""

    def __init__(self, spans: List[TxnSpan], edges: List[GuessEdge]) -> None:
        self.edges = edges
        self.nodes: Dict[str, Dict[str, Any]] = {}
        for span in spans:
            self.nodes[str(span.vt)] = {
                "vt": str(span.vt),
                "origin": span.origin,
                "resolution": span.resolution,
                "abort_reason": span.abort_reason,
                "attempt": span.attempt,
            }
        self._out: Dict[str, List[GuessEdge]] = {}
        for edge in edges:
            self._out.setdefault(edge.src, []).append(edge)
            for endpoint in (edge.src, edge.dst):
                if endpoint not in self.nodes:
                    self.nodes[endpoint] = {
                        "vt": endpoint,
                        "origin": -1,
                        "resolution": None,
                        "abort_reason": None,
                        "attempt": 0,
                    }

    def out_edges(self, vt: Any) -> List[GuessEdge]:
        return list(self._out.get(_against_token(vt), ()))

    def dependency_chain(self, vt: Any) -> List[GuessEdge]:
        """The transitive guess dependencies of ``vt``, breadth-first.

        This is the cascade that explains an abort or a straggler: the
        direct guesses ``vt`` made on other transactions' state, then the
        guesses *those* transactions made, and so on.  Deterministic:
        BFS in edge-seq order, each (src, dst, guess) visited once.
        """
        chain: List[GuessEdge] = []
        seen_edges = set()
        frontier = [_against_token(vt)]
        visited = {frontier[0]}
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for edge in sorted(self._out.get(node, ()), key=lambda e: e.seq):
                    key = (edge.src, edge.dst, edge.guess)
                    if key in seen_edges:
                        continue
                    seen_edges.add(key)
                    chain.append(edge)
                    if edge.dst not in visited:
                        visited.add(edge.dst)
                        next_frontier.append(edge.dst)
            frontier = next_frontier
        return chain

    def cascade_roots(self) -> List[str]:
        """Nodes with dependents but no dependencies of their own — the
        origin transactions straggler cascades emanate from."""
        has_in = {e.dst for e in self.edges}
        has_out = {e.src for e in self.edges}
        return sorted(has_in - has_out)

    # -- export ----------------------------------------------------------

    def to_dot(self, root: Any = None) -> str:
        """Graphviz DOT; with ``root`` given, only that VT's cascade."""
        if root is not None:
            edges = self.dependency_chain(root)
        else:
            edges = sorted(self.edges, key=lambda e: e.seq)
        node_names = sorted({e.src for e in edges} | {e.dst for e in edges})
        lines = ["digraph guesses {", "  rankdir=LR;"]
        for name in node_names:
            node = self.nodes.get(name, {})
            resolution = node.get("resolution")
            shape = "box" if name.startswith("snap:") else "ellipse"
            color = {"committed": "green", "aborted": "red"}.get(resolution, "gray")
            lines.append(
                f'  "{name}" [shape={shape}, color={color}, '
                f'label="{name}\\n{resolution or "?"}"];'
            )
        for edge in edges:
            lines.append(
                f'  "{edge.src}" -> "{edge.dst}" '
                f'[label="{edge.guess} {edge.obj}@s{edge.site}"];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"

    def to_jsonl(self) -> str:
        """One sorted-keys JSON object per edge, in evidence-seq order."""
        lines = [
            json.dumps(e.to_dict(), sort_keys=True)
            for e in sorted(self.edges, key=lambda e: e.seq)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        return f"GuessGraph({len(self.nodes)} nodes, {len(self.edges)} edges)"


def build_guess_graph(
    events: Sequence[ProtocolEvent], spans: Optional[List[TxnSpan]] = None
) -> GuessGraph:
    """Extract the guess-dependency graph from a recorded timeline."""
    events = normalize_events(events)
    if spans is None:
        spans = build_spans(events)
    edges: List[GuessEdge] = []
    seen = set()

    def add(src_vt: Any, dst: str, guess: str, obj: str, event: ProtocolEvent) -> None:
        src = _against_token(src_vt)
        key = (src, dst, guess, obj)
        if src == dst or key in seen:
            return
        seen.add(key)
        edges.append(
            GuessEdge(
                src=src,
                dst=dst,
                guess=guess,
                obj=obj,
                site=event.site,
                seq=event.seq,
                time_ms=event.time_ms,
            )
        )

    for event in events:
        if event.txn_vt is None:
            continue
        if event.kind == "guess_made" and event.data.get("guess") == "RC":
            depends_on = event.data.get("depends_on")
            if depends_on is not None:
                add(
                    event.txn_vt,
                    _against_token(depends_on),
                    "RC",
                    str(event.data.get("obj", "?")),
                    event,
                )
        elif event.kind == "validated" and not event.data.get("ok", True):
            reason = str(event.data.get("reason", ""))
            guess = _denial_guess_kind(reason)
            obj_match = _OBJ_RE.search(reason.rstrip())
            obj = obj_match.group(1) if obj_match else "?"
            for token in event.data.get("against", ()) or ():
                add(event.txn_vt, _against_token(token), guess, obj, event)
    return GuessGraph(spans, edges)


# ---------------------------------------------------------------------------
# One-call timeline analysis (CLI + explorer artifacts)
# ---------------------------------------------------------------------------


def analyze_events(events: Sequence[ProtocolEvent]) -> Dict[str, Any]:
    """The full causal analysis of one timeline, as one stable dict.

    Used by ``repro trace --analyze`` and embedded (minus the DAG itself)
    in explorer violation artifacts: the critical-path report, the
    guess-dependency cascade of every aborted transaction, the lifecycle
    chain of the first abort validated against the happens-before DAG,
    and straggler cascades (the dependency chain behind each
    ``straggler_detected`` event).
    """
    events = normalize_events(events)
    spans = build_spans(events)
    graph = build_causal_graph(events)
    guesses = build_guess_graph(events, spans)
    report = critical_path_report(events, spans)

    aborts: List[Dict[str, Any]] = []
    for span in spans:
        if span.resolution != "aborted":
            continue
        aborts.append(
            {
                "vt": str(span.vt),
                "origin": span.origin,
                "reason": span.abort_reason,
                "aborted_pre_fanout": span.aborted_pre_fanout,
                "guess_chain": [e.to_dict() for e in guesses.dependency_chain(span.vt)],
                "causal_chain": abort_causal_chain(graph, span.vt),
            }
        )
    aborts.sort(key=lambda a: a["vt"])

    stragglers: List[Dict[str, Any]] = []
    for event in events:
        if event.kind != "straggler_detected" or event.txn_vt is None:
            continue
        stragglers.append(
            {
                "seq": event.seq,
                "site": event.site,
                "time_ms": round(event.time_ms, 6),
                "flavor": str(event.data.get("flavor", "?")),
                "vt": str(event.txn_vt),
                "guess_chain": [
                    e.to_dict() for e in guesses.dependency_chain(event.txn_vt)
                ],
            }
        )

    return {
        "format": "repro-causal/1",
        "dag": graph.counts(),
        "critical_path": report,
        "aborts": aborts,
        "stragglers": stragglers,
        "guess_edges": len(guesses.edges),
        "cascade_roots": guesses.cascade_roots(),
    }


def analyze_timeline(timeline: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """:func:`analyze_events` over an exported (JSON) timeline."""
    return analyze_events(events_from_timeline(timeline))


def analysis_json(analysis: Dict[str, Any]) -> str:
    """Canonical byte-stable serialization of an analysis dict."""
    return json.dumps(analysis, indent=2, sort_keys=True) + "\n"
