"""Deterministic head-based trace sampling.

At scale the tracing plane from docs/OBSERVABILITY.md cannot record every
message: an unbounded JSONL timeline per process does not survive
millions-of-users traffic.  The standard fix (Dapper; the OpenTelemetry
``TraceIdRatioBased`` sampler) is *head-based consistent sampling*: the
origin site decides once per trace — by hashing the trace id against a
configured rate — and the decision travels in-band with every message of
that trace (the ``sampled`` flag on
:class:`repro.wire.codec.TraceContext`), so every site on the
transaction's path records or skips the *same* transaction and a
1%-sampled run still merges into complete span trees
(:mod:`repro.obs.merge`).

The hash is SHA-256 of ``salt + trace_id`` — deterministic across
processes, platforms, and Python's per-process ``PYTHONHASHSEED`` (the
builtin ``hash()`` is salted and would break cross-process consistency).
Trace ids are the transaction's origin virtual time (``counter@site``),
so the decision is a pure function of the transaction identity: two
replicas deciding independently always agree, and replaying a recorded
run samples the identical subset.

Control-plane messages carry an empty trace id (no transaction VT) and
are always sampled: joins, failure resolution, and graph repair are
low-volume and high-value, so visibility into them is never traded away.
"""

from __future__ import annotations

import hashlib
from typing import Dict

__all__ = ["TraceSampler", "sample_decision"]

_HASH_SPACE = 1 << 64


def sample_decision(trace_id: str, rate: float, salt: str = "") -> bool:
    """The pure sampling function: hash(salt + trace_id) < rate.

    Empty trace ids (control-plane messages) are always sampled.  The
    top 8 bytes of the SHA-256 digest, read big-endian, are uniform on
    [0, 2**64); comparing against ``rate * 2**64`` keeps the sampled
    fraction within one part in 2**64 of the configured rate.
    """
    if not trace_id:
        return True
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = hashlib.sha256((salt + trace_id).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") < int(rate * _HASH_SPACE)


class TraceSampler:
    """Head-based sampler a :class:`~repro.transport.tcp.TcpTransport` consults.

    ``rate`` is the sampled fraction in [0, 1].  ``salt`` varies which
    trace ids land in the sample without changing the rate (useful when
    comparing two sampled runs of the same workload).  A transport with
    no sampler behaves as before: every traced frame is recorded.

    ``record_dropped`` is a debug aid: when true, the sender still emits
    a ``message_sent`` event for head-dropped traces with
    ``"sampled": False`` in its data, so a timeline shows *that* traffic
    existed without recording its deliveries.  ``repro trace --merge``
    tallies such sends as ``sampled_out`` instead of unmatched edges.
    The default (False) emits nothing for dropped traces — the
    bounded-cost configuration the overhead gate in
    ``benchmarks/bench_obs.py`` measures.

    Decisions are memoized per trace id (a transaction sends many frames;
    the hash is computed once).  The memo is bounded and its eviction is
    deterministic — dropping a memo entry never changes a decision, only
    re-derives it.
    """

    __slots__ = ("rate", "salt", "record_dropped", "_threshold", "_memo", "_memo_cap")

    def __init__(
        self,
        rate: float,
        salt: str = "",
        record_dropped: bool = False,
        memo_size: int = 4096,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.salt = salt
        self.record_dropped = record_dropped
        self._threshold = int(self.rate * _HASH_SPACE)
        self._memo: Dict[str, bool] = {}
        self._memo_cap = memo_size

    def sample(self, trace_id: str) -> bool:
        """Decide (or recall) whether ``trace_id`` is sampled."""
        if not trace_id:
            return True
        if self._threshold >= _HASH_SPACE:
            return True
        if self._threshold == 0:
            return False
        decision = self._memo.get(trace_id)
        if decision is None:
            digest = hashlib.sha256((self.salt + trace_id).encode("utf-8")).digest()
            decision = int.from_bytes(digest[:8], "big") < self._threshold
            if len(self._memo) >= self._memo_cap:
                self._memo.clear()
            self._memo[trace_id] = decision
        return decision

    def __repr__(self) -> str:
        return f"TraceSampler(rate={self.rate}, salt={self.salt!r})"
