"""Mergeable relative-error quantile sketches (DDSketch-style).

Replaces raw-sample retention for latency distributions: a
:class:`QuantileSketch` stores log-spaced bucket counts whose width is
chosen so any quantile estimate is within a configured *relative* error
``alpha`` of the true value — p99 of a 3 ms distribution is as accurate
as p99 of a 3 s one, which fixed-bound histograms
(:class:`repro.obs.metrics.Histogram`) cannot promise.

The design follows DDSketch (Masson, Rim & Lee, VLDB 2019): bucket ``i``
covers ``(gamma**(i-1), gamma**i]`` with ``gamma = (1+alpha)/(1-alpha)``,
and the estimate for any value in bucket ``i`` is the bucket midpoint
``2 * gamma**i / (gamma + 1)``.  Because bucket indices depend only on
the observed values (never on arrival order or wall clock), two sketches
fed the same multiset of values are identical, and merging is exact
bucket-count addition — commutative, and associative up to float
round-off in ``sum``.  Sketches therefore merge across sites and OS
processes exactly like the event timelines in :mod:`repro.obs.merge`.

A :class:`SketchSnapshot` is the frozen, wire-encodable form
(:func:`repro.wire.codec.register_struct`, tag ``0x3B``), so snapshots
travel between processes as ordinary frames and land in
``prom.py`` quantile gauges or the windowed per-tenant rollups in
:mod:`repro.obs.agg`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.wire import codec

__all__ = [
    "DEFAULT_RELATIVE_ACCURACY",
    "QuantileSketch",
    "SketchSnapshot",
    "merge_sketches",
]

#: Default relative accuracy: quantile estimates within 1% of the true
#: value.  alpha=0.01 gives gamma ~= 1.0202, ~114 buckets per decade.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: Values in (0, _MIN_VALUE] collapse into the zero bucket so the index
#: range stays bounded (a denormal would otherwise need ~35k buckets).
_MIN_VALUE = 1e-9


@dataclass(frozen=True)
class SketchSnapshot:
    """Immutable, wire-encodable sketch state.

    ``buckets`` is a tuple of ``(index, count)`` pairs sorted by index;
    ``relative_accuracy`` pins the bucket geometry so only snapshots
    with identical accuracy merge.  ``low`` / ``high`` are the exact
    observed extremes (0.0 when empty — the wire codec round-trips
    floats exactly, None would widen the field type for no benefit).
    """

    relative_accuracy: float
    zero_count: int
    total: int
    sum: float
    low: float
    high: float
    buckets: Tuple[Tuple[int, int], ...]


codec.register_struct(0x3B, SketchSnapshot)


class QuantileSketch:
    """Log-bucketed quantile sketch with bounded relative error.

    ``observe`` is O(1); ``quantile`` is O(#buckets); ``merge`` is
    O(#buckets of the smaller side).  Only non-negative values are
    accepted (the repo's latencies and counts are all >= 0).  When the
    live bucket count exceeds ``max_buckets`` the two lowest buckets
    collapse into one — upper quantiles (the ones SLOs watch) keep the
    full guarantee; only the extreme low tail degrades.
    """

    __slots__ = (
        "relative_accuracy", "gamma", "_inv_log_gamma", "max_buckets",
        "buckets", "zero_count", "total", "sum", "min", "max",
    )

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_buckets: int = 2048,
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        if max_buckets < 2:
            raise ValueError("max_buckets must be >= 2")
        self.relative_accuracy = float(relative_accuracy)
        self.gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._inv_log_gamma = 1.0 / math.log(self.gamma)
        self.max_buckets = max_buckets
        self.buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording -------------------------------------------------------

    def _index(self, value: float) -> int:
        return math.ceil(math.log(value) * self._inv_log_gamma)

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0 or value != value:  # negative or NaN
            raise ValueError(f"sketch values must be finite and >= 0, got {value}")
        if value <= _MIN_VALUE:
            self.zero_count += 1
        else:
            index = self._index(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1
            if len(self.buckets) > self.max_buckets:
                self._collapse()
        self.total += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def _collapse(self) -> None:
        """Fold the lowest bucket into its neighbor until under the cap."""
        while len(self.buckets) > self.max_buckets:
            indices = sorted(self.buckets)
            lowest, second = indices[0], indices[1]
            self.buckets[second] += self.buckets.pop(lowest)

    # -- queries ---------------------------------------------------------

    def _value_of(self, index: int) -> float:
        return 2.0 * self.gamma ** index / (self.gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1); 0.0 on an empty sketch.

        The estimate ``v`` satisfies ``|v - true| <= alpha * true`` for
        any true quantile that did not land in a collapsed or zero
        bucket (zero-bucket values are reported as exactly 0.0).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = q * (self.total - 1)
        cum = self.zero_count
        if rank < cum:
            return 0.0
        estimate = 0.0
        for index in sorted(self.buckets):
            cum += self.buckets[index]
            if cum > rank:
                estimate = self._value_of(index)
                break
        else:
            estimate = self.max if self.max is not None else 0.0
        # Clamp to the exact observed extremes: the true quantile lies in
        # [min, max], so clamping only moves the estimate closer.
        if self.min is not None:
            estimate = min(max(estimate, self.min), self.max)  # type: ignore[arg-type]
        return estimate

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    # -- merge -----------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (bucket-count addition)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different relative accuracy: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}"
            )
        for index in sorted(other.buckets):
            self.buckets[index] = self.buckets.get(index, 0) + other.buckets[index]
        if len(self.buckets) > self.max_buckets:
            self._collapse()
        self.zero_count += other.zero_count
        self.total += other.total
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def copy(self) -> "QuantileSketch":
        out = QuantileSketch(self.relative_accuracy, self.max_buckets)
        out.merge(self)
        return out

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> SketchSnapshot:
        """Frozen wire-encodable state (buckets sorted by index)."""
        return SketchSnapshot(
            relative_accuracy=self.relative_accuracy,
            zero_count=self.zero_count,
            total=self.total,
            sum=self.sum,
            low=self.min if self.min is not None else 0.0,
            high=self.max if self.max is not None else 0.0,
            buckets=tuple(sorted(self.buckets.items())),
        )

    @classmethod
    def from_snapshot(
        cls, snap: SketchSnapshot, max_buckets: int = 2048
    ) -> "QuantileSketch":
        out = cls(snap.relative_accuracy, max_buckets)
        out.buckets = dict(snap.buckets)
        out.zero_count = snap.zero_count
        out.total = snap.total
        out.sum = snap.sum
        if snap.total:
            out.min = snap.low
            out.max = snap.high
        if len(out.buckets) > max_buckets:
            out._collapse()
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-serializable snapshot (same shape as Histogram's)."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "zero_count": self.zero_count,
            "total": self.total,
            "sum": round(self.sum, 6),
            "mean": round(self.mean, 6),
            "min": self.min,
            "max": self.max,
            "buckets": [[i, c] for i, c in sorted(self.buckets.items())],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any], max_buckets: int = 2048) -> "QuantileSketch":
        out = cls(data["relative_accuracy"], max_buckets)
        out.buckets = {int(i): int(c) for i, c in data["buckets"]}
        out.zero_count = data["zero_count"]
        out.total = data["total"]
        out.sum = data["sum"]
        out.min = data["min"]
        out.max = data["max"]
        return out

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(alpha={self.relative_accuracy}, total={self.total}, "
            f"p50={self.quantile(0.5):.3f}, p99={self.quantile(0.99):.3f})"
        )


def merge_sketches(sketches: Iterable[QuantileSketch]) -> QuantileSketch:
    """Merge an iterable of sketches into a fresh one.

    Empty input yields an empty sketch at the default accuracy.
    """
    out: Optional[QuantileSketch] = None
    for sk in sketches:
        if out is None:
            out = QuantileSketch(sk.relative_accuracy, sk.max_buckets)
        out.merge(sk)
    return out if out is not None else QuantileSketch()
