"""Prometheus text-exposition rendering for MetricsRegistry snapshots.

Live processes (the two-process TCP example, ``bench_wire --sockets``)
periodically write their registries as a Prometheus 0.0.4 text snapshot —
a plain file any scraper, ``promtool``, or a human with ``cat`` can read.
There is no HTTP server and no client library: the repo's no-new-deps
rule means export is a *file*, refreshed atomically (write to a tempfile
in the same directory, then ``os.replace``) so a concurrent reader never
sees a torn snapshot.

Rendering rules:

- dotted metric names are sanitized to the Prometheus grammar
  (``[a-zA-Z_:][a-zA-Z0-9_:]*``): every other character becomes ``_``,
  and everything is namespaced under ``repro_``;
- counters gain the conventional ``_total`` suffix; gauges are bare;
- histograms expand to cumulative ``_bucket{le="..."}`` series plus
  ``+Inf``, ``_sum`` and ``_count``, exactly the shape Prometheus
  histogram_quantile() expects;
- sketch-backed summaries (``snapshot()["summaries"]``, derived from
  :class:`repro.obs.sketch.QuantileSketch`) render as the Prometheus
  summary type: ``quantile``-labeled gauges plus ``_sum``/``_count``;
- a registry's ``site`` becomes a ``site`` label when >= 0 (the transport
  registry uses site -1 = process-wide, rendered without the label);
- output is deterministic: metrics sorted by (name, labels), one
  ``# TYPE`` line per family.

:func:`parse_prometheus_text` is the read side — a minimal 0.0.4 parser
used by the text-format conformance test (render → parse → compare) and
by ``repro top`` to tail the ``.prom`` files live processes refresh.
"""

from __future__ import annotations

import os
import re
import tempfile
from typing import Any, Dict, Iterable, List, Tuple

_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def sanitize_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus metric grammar."""
    cleaned = "".join(c if c in _NAME_OK else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def _fmt_value(value: float) -> str:
    """Prometheus number formatting: integers without a trailing ``.0``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels(pairs: Iterable[Tuple[str, str]]) -> str:
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}" if body else ""


def prometheus_text(snapshots: Iterable[Dict[str, Any]]) -> str:
    """Render registry snapshots (``MetricsRegistry.snapshot()``) as text.

    Accepts multiple snapshots so one process can export its per-site
    protocol registries and its transport registry in a single file;
    same-named metrics from different sites merge into one family with
    distinct ``site`` labels.
    """
    # family name -> (type, [(sort_key, line), ...])
    families: Dict[str, Tuple[str, List[Tuple[str, str]]]] = {}

    def add(family: str, mtype: str, sort_key: str, line: str) -> None:
        entry = families.get(family)
        if entry is None:
            families[family] = (mtype, [(sort_key, line)])
        else:
            entry[1].append((sort_key, line))

    for snap in snapshots:
        site = snap.get("site", -1)
        site_labels: List[Tuple[str, str]] = [("site", str(site))] if site >= 0 else []
        for name, value in snap.get("counters", {}).items():
            family = sanitize_name(name) + "_total"
            lbl = _labels(site_labels)
            add(family, "counter", lbl, f"{family}{lbl} {_fmt_value(value)}")
        for name, value in snap.get("gauges", {}).items():
            family = sanitize_name(name)
            lbl = _labels(site_labels)
            add(family, "gauge", lbl, f"{family}{lbl} {_fmt_value(value)}")
        for name, hist in snap.get("histograms", {}).items():
            family = sanitize_name(name)
            slbl = _labels(site_labels)
            # Buckets must stay in increasing-le order (what parsers and
            # histogram_quantile expect), so their sort key is the bucket
            # index, not the rendered label.
            cumulative = 0
            for i, (bound, count) in enumerate(zip(hist["bounds"], hist["counts"])):
                cumulative += count
                lbl = _labels(site_labels + [("le", _fmt_value(float(bound)))])
                add(family, "histogram", f"{slbl}|{i:06d}",
                    f"{family}_bucket{lbl} {cumulative}")
            lbl = _labels(site_labels + [("le", "+Inf")])
            add(family, "histogram", f"{slbl}|999998",
                f"{family}_bucket{lbl} {hist['total']}")
            add(family, "histogram", f"{slbl}|999999a",
                f"{family}_sum{slbl} {_fmt_value(hist['sum'])}")
            add(family, "histogram", f"{slbl}|999999b",
                f"{family}_count{slbl} {hist['total']}")
        for name, summ in snap.get("summaries", {}).items():
            family = sanitize_name(name)
            slbl = _labels(site_labels)
            # Quantile series stay in increasing-q order via the index key,
            # mirroring the bucket ordering above.
            for i, q in enumerate(sorted(summ["quantiles"], key=float)):
                lbl = _labels(site_labels + [("quantile", q)])
                add(family, "summary", f"{slbl}|{i:06d}",
                    f"{family}{lbl} {_fmt_value(summ['quantiles'][q])}")
            add(family, "summary", f"{slbl}|999999a",
                f"{family}_sum{slbl} {_fmt_value(summ['sum'])}")
            add(family, "summary", f"{slbl}|999999b",
                f"{family}_count{slbl} {summ['count']}")

    lines: List[str] = []
    for family in sorted(families):
        mtype, series = families[family]
        lines.append(f"# TYPE {family} {mtype}")
        lines.extend(line for _, line in sorted(series))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, snapshots: Iterable[Dict[str, Any]]) -> str:
    """Atomically (re)write ``path`` with the rendered snapshots."""
    text = prometheus_text(snapshots)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".prom-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


_LABEL_RE = re.compile(r'([a-zA-Z_:][a-zA-Z0-9_:]*)="([^"]*)"')
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$"
)


def parse_prometheus_text(
    text: str,
) -> Tuple[Dict[str, str], List[Tuple[str, Dict[str, str], float]]]:
    """Parse exposition text back into ``(types, samples)``.

    ``types`` maps family name -> metric type (from ``# TYPE`` lines);
    ``samples`` is ``(metric_name, labels, value)`` in file order.  The
    grammar covered is exactly what :func:`prometheus_text` emits (plus
    ``+Inf``/``NaN`` values); an unparseable sample line raises
    ``ValueError`` so the conformance test catches format drift.
    """
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                rest = line[len("# TYPE "):]
                family, _, mtype = rest.partition(" ")
                types[family] = mtype.strip()
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample on line {lineno}: {line!r}")
        name, label_body, raw_value = match.groups()
        labels = dict(_LABEL_RE.findall(label_body)) if label_body else {}
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(f"bad sample value on line {lineno}: {raw_value!r}")
        samples.append((name, labels, value))
    return types, samples


async def flush_periodically(path: str, snapshot_fns, interval_s: float = 1.0) -> None:
    """Asyncio task body: rewrite ``path`` every ``interval_s`` until cancelled.

    ``snapshot_fns`` is a list of zero-arg callables returning snapshot
    dicts (late-bound so each flush sees fresh values).  Writes one final
    snapshot on cancellation so the file reflects end-of-run state.
    """
    import asyncio

    try:
        while True:
            write_prometheus(path, [fn() for fn in snapshot_fns])
            await asyncio.sleep(interval_s)
    finally:
        write_prometheus(path, [fn() for fn in snapshot_fns])
