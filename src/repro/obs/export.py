"""Timeline exporters: JSONL event logs and Chrome trace-event JSON.

The Chrome trace format (``{"traceEvents": [...]}``) loads directly into
Perfetto / ``chrome://tracing``: each simulator site becomes a process
(one track per site), every protocol event an instant on its site's
track, and every reconstructed transaction span a complete (``ph: "X"``)
slice on the origin site's track.  Timestamps are simulated microseconds
(``time_ms * 1000``) so the viewer's ruler reads in protocol time.

Both exporters are deterministic: sorted keys, stable ordering, no wall
clock — a given seed always produces byte-identical files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.events import ProtocolEvent, event_to_dict
from repro.obs.spans import TxnSpan, build_spans


def to_jsonl(events: Iterable[ProtocolEvent]) -> str:
    """One sorted-keys JSON object per line, newline-terminated."""
    lines = [json.dumps(event_to_dict(e), sort_keys=True) for e in events]
    return "\n".join(lines) + ("\n" if lines else "")


def _us(time_ms: float) -> int:
    return int(round(time_ms * 1000))


def to_chrome_trace(
    events: Iterable[ProtocolEvent],
    spans: Optional[List[TxnSpan]] = None,
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from a recorded timeline.

    ``pid`` is the site id (named ``site N`` via metadata events), ``tid``
    1 for the event track and 2 for the span track.  Instants use site
    scope (``s: "t"`` would pin to thread; we use thread scope so tracks
    stay readable).  Spans with no resolution are exported as instants at
    submit time rather than zero-length slices.
    """
    events = list(events)
    if spans is None:
        spans = build_spans(events)

    trace_events: List[Dict[str, Any]] = []
    sites = sorted({e.site for e in events})
    for site in sites:
        trace_events.append(
            {
                "ph": "M",
                "pid": site,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"site {site}"},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "pid": site,
                "tid": 1,
                "name": "thread_name",
                "args": {"name": "events"},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "pid": site,
                "tid": 2,
                "name": "thread_name",
                "args": {"name": "txn spans"},
            }
        )

    for event in events:
        entry = event_to_dict(event)
        trace_events.append(
            {
                "ph": "i",
                "pid": event.site,
                "tid": 1,
                "ts": _us(event.time_ms),
                "s": "t",
                "name": event.kind,
                "args": {
                    "seq": entry["seq"],
                    "txn_vt": entry["txn_vt"],
                    **entry["data"],
                },
            }
        )

    for span in spans:
        if span.submit_ms is None:
            continue
        args = span.to_dict()
        args.pop("event_count", None)
        if span.resolved_ms is not None:
            trace_events.append(
                {
                    "ph": "X",
                    "pid": span.origin,
                    "tid": 2,
                    "ts": _us(span.submit_ms),
                    "dur": max(1, _us(span.resolved_ms) - _us(span.submit_ms)),
                    "name": f"txn {span.vt} [{span.resolution}]",
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "ph": "i",
                    "pid": span.origin,
                    "tid": 2,
                    "ts": _us(span.submit_ms),
                    "s": "t",
                    "name": f"txn {span.vt} [in flight]",
                    "args": args,
                }
            )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro-obs/1", "clock": "simulated"},
    }


def chrome_trace_json(events: Iterable[ProtocolEvent]) -> str:
    """Serialized Chrome trace, stable byte-for-byte per seed."""
    return json.dumps(to_chrome_trace(events), indent=2, sort_keys=True) + "\n"
