"""Observability layer: event bus, lifecycle spans, metrics, exporters.

Deterministic, zero-overhead-when-disabled instrumentation for the DECAF
protocol stack.  See docs/OBSERVABILITY.md for the event taxonomy, the
span lifecycle, and exporter workflows (Perfetto, JSONL).
"""

from repro.obs.events import EVENT_KINDS, EventBus, ProtocolEvent, event_to_dict
from repro.obs.export import chrome_trace_json, to_chrome_trace, to_jsonl
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    counter_property,
)
from repro.obs.spans import TxnSpan, build_spans, span_summary

__all__ = [
    "EVENT_KINDS",
    "EventBus",
    "ProtocolEvent",
    "event_to_dict",
    "to_jsonl",
    "to_chrome_trace",
    "chrome_trace_json",
    "Histogram",
    "MetricsRegistry",
    "counter_property",
    "LATENCY_BUCKETS_MS",
    "COUNT_BUCKETS",
    "TxnSpan",
    "build_spans",
    "span_summary",
]
