"""Observability layer: event bus, lifecycle spans, metrics, exporters,
causal analysis, and health detectors.

Deterministic, zero-overhead-when-disabled instrumentation for the DECAF
protocol stack.  See docs/OBSERVABILITY.md for the event taxonomy, the
span lifecycle, exporter workflows (Perfetto, JSONL), the happens-before
DAG model, and the health-detector rules.
"""

from repro.obs.causal import (
    CausalGraph,
    abort_causal_chain,
    CommitCriticalPath,
    GuessEdge,
    GuessGraph,
    HBEdge,
    analysis_json,
    analyze_events,
    analyze_timeline,
    build_causal_graph,
    build_guess_graph,
    commit_critical_paths,
    critical_path_report,
    events_from_timeline,
    format_critical_path_report,
    normalize_events,
    parse_vt,
)
from repro.obs.clock import Clock, SimClock, WallClock
from repro.obs.events import EVENT_KINDS, EventBus, ProtocolEvent, event_to_dict
from repro.obs.export import chrome_trace_json, to_chrome_trace, to_jsonl
from repro.obs.flight import FlightRecorder
from repro.obs.merge import MergedTimeline, load_timeline, merge_timelines
from repro.obs.prom import prometheus_text, write_prometheus
from repro.obs.health import (
    AbortRateSpike,
    HealthFinding,
    HealthMonitor,
    HealthReport,
    HealthRule,
    NotifyLagSLO,
    RepairStall,
    StragglerCascade,
    default_rules,
    run_health,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    counter_property,
)
from repro.obs.spans import TxnSpan, build_spans, span_summary

__all__ = [
    "EVENT_KINDS",
    "EventBus",
    "ProtocolEvent",
    "event_to_dict",
    "Clock",
    "SimClock",
    "WallClock",
    "FlightRecorder",
    "MergedTimeline",
    "load_timeline",
    "merge_timelines",
    "prometheus_text",
    "write_prometheus",
    "to_jsonl",
    "to_chrome_trace",
    "chrome_trace_json",
    "Histogram",
    "MetricsRegistry",
    "counter_property",
    "LATENCY_BUCKETS_MS",
    "COUNT_BUCKETS",
    "TxnSpan",
    "build_spans",
    "span_summary",
    "CausalGraph",
    "HBEdge",
    "CommitCriticalPath",
    "GuessGraph",
    "GuessEdge",
    "abort_causal_chain",
    "build_causal_graph",
    "build_guess_graph",
    "commit_critical_paths",
    "critical_path_report",
    "format_critical_path_report",
    "analyze_events",
    "analyze_timeline",
    "analysis_json",
    "events_from_timeline",
    "normalize_events",
    "parse_vt",
    "HealthFinding",
    "HealthRule",
    "HealthMonitor",
    "HealthReport",
    "AbortRateSpike",
    "StragglerCascade",
    "NotifyLagSLO",
    "RepairStall",
    "default_rules",
    "run_health",
]
