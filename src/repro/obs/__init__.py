"""Observability layer: event bus, lifecycle spans, metrics, exporters,
causal analysis, and health detectors.

Deterministic, zero-overhead-when-disabled instrumentation for the DECAF
protocol stack.  See docs/OBSERVABILITY.md for the event taxonomy, the
span lifecycle, exporter workflows (Perfetto, JSONL), the happens-before
DAG model, and the health-detector rules.
"""

from repro.obs.causal import (
    CausalGraph,
    abort_causal_chain,
    CommitCriticalPath,
    GuessEdge,
    GuessGraph,
    HBEdge,
    analysis_json,
    analyze_events,
    analyze_timeline,
    build_causal_graph,
    build_guess_graph,
    commit_critical_paths,
    critical_path_report,
    events_from_timeline,
    format_critical_path_report,
    normalize_events,
    parse_vt,
)
from repro.obs.agg import (
    TelemetryAggregator,
    TenantTelemetry,
    merge_agg_snapshots,
)
from repro.obs.clock import Clock, SimClock, WallClock
from repro.obs.events import EVENT_KINDS, EventBus, ProtocolEvent, event_to_dict
from repro.obs.export import chrome_trace_json, to_chrome_trace, to_jsonl
from repro.obs.flight import FlightRecorder
from repro.obs.merge import MergedTimeline, load_timeline, merge_timelines
from repro.obs.prom import parse_prometheus_text, prometheus_text, write_prometheus
from repro.obs.sample import TraceSampler, sample_decision
from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    SketchSnapshot,
    merge_sketches,
)
from repro.obs.health import (
    AbortRateBurnRate,
    AbortRateSpike,
    HealthFinding,
    HealthMonitor,
    HealthReport,
    HealthRule,
    MultiWindowBurnRate,
    NotifyLagBurnRate,
    NotifyLagSLO,
    RepairStall,
    StragglerCascade,
    burn_rules,
    default_rules,
    run_health,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_MS,
    SUMMARY_QUANTILES,
    Histogram,
    MetricsRegistry,
    counter_property,
    summary_dict,
)
from repro.obs.spans import TxnSpan, build_spans, span_summary

__all__ = [
    "EVENT_KINDS",
    "EventBus",
    "ProtocolEvent",
    "event_to_dict",
    "Clock",
    "SimClock",
    "WallClock",
    "FlightRecorder",
    "MergedTimeline",
    "load_timeline",
    "merge_timelines",
    "prometheus_text",
    "parse_prometheus_text",
    "write_prometheus",
    "TraceSampler",
    "sample_decision",
    "QuantileSketch",
    "SketchSnapshot",
    "merge_sketches",
    "DEFAULT_RELATIVE_ACCURACY",
    "TelemetryAggregator",
    "TenantTelemetry",
    "merge_agg_snapshots",
    "to_jsonl",
    "to_chrome_trace",
    "chrome_trace_json",
    "Histogram",
    "MetricsRegistry",
    "counter_property",
    "summary_dict",
    "LATENCY_BUCKETS_MS",
    "COUNT_BUCKETS",
    "SUMMARY_QUANTILES",
    "TxnSpan",
    "build_spans",
    "span_summary",
    "CausalGraph",
    "HBEdge",
    "CommitCriticalPath",
    "GuessGraph",
    "GuessEdge",
    "abort_causal_chain",
    "build_causal_graph",
    "build_guess_graph",
    "commit_critical_paths",
    "critical_path_report",
    "format_critical_path_report",
    "analyze_events",
    "analyze_timeline",
    "analysis_json",
    "events_from_timeline",
    "normalize_events",
    "parse_vt",
    "HealthFinding",
    "HealthRule",
    "HealthMonitor",
    "HealthReport",
    "AbortRateSpike",
    "StragglerCascade",
    "NotifyLagSLO",
    "RepairStall",
    "MultiWindowBurnRate",
    "NotifyLagBurnRate",
    "AbortRateBurnRate",
    "default_rules",
    "burn_rules",
    "run_health",
]
