"""Pluggable clock sources for the observability stack.

The simulator stamps every event with *simulated* transport time, which is
what makes recorded timelines deterministic and byte-identical per seed.
The real cross-process runtime (``repro.transport.tcp``) has no simulated
time — its events happen at wall-clock moments in different OS processes
whose clocks disagree.  This module names that difference instead of
leaving it implicit in ``transport.now()`` implementations:

* :class:`SimClock` — reads simulated milliseconds from a source callable
  (a simulated transport's ``now`` or a scheduler).  Deterministic: two
  runs of the same seed read the same times.
* :class:`WallClock` — monotonic wall-clock milliseconds since the clock
  was created (``time.monotonic`` based, immune to NTP steps).  Each
  process has its own origin, so two processes' WallClock readings are
  mutually skewed by an unknown offset — exactly what
  :func:`repro.obs.merge.merge_timelines` estimates and removes when it
  fuses per-process timelines into one happens-before trace.

Both expose one method, :meth:`Clock.now_ms`, and both are safe to hand to
the EventBus/metrics plumbing: nothing downstream assumes which mode it is
in.  The deterministic contract is preserved by *construction* — simulated
sessions keep using :class:`SimClock` semantics (the transport's simulated
``now``), and only the real transports run on :class:`WallClock`.
"""

from __future__ import annotations

import time
from typing import Callable


class Clock:
    """A monotone source of milliseconds.  Subclasses define the epoch."""

    #: True when readings are simulated (deterministic per seed).
    simulated: bool = False

    def now_ms(self) -> float:
        raise NotImplementedError

    def __call__(self) -> float:  # convenience: clocks are also callables
        return self.now_ms()


class SimClock(Clock):
    """Simulated milliseconds read from a source callable.

    The source is typically a simulated transport's ``now`` method; the
    clock adds nothing — it exists so code that needs "a clock" can hold
    one object in either mode.
    """

    simulated = True

    __slots__ = ("_source",)

    def __init__(self, source: Callable[[], float]) -> None:
        self._source = source

    def now_ms(self) -> float:
        return self._source()

    def __repr__(self) -> str:
        return f"SimClock({self._source!r})"


class WallClock(Clock):
    """Monotonic wall-clock milliseconds since this clock's creation.

    Built on ``time.monotonic`` so readings never jump backwards (NTP
    steps, suspend/resume).  ``wall_origin_unix_s`` records the UNIX time
    at which the origin was taken — provenance for merged-trace reports,
    never used for event timestamps (it is not monotonic).
    """

    simulated = False

    __slots__ = ("_origin", "wall_origin_unix_s")

    def __init__(self) -> None:
        self._origin = time.monotonic()
        self.wall_origin_unix_s = time.time()

    def now_ms(self) -> float:
        return (time.monotonic() - self._origin) * 1000.0

    def __repr__(self) -> str:
        return f"WallClock(origin_unix={self.wall_origin_unix_s:.3f})"
