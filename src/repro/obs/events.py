"""The protocol event bus: typed lifecycle events with zero disabled cost.

Every protocol-relevant moment — a transaction submitted, a guess made, a
primary validating, a commit landing, a view being notified, a failure
notice arriving — is describable as a :class:`ProtocolEvent`.  The
:class:`EventBus` collects them (when recording) and fans them out to
subscribers (message tracing, live dashboards).  Instrumented code guards
every emission with ``if bus.active:`` so a disabled bus costs exactly one
attribute load and one branch on the hot paths; no event object, kwargs
dict, or payload formatting is ever built unless someone is listening.

Events are stamped with the owning transport's clock (:mod:`repro.obs.clock`).
In the simulator that is *simulated* time, never the wall clock, so a
recorded timeline is deterministic: the same seed always yields
byte-identical exports, which is what lets the conformance explorer embed
timelines in replayable violation artifacts.  The real cross-process
transports stamp monotonic wall-clock milliseconds instead
(:class:`~repro.obs.clock.WallClock`); their per-process timelines are
fused — send/deliver pairing plus clock-skew estimation — by
:mod:`repro.obs.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.vtime import VirtualTime

#: The event taxonomy.  ``guess_made`` carries ``guess`` in {"RC","RL","NC"};
#: ``view_notified`` carries ``mode`` in {"optimistic","pessimistic"} and
#: ``kind`` in {"update","commit"}; ``straggler_detected`` carries ``flavor``
#: in {"lost_update","update_inconsistency","read_inconsistency",
#: "monotonicity_skip"}; ``message_sent``/``message_delivered`` share a
#: network-wide ``msg_id`` linking each delivery to its send (the
#: happens-before edges of repro.obs.causal).  See docs/OBSERVABILITY.md
#: for the full schema.
EVENT_KINDS = frozenset(
    {
        "txn_submitted",
        "guess_made",
        "fanout_sent",
        "validated",
        "committed",
        "aborted",
        "retry_scheduled",
        "propagate_blocked",
        "straggler_detected",
        "view_notified",
        "snapshot_taken",
        "op_applied",
        "failure_notice",
        "repair_committed",
        "message_sent",
        "message_delivered",
        "envelope_sent",
        "peer_unreachable",
        "peer_connected",
    }
)

#: Data keys never serialized by :func:`event_to_dict` (live object refs
#: kept for subscribers like MessageTrace, meaningless in an export).
_EXPORT_SKIP_KEYS = frozenset({"payload"})


@dataclass(frozen=True)
class ProtocolEvent:
    """One recorded protocol moment.

    ``seq`` is a bus-wide monotone counter that breaks simulated-time ties
    deterministically; ``site`` is the site at which the event happened
    (``-1`` for events with no site, e.g. nothing currently); ``txn_vt``
    links the event to a transaction lifecycle (or a snapshot's ``t_S``,
    which for pessimistic views equals the writing transaction's VT).
    """

    seq: int
    time_ms: float
    site: int
    kind: str
    txn_vt: Optional[VirtualTime]
    data: Dict[str, Any]

    def __str__(self) -> str:
        vt = f" vt={self.txn_vt}" if self.txn_vt is not None else ""
        extras = " ".join(
            f"{k}={v}" for k, v in sorted(self.data.items()) if k not in _EXPORT_SKIP_KEYS
        )
        return f"{self.time_ms:9.1f}ms  s{self.site}  {self.kind}{vt}  {extras}".rstrip()


def _json_safe(value: Any) -> Any:
    """Map event data to deterministic JSON-serializable values."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, VirtualTime):
        return str(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    return str(value)


def event_to_dict(event: ProtocolEvent) -> Dict[str, Any]:
    """A stable, JSON-serializable rendering of one event."""
    return {
        "seq": event.seq,
        "time_ms": round(event.time_ms, 6),
        "site": event.site,
        "kind": event.kind,
        "txn_vt": str(event.txn_vt) if event.txn_vt is not None else None,
        "data": {
            k: _json_safe(v)
            for k, v in sorted(event.data.items())
            if k not in _EXPORT_SKIP_KEYS
        },
    }


class EventBus:
    """Collects and fans out protocol events for one session/network.

    The bus has two independent consumers: a *recording* buffer
    (``enable()`` / ``events``) and live *subscribers* (``subscribe``).
    ``active`` is True iff either exists — instrumentation sites check it
    before building an event, so an idle bus adds no measurable overhead.

    Subscription is re-entrant-safe and order-independent: subscribers are
    stored in a list keyed by identity, so two concurrent
    :class:`~repro.sim.trace.MessageTrace` instances can install and
    uninstall in any order without clobbering each other (the monkeypatch
    stacking bug this bus replaced).
    """

    __slots__ = ("active", "recording", "_events", "_staged", "_subscribers", "_seq")

    def __init__(self) -> None:
        self.active = False
        self.recording = False
        self._events: List[ProtocolEvent] = []
        # Raw (seq, time_ms, site, kind, txn_vt, data) tuples staged by the
        # recording-only fast lane of emit_event(); materialized into
        # ProtocolEvents the first time anyone reads :attr:`events`.
        self._staged: List[tuple] = []
        self._subscribers: List[Callable[[ProtocolEvent], None]] = []
        self._seq = 0

    @property
    def events(self) -> List[ProtocolEvent]:
        """Recorded events, materializing any staged fast-lane tuples first."""
        if self._staged:
            self._materialize()
        return self._events

    def _materialize(self) -> None:
        staged = self._staged
        self._staged = []
        append = self._events.append
        for seq, time_ms, site, kind, txn_vt, data in staged:
            event = object.__new__(ProtocolEvent)
            event.__dict__.update(
                seq=seq, time_ms=time_ms, site=site, kind=kind, txn_vt=txn_vt, data=data
            )
            append(event)

    # -- lifecycle -------------------------------------------------------

    def enable(self) -> None:
        """Start recording events into :attr:`events`."""
        self.recording = True
        self._refresh()

    def disable(self) -> None:
        """Stop recording (recorded events are kept until :meth:`clear`)."""
        self.recording = False
        self._refresh()

    def clear(self) -> None:
        """Drop all recorded events (the sequence counter keeps running)."""
        self._staged.clear()
        self._events.clear()

    def subscribe(self, fn: Callable[[ProtocolEvent], None]) -> None:
        """Add a live consumer called synchronously on every event."""
        self._subscribers.append(fn)
        self._refresh()

    def unsubscribe(self, fn: Callable[[ProtocolEvent], None]) -> None:
        """Remove a consumer; unknown consumers are ignored (idempotent)."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass
        self._refresh()

    def _refresh(self) -> None:
        self.active = self.recording or bool(self._subscribers)
        # With a subscriber present, emissions construct events eagerly and
        # append straight to _events; drain the fast lane first so recorded
        # order matches emission order across the transition.
        if self._staged:
            self._materialize()

    # -- emission --------------------------------------------------------

    def emit(
        self,
        event_kind: str,
        site: int,
        time_ms: float,
        txn_vt: Optional[VirtualTime] = None,
        **data: Any,
    ) -> Optional[ProtocolEvent]:
        """Record/distribute one event.  Callers guard with ``if bus.active``
        so the kwargs dict is never built on a dead bus; emit() re-checks
        anyway so unguarded call sites stay correct.  (The positional name
        is ``event_kind`` so data payloads may carry their own ``kind`` key,
        e.g. view_notified's kind=update/commit.)"""
        if not self.active:
            return None
        if self._staged:
            self._materialize()
        seq = self._seq
        self._seq = seq + 1
        event = object.__new__(ProtocolEvent)
        event.__dict__.update(
            seq=seq, time_ms=time_ms, site=site, kind=event_kind, txn_vt=txn_vt, data=data
        )
        if self.recording:
            self._events.append(event)
        for fn in self._subscribers:
            fn(event)
        return event

    def emit_event(
        self,
        event_kind: str,
        site: int,
        time_ms: float,
        txn_vt: Optional[VirtualTime],
        data: Dict[str, Any],
    ) -> None:
        """Hot-path emit: the caller hands over ``data`` (dict ownership
        included — it must not be mutated afterwards) and gets nothing back.

        With no live subscribers, the event is *staged* as a raw tuple and
        only turned into a :class:`ProtocolEvent` when :attr:`events` is
        next read — a tuple append is several times cheaper than frozen
        dataclass construction, and on the real-socket path four emissions
        ride every RTT.  With subscribers attached (MessageTrace, a flight
        recorder), events are built eagerly as in :meth:`emit`."""
        if not self.active:
            return
        seq = self._seq
        self._seq = seq + 1
        if not self._subscribers:
            if self.recording:
                self._staged.append((seq, time_ms, site, event_kind, txn_vt, data))
            return
        event = object.__new__(ProtocolEvent)
        event.__dict__.update(
            seq=seq, time_ms=time_ms, site=site, kind=event_kind, txn_vt=txn_vt, data=data
        )
        if self.recording:
            self._events.append(event)
        for fn in self._subscribers:
            fn(event)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events) + len(self._staged)

    def filter(
        self,
        kind: Optional[str] = None,
        site: Optional[int] = None,
        txn_vt: Optional[VirtualTime] = None,
    ) -> List[ProtocolEvent]:
        """Recorded events matching every given criterion."""
        out = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if site is not None and event.site != site:
                continue
            if txn_vt is not None and event.txn_vt != txn_vt:
                continue
            out.append(event)
        return out

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def timeline(self) -> List[Dict[str, Any]]:
        """The recorded events as stable JSON-serializable dicts."""
        return [event_to_dict(e) for e in self.events]

    def __repr__(self) -> str:
        state = "recording" if self.recording else ("live" if self.active else "idle")
        return f"EventBus({state}, {len(self.events)} events, {len(self._subscribers)} subscribers)"
