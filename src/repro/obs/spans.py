"""Transaction lifecycle spans reconstructed from the event stream.

A *span* is the causal story of one transaction attempt, keyed by its
virtual time: submit → guess → fanout → validate → commit/abort → notify.
Each retry executes under a fresh VT, so retries are separate spans linked
by the ``attempt`` number carried on ``txn_submitted``.

Spans are derived purely from recorded :class:`~repro.obs.events.ProtocolEvent`
sequences — nothing in the protocol tracks them at runtime — which keeps the
hot paths clean and makes span reconstruction usable on any saved timeline,
including the ones embedded in explorer violation artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.events import ProtocolEvent
from repro.vtime import VirtualTime

#: Event kinds that participate in a transaction's lifecycle span.  Other
#: txn_vt-carrying kinds (snapshot_taken, message_sent) are contextual.
_SPAN_KINDS = frozenset(
    {
        "txn_submitted",
        "guess_made",
        "fanout_sent",
        "validated",
        "committed",
        "aborted",
        "view_notified",
        "repair_committed",
    }
)


@dataclass
class TxnSpan:
    """One transaction attempt's lifecycle, with simulated-time phase marks.

    ``resolution`` is ``"committed"``, ``"aborted"``, or ``None`` when the
    trace ended mid-flight.  Resolution time is taken from the *origin
    site's* resolution event (the first one observed); replica applications
    of the same commit show up in :attr:`events` but don't move the marks.
    """

    vt: VirtualTime
    origin: int
    submit_ms: Optional[float] = None
    attempt: int = 1
    first_guess_ms: Optional[float] = None
    first_fanout_ms: Optional[float] = None
    first_validated_ms: Optional[float] = None
    resolved_ms: Optional[float] = None
    resolution: Optional[str] = None
    abort_reason: Optional[str] = None
    #: True when the transaction aborted before any fan-out was sent (user
    #: abort or a local-primary denial): the span is degenerate — no
    #: transit/validate phases exist — but it must still be reported, not
    #: silently dropped from span-derived analyses.
    aborted_pre_fanout: bool = False
    first_notify_ms: Optional[float] = None
    guesses: Dict[str, int] = field(default_factory=dict)
    fanout_sites: List[int] = field(default_factory=list)
    notify_count: int = 0
    events: List[ProtocolEvent] = field(default_factory=list)

    @property
    def duration_ms(self) -> Optional[float]:
        """Submit to resolution, in simulated ms (None while in flight)."""
        if self.submit_ms is None or self.resolved_ms is None:
            return None
        return self.resolved_ms - self.submit_ms

    @property
    def validate_latency_ms(self) -> Optional[float]:
        """First fanout to first remote validation."""
        if self.first_fanout_ms is None or self.first_validated_ms is None:
            return None
        return self.first_validated_ms - self.first_fanout_ms

    @property
    def notify_lag_ms(self) -> Optional[float]:
        """Resolution to first view notification referencing this txn."""
        if self.resolved_ms is None or self.first_notify_ms is None:
            return None
        return self.first_notify_ms - self.resolved_ms

    @property
    def complete(self) -> bool:
        return self.submit_ms is not None and self.resolution is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vt": str(self.vt),
            "origin": self.origin,
            "attempt": self.attempt,
            "submit_ms": self.submit_ms,
            "first_guess_ms": self.first_guess_ms,
            "first_fanout_ms": self.first_fanout_ms,
            "first_validated_ms": self.first_validated_ms,
            "resolved_ms": self.resolved_ms,
            "resolution": self.resolution,
            "abort_reason": self.abort_reason,
            "aborted_pre_fanout": self.aborted_pre_fanout,
            "first_notify_ms": self.first_notify_ms,
            "duration_ms": self.duration_ms,
            "guesses": {k: self.guesses[k] for k in sorted(self.guesses)},
            "fanout_sites": list(self.fanout_sites),
            "notify_count": self.notify_count,
            "event_count": len(self.events),
        }


def build_spans(events: Iterable[ProtocolEvent]) -> List[TxnSpan]:
    """Group an event stream into per-VT lifecycle spans.

    Spans come back ordered by first appearance in the stream, which for a
    recorded bus equals simulated-time order (seq breaks ties).  Events
    whose VT never saw a ``txn_submitted`` (e.g. a remote replica's view of
    a transaction when only one site was recorded) still form a span — its
    ``submit_ms`` stays None and ``complete`` is False.
    """
    spans: Dict[VirtualTime, TxnSpan] = {}
    for event in events:
        if event.txn_vt is None or event.kind not in _SPAN_KINDS:
            continue
        span = spans.get(event.txn_vt)
        if span is None:
            span = TxnSpan(vt=event.txn_vt, origin=event.site)
            spans[event.txn_vt] = span
        span.events.append(event)
        kind = event.kind
        if kind == "txn_submitted":
            span.submit_ms = event.time_ms
            span.origin = event.site
            span.attempt = int(event.data.get("attempt", 1))
        elif kind == "guess_made":
            if span.first_guess_ms is None:
                span.first_guess_ms = event.time_ms
            guess = str(event.data.get("guess", "?"))
            span.guesses[guess] = span.guesses.get(guess, 0) + 1
        elif kind == "fanout_sent":
            if span.first_fanout_ms is None:
                span.first_fanout_ms = event.time_ms
            dst = event.data.get("dst")
            if dst is not None:
                span.fanout_sites.append(int(dst))
        elif kind == "validated":
            if span.first_validated_ms is None:
                span.first_validated_ms = event.time_ms
        elif kind in ("committed", "aborted"):
            if span.resolution is None:
                span.resolution = kind
                span.resolved_ms = event.time_ms
                if kind == "aborted":
                    span.abort_reason = event.data.get("reason")
                    span.aborted_pre_fanout = span.first_fanout_ms is None
        elif kind == "view_notified":
            span.notify_count += 1
            if span.first_notify_ms is None:
                span.first_notify_ms = event.time_ms
    return list(spans.values())


def span_summary(spans: Iterable[TxnSpan]) -> Dict[str, Any]:
    """Aggregate statistics over a span list (used by `repro trace`)."""
    spans = list(spans)
    committed = [s for s in spans if s.resolution == "committed"]
    aborted = [s for s in spans if s.resolution == "aborted"]
    durations = sorted(s.duration_ms for s in committed if s.duration_ms is not None)
    return {
        "spans": len(spans),
        "committed": len(committed),
        "aborted": len(aborted),
        "aborted_pre_fanout": sum(1 for s in aborted if s.aborted_pre_fanout),
        "in_flight": len(spans) - len(committed) - len(aborted),
        "commit_duration_ms": {
            "min": durations[0] if durations else None,
            "max": durations[-1] if durations else None,
            "mean": round(sum(durations) / len(durations), 3) if durations else None,
        },
    }
