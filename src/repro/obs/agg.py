"""Windowed per-tenant telemetry rollups: counters + quantile sketches.

The paper's §5.1.3 scalability argument is that commit cost is per
*collaboration set*, not global — so the telemetry must be per
collaboration set too.  A :class:`TelemetryAggregator` buckets counters
and :class:`~repro.obs.sketch.QuantileSketch` observations into tumbling
time windows keyed by a tenant label (one label per collaboration
set/object/customer), holding a bounded number of recent windows.  Time
comes from whichever clock stamps the events (simulated ms in the
simulator, :class:`~repro.obs.clock.WallClock` ms on the real socket
plane), so aggregation is deterministic under replay.

Snapshots are plain JSON dicts (``repro-agg/1``) in which sketches appear
in their :meth:`~repro.obs.sketch.QuantileSketch.to_dict` form; they are
mergeable across processes with :func:`merge_agg_snapshots` (counters
add, sketches bucket-merge) — the same discipline as the trace merge in
:mod:`repro.obs.merge`, and what lets ``repro top`` fuse the per-process
``agg*.json`` files that ``examples/two_process_tcp.py --trace-dir``
emits.

:class:`TenantTelemetry` adapts the event bus to the aggregator: it maps
each transaction to a tenant (the first object it touches, falling back
to the origin site), and derives per-tenant commit counts, commit
latency, abort counts, and notify lag from the protocol lifecycle events
— subscribe it like any other consumer (``bus.subscribe(telemetry)``).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.events import ProtocolEvent
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

__all__ = [
    "AGG_FORMAT",
    "TelemetryAggregator",
    "TenantTelemetry",
    "merge_agg_snapshots",
]

AGG_FORMAT = "repro-agg/1"

#: Quantiles exported in snapshots and rendered by ``repro top``.
SNAPSHOT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


class _TenantWindow:
    """One tenant's accumulators inside one time window."""

    __slots__ = ("counters", "sketches")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.sketches: Dict[str, QuantileSketch] = {}


class TelemetryAggregator:
    """Tumbling-window rollups keyed by (window index, tenant label).

    ``window_ms`` sets the window width; ``keep_windows`` bounds memory —
    when a new window opens beyond the horizon, the oldest completed
    windows are evicted (their data is assumed already snapshotted by the
    periodic flusher).  Eviction is by window index, so it is
    deterministic under replay regardless of flush timing.
    """

    def __init__(
        self,
        window_ms: float = 1000.0,
        keep_windows: int = 8,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        site: int = -1,
    ) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        if keep_windows < 1:
            raise ValueError("keep_windows must be >= 1")
        self.window_ms = float(window_ms)
        self.keep_windows = keep_windows
        self.relative_accuracy = relative_accuracy
        self.site = site
        # window index -> tenant label -> accumulators; OrderedDict in
        # insertion order == ascending window index (time is monotone).
        self._windows: "OrderedDict[int, Dict[str, _TenantWindow]]" = OrderedDict()

    # -- recording -------------------------------------------------------

    def _cell(self, tenant: str, time_ms: float) -> _TenantWindow:
        index = int(time_ms // self.window_ms)
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = {}
            while len(self._windows) > self.keep_windows:
                self._windows.popitem(last=False)
        cell = window.get(tenant)
        if cell is None:
            cell = window[tenant] = _TenantWindow()
        return cell

    def inc(self, tenant: str, name: str, time_ms: float, delta: int = 1) -> None:
        """Bump counter ``name`` for ``tenant`` in the window of ``time_ms``."""
        counters = self._cell(tenant, time_ms).counters
        counters[name] = counters.get(name, 0) + delta

    def observe(self, tenant: str, name: str, time_ms: float, value: float) -> None:
        """Record ``value`` into tenant's ``name`` sketch in the window."""
        sketches = self._cell(tenant, time_ms).sketches
        sketch = sketches.get(name)
        if sketch is None:
            sketch = sketches[name] = QuantileSketch(self.relative_accuracy)
        sketch.observe(value)

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-stable dump of every retained window."""
        windows: List[Dict[str, Any]] = []
        for index in sorted(self._windows):
            tenants: Dict[str, Any] = {}
            for tenant in sorted(self._windows[index]):
                cell = self._windows[index][tenant]
                tenants[tenant] = {
                    "counters": {k: cell.counters[k] for k in sorted(cell.counters)},
                    "sketches": {
                        k: cell.sketches[k].to_dict() for k in sorted(cell.sketches)
                    },
                    "quantiles": {
                        k: {
                            f"p{int(q * 100)}": round(cell.sketches[k].quantile(q), 6)
                            for q in SNAPSHOT_QUANTILES
                        }
                        for k in sorted(cell.sketches)
                    },
                }
            windows.append(
                {
                    "index": index,
                    "start_ms": index * self.window_ms,
                    "end_ms": (index + 1) * self.window_ms,
                    "tenants": tenants,
                }
            )
        return {
            "format": AGG_FORMAT,
            "site": self.site,
            "window_ms": self.window_ms,
            "windows": windows,
        }

    def to_json(self) -> str:
        """Canonical byte-stable serialization of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def tenants(self) -> List[str]:
        """Every tenant label seen in the retained windows, sorted."""
        out = set()
        for window in self._windows.values():
            out.update(window)
        return sorted(out)

    def __repr__(self) -> str:
        return (
            f"TelemetryAggregator(window_ms={self.window_ms}, "
            f"{len(self._windows)} windows, {len(self.tenants())} tenants)"
        )


def merge_agg_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Fuse ``repro-agg/1`` snapshots from several sites/processes.

    Counters add; sketches bucket-merge
    (:meth:`~repro.obs.sketch.QuantileSketch.merge`); quantiles are
    re-derived from the merged sketches.  All inputs must share
    ``window_ms`` — windows are aligned by index, which is well-defined
    across processes only when their clocks share an origin (the
    simulator) or the consumer accepts window-granularity skew
    (``repro top`` over wall clocks).  Merging is commutative and
    associative up to float round-off in sketch sums, mirroring the
    sketch merge laws.
    """
    if not snapshots:
        return {"format": AGG_FORMAT, "site": -1, "window_ms": 0.0, "windows": []}
    window_ms = snapshots[0]["window_ms"]
    for snap in snapshots:
        if snap.get("format") != AGG_FORMAT:
            raise ValueError(f"not a {AGG_FORMAT} snapshot: {snap.get('format')!r}")
        if snap["window_ms"] != window_ms:
            raise ValueError(
                f"window_ms mismatch: {snap['window_ms']} vs {window_ms}"
            )
    # (window index, tenant) -> merged counters / sketches
    counters: Dict[Tuple[int, str], Dict[str, int]] = {}
    sketches: Dict[Tuple[int, str], Dict[str, QuantileSketch]] = {}
    for snap in snapshots:
        for window in snap["windows"]:
            index = window["index"]
            for tenant, cell in window["tenants"].items():
                key = (index, tenant)
                ctrs = counters.setdefault(key, {})
                for name, value in cell["counters"].items():
                    ctrs[name] = ctrs.get(name, 0) + value
                sks = sketches.setdefault(key, {})
                for name, data in cell["sketches"].items():
                    sketch = QuantileSketch.from_dict(data)
                    if name in sks:
                        sks[name].merge(sketch)
                    else:
                        sks[name] = sketch
    windows: List[Dict[str, Any]] = []
    for index in sorted({i for i, _ in counters}):
        tenants: Dict[str, Any] = {}
        for win_index, tenant in sorted(counters):
            if win_index != index:
                continue
            key = (index, tenant)
            tenants[tenant] = {
                "counters": {k: counters[key][k] for k in sorted(counters[key])},
                "sketches": {k: sketches[key][k].to_dict() for k in sorted(sketches[key])},
                "quantiles": {
                    k: {
                        f"p{int(q * 100)}": round(sketches[key][k].quantile(q), 6)
                        for q in SNAPSHOT_QUANTILES
                    }
                    for k in sorted(sketches[key])
                },
            }
        windows.append(
            {
                "index": index,
                "start_ms": index * window_ms,
                "end_ms": (index + 1) * window_ms,
                "tenants": tenants,
            }
        )
    return {
        "format": AGG_FORMAT,
        "site": -1,
        "window_ms": window_ms,
        "windows": windows,
    }


class TenantTelemetry:
    """Event-bus subscriber deriving per-tenant protocol metrics.

    Tenant attribution: a transaction belongs to the first object label
    its lifecycle mentions (``obj`` in ``guess_made`` / ``op_applied``
    data — the collaboration set it writes), falling back to
    ``site:<origin>`` for transactions whose recorded events never name
    an object.  The mapping is bounded (``max_txns`` live transactions)
    and evicted FIFO, deterministic under replay.

    Derived per-tenant series (all in the transaction origin's window):

    * ``commits`` / ``aborts`` — origin-site resolutions.
    * ``commit_latency_ms`` sketch — ``txn_submitted`` to origin
      ``committed``.
    * ``notify_lag_ms`` sketch — origin ``committed`` to each
      pessimistic ``view_notified`` (the NotifyLagSLO quantity).
    """

    def __init__(
        self,
        agg: Optional[TelemetryAggregator] = None,
        tenant_of: Optional[Callable[[ProtocolEvent], Optional[str]]] = None,
        max_txns: int = 4096,
    ) -> None:
        self.agg = agg if agg is not None else TelemetryAggregator()
        self._tenant_of = tenant_of
        self._max_txns = max_txns
        # txn key -> (tenant or None, submitted_ms or None, committed_ms or None)
        self._txns: "OrderedDict[Any, List[Any]]" = OrderedDict()

    def _entry(self, key: Any) -> List[Any]:
        entry = self._txns.get(key)
        if entry is None:
            entry = self._txns[key] = [None, None, None]
            while len(self._txns) > self._max_txns:
                self._txns.popitem(last=False)
        return entry

    def _tenant(self, entry: List[Any], event: ProtocolEvent) -> str:
        if entry[0] is not None:
            return entry[0]
        origin = event.txn_vt.site if event.txn_vt is not None else event.site
        return f"site:{origin}"

    def __call__(self, event: ProtocolEvent) -> None:
        self.observe(event)

    def observe(self, event: ProtocolEvent) -> None:
        if event.txn_vt is None:
            return
        kind = event.kind
        if kind not in (
            "txn_submitted", "guess_made", "op_applied", "committed",
            "aborted", "view_notified",
        ):
            return
        key = event.txn_vt.key
        if self._tenant_of is not None:
            entry = self._entry(key)
            if entry[0] is None:
                entry[0] = self._tenant_of(event)
        else:
            entry = self._entry(key)
            if entry[0] is None:
                obj = event.data.get("obj")
                if obj is not None:
                    entry[0] = f"obj:{obj}"
        if kind == "txn_submitted":
            if event.site == event.txn_vt.site and entry[1] is None:
                entry[1] = event.time_ms
        elif kind == "committed":
            if event.site == event.txn_vt.site and entry[2] is None:
                entry[2] = event.time_ms
                tenant = self._tenant(entry, event)
                self.agg.inc(tenant, "commits", event.time_ms)
                if entry[1] is not None:
                    self.agg.observe(
                        tenant, "commit_latency_ms", event.time_ms,
                        event.time_ms - entry[1],
                    )
        elif kind == "aborted":
            if event.site == event.txn_vt.site:
                self.agg.inc(self._tenant(entry, event), "aborts", event.time_ms)
        elif kind == "view_notified":
            if event.data.get("mode") == "pessimistic" and entry[2] is not None:
                self.agg.observe(
                    self._tenant(entry, event), "notify_lag_ms", event.time_ms,
                    event.time_ms - entry[2],
                )
