"""Fuse per-process wall-clock timelines into one happens-before trace.

Each process in the real message plane records its own JSONL timeline
stamped by its own :class:`~repro.obs.clock.WallClock` — monotonic, but
with an arbitrary per-process origin, so raw timestamps from different
processes are incomparable.  What *is* comparable is causality: every
``message_sent`` carries a globally unique ``msg_id`` (``origin:seq``)
that its matching ``message_delivered`` repeats, giving one
happens-before edge per delivered message.

:func:`merge_timelines` fuses the timelines in three steps:

1. **Pairing** — index sends and deliveries by ``msg_id``; unmatched ids
   (messages in flight at shutdown, events that scrolled off a flight
   ring) are reported, not guessed at.
2. **Skew estimation** — for each process pair with cross edges, the
   NTP-style minimum-delay estimate: with ``m_ij`` = the minimum raw
   ``deliver − send`` delta for messages i→j, process j's clock offset
   relative to i is ``(m_ij − m_ji) / 2`` when both directions exist
   (symmetric-delay assumption; the estimate makes both minimum edges
   non-negative because ``m_ij + m_ji`` is a sum of true delays), or
   ``m_ij`` when only one direction exists (the fastest message becomes
   zero-delay).  Offsets compose along a BFS tree rooted at process 0,
   so chains of processes that never talk directly still align.
3. **Re-sequencing** — a deterministic Kahn topological sort of the
   happens-before DAG (program order within each process + message
   edges), tie-broken by ``(adjusted time, process, original seq)``.
   Final timestamps are the longest-path relaxation over the DAG, so
   every edge is monotone even when skew estimation error would have
   inverted a non-minimum edge; raised timestamps are counted in
   ``clamped``.

The merge is a pure function of its inputs — same timelines in, byte
identical events out — so merged traces can live in CI artifacts and
golden tests.
"""

from __future__ import annotations

import json
import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["MergedTimeline", "merge_timelines", "load_timeline"]


@dataclass
class MergedTimeline:
    """The fused trace plus everything a CI gate needs to judge it."""

    #: Events as stable dicts, re-sequenced; ``data`` gains ``proc`` (input
    #: timeline index) and ``orig_seq`` (the event's per-process seq).
    events: List[Dict[str, Any]]
    #: Estimated clock offset per process (ms, subtracted from its stamps).
    offsets_ms: Dict[int, float]
    #: msg_ids sent but never delivered (in flight, dropped, or truncated).
    unmatched_sends: List[str]
    #: msg_ids delivered with no recorded send (flight-ring truncation).
    unmatched_deliveries: List[str]
    #: Count of matched send/deliver pairs (the message edges).
    pairs: int
    #: Events whose timestamp was raised by the longest-path relaxation.
    clamped: int = 0
    #: Processes unreachable from process 0 in the pair graph (offset 0).
    disconnected: List[int] = field(default_factory=list)
    #: msg_ids head-dropped by the trace sampler (``"sampled": False`` on
    #: the send, recorded by TraceSampler(record_dropped=True)).  Expected
    #: to have no delivery — sampling, not message loss — so they are
    #: tallied here instead of in :attr:`unmatched_sends`.
    sampled_out: List[str] = field(default_factory=list)

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events) + (
            "\n" if self.events else ""
        )


def load_timeline(path: str) -> List[Dict[str, Any]]:
    """Read one per-process JSONL timeline (trace export or flight dump).

    Non-event lines — flight-dump headers, blanks — are skipped; events
    are returned in per-process ``seq`` order regardless of file order.
    """
    events: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if isinstance(obj, dict) and "kind" in obj and "seq" in obj:
                events.append(obj)
    events.sort(key=lambda e: e["seq"])
    return events


def _estimate_offsets(
    num_procs: int,
    min_delta: Dict[Tuple[int, int], float],
) -> Tuple[Dict[int, float], List[int]]:
    """BFS the pair graph from process 0, composing pairwise offsets."""
    neighbors: Dict[int, set] = {p: set() for p in range(num_procs)}
    for (i, j) in min_delta:
        neighbors[i].add(j)
        neighbors[j].add(i)

    offsets: Dict[int, float] = {0: 0.0} if num_procs else {}
    frontier = [0] if num_procs else []
    while frontier:
        u = frontier.pop(0)
        for v in sorted(neighbors[u]):
            if v in offsets:
                continue
            m_uv = min_delta.get((u, v))
            m_vu = min_delta.get((v, u))
            if m_uv is not None and m_vu is not None:
                offsets[v] = offsets[u] + (m_uv - m_vu) / 2.0
            elif m_uv is not None:
                offsets[v] = offsets[u] + m_uv
            else:
                offsets[v] = offsets[u] - m_vu  # type: ignore[operator]
            frontier.append(v)
    disconnected = [p for p in range(num_procs) if p not in offsets]
    for p in disconnected:
        offsets[p] = 0.0
    return offsets, disconnected


def merge_timelines(timelines: List[List[Dict[str, Any]]]) -> MergedTimeline:
    """Fuse per-process event-dict timelines into one causal trace."""
    num_procs = len(timelines)
    # Node identity: (proc, position in its seq-ordered timeline).
    ordered: List[List[Dict[str, Any]]] = [
        sorted(tl, key=lambda e: e["seq"]) for tl in timelines
    ]

    sends: Dict[str, Tuple[int, int]] = {}
    delivers: Dict[str, Tuple[int, int]] = {}
    duplicate_sends: List[str] = []
    duplicate_delivers: List[str] = []
    sampled_out_ids: set = set()
    for proc, tl in enumerate(ordered):
        for idx, ev in enumerate(tl):
            data = ev.get("data", {})
            msg_id = data.get("msg_id")
            if msg_id is None:
                continue
            msg_id = str(msg_id)
            if ev["kind"] == "message_sent":
                if msg_id in sends:
                    duplicate_sends.append(msg_id)
                else:
                    sends[msg_id] = (proc, idx)
                    # A head-dropped trace: the origin recorded the send as
                    # a marker but no site records the delivery by design.
                    if data.get("sampled") is False:
                        sampled_out_ids.add(msg_id)
            elif ev["kind"] == "message_delivered":
                if msg_id in delivers:
                    duplicate_delivers.append(msg_id)
                else:
                    delivers[msg_id] = (proc, idx)

    matched = sorted(set(sends) & set(delivers))
    unmatched_sends = sorted(
        (set(sends) - set(delivers) - sampled_out_ids) | set(duplicate_sends)
    )
    unmatched_deliveries = sorted(
        (set(delivers) - set(sends)) | set(duplicate_delivers)
    )
    sampled_out = sorted(sampled_out_ids - set(delivers))

    # Minimum raw deliver-send delta per cross-process direction.
    min_delta: Dict[Tuple[int, int], float] = {}
    for msg_id in matched:
        sp, si = sends[msg_id]
        dp, di = delivers[msg_id]
        if sp == dp:
            continue  # loopback: same clock, no skew information
        delta = ordered[dp][di]["time_ms"] - ordered[sp][si]["time_ms"]
        key = (sp, dp)
        if key not in min_delta or delta < min_delta[key]:
            min_delta[key] = delta

    offsets, disconnected = _estimate_offsets(num_procs, min_delta)

    # Happens-before DAG over nodes (proc, idx): program order + messages.
    message_edges: List[Tuple[Tuple[int, int], Tuple[int, int]]] = [
        (sends[m], delivers[m]) for m in matched
    ]
    succs: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    indeg: Dict[Tuple[int, int], int] = {}
    for proc, tl in enumerate(ordered):
        for idx in range(len(tl)):
            node = (proc, idx)
            indeg.setdefault(node, 0)
            if idx + 1 < len(tl):
                succs.setdefault(node, []).append((proc, idx + 1))
                indeg[(proc, idx + 1)] = indeg.get((proc, idx + 1), 0) + 1
    for src, dst in message_edges:
        succs.setdefault(src, []).append(dst)
        indeg[dst] += 1

    def adjusted(node: Tuple[int, int]) -> float:
        proc, idx = node
        return ordered[proc][idx]["time_ms"] - offsets[proc]

    # Kahn with a heap: pop order is the merged order, deterministic in
    # (skew-adjusted time, proc, original seq).  Longest-path relaxation
    # rides along: final(node) = max(adjusted, final over predecessors),
    # making every DAG edge monotone in the output timestamps.
    heap: List[Tuple[float, int, int]] = []
    for node, deg in indeg.items():
        if deg == 0:
            heapq.heappush(heap, (adjusted(node), node[0], node[1]))
    final: Dict[Tuple[int, int], float] = {}
    order: List[Tuple[int, int]] = []
    clamped = 0
    remaining = dict(indeg)
    pred_max: Dict[Tuple[int, int], float] = {}
    while heap:
        _, proc, idx = heapq.heappop(heap)
        node = (proc, idx)
        t = max(adjusted(node), pred_max.get(node, float("-inf")))
        if t > adjusted(node) + 1e-9:
            clamped += 1
        final[node] = t
        order.append(node)
        for nxt in succs.get(node, ()):
            if pred_max.get(nxt, float("-inf")) < t:
                pred_max[nxt] = t
            remaining[nxt] -= 1
            if remaining[nxt] == 0:
                heapq.heappush(heap, (adjusted(nxt), nxt[0], nxt[1]))
    # A cycle would mean corrupted input (msg_id collision looping back);
    # surface it rather than silently dropping events.
    if len(order) != len(indeg):
        raise ValueError(
            f"merged timeline is not a DAG: {len(indeg) - len(order)} events "
            "unreachable (duplicate msg_ids?)"
        )

    events: List[Dict[str, Any]] = []
    for seq, node in enumerate(order):
        proc, idx = node
        src = ordered[proc][idx]
        data = dict(src.get("data", {}))
        data["proc"] = proc
        data["orig_seq"] = src["seq"]
        out = dict(src)
        out["seq"] = seq
        out["time_ms"] = round(final[node], 6)
        out["data"] = data
        events.append(out)

    return MergedTimeline(
        events=events,
        offsets_ms={p: round(offsets[p], 6) for p in sorted(offsets)},
        unmatched_sends=unmatched_sends,
        unmatched_deliveries=unmatched_deliveries,
        pairs=len(matched),
        clamped=clamped,
        disconnected=disconnected,
        sampled_out=sampled_out,
    )
