"""Per-process flight recorder: a bounded ring of recent protocol events.

A long-running process cannot keep (or afford) its full event timeline,
but the moments before a failure are exactly what a postmortem needs.  The
:class:`FlightRecorder` subscribes to an :class:`~repro.obs.events.EventBus`
and keeps only the most recent ``capacity`` events in a ring buffer; on
fail-stop detection (``TcpTransport`` calls :meth:`dump` from its
``_declare_failed``) or an unhandled crash (:meth:`install_excepthook`)
it writes the ring as a postmortem JSONL file — first a header line with
the dump reason and provenance, then one event per line, oldest first.

Subscribing activates the bus (``bus.active`` becomes True), so a process
with only a flight recorder attached pays recording cost without growing
the unbounded ``bus.events`` buffer: the recorder is the *bounded*
consumer for processes that cannot afford full recording.  A process
already recording the full timeline can attach one too — the ring is
independent of the recording buffer.

Dumps are append-numbered (``.1``, ``.2``, ...) when the target path
already exists, so a crash that follows a fail-stop does not overwrite the
first postmortem.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.obs.events import EventBus, ProtocolEvent, event_to_dict

#: Default ring capacity: enough for several transactions' full lifecycles
#: (~18 events per 3-site transaction) without holding a long run's tail.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded event ring with postmortem JSONL dumps."""

    def __init__(self, path: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.path = path
        self.capacity = capacity
        self.ring: Deque[ProtocolEvent] = deque(maxlen=capacity)
        #: Total events seen (>= len(ring); the difference is what scrolled
        #: off the ring and is gone forever — reported in the dump header).
        self.events_seen = 0
        self.dumps = 0
        self._bus: Optional[EventBus] = None
        self._prev_excepthook = None

    # -- bus plumbing ----------------------------------------------------

    def record(self, event: ProtocolEvent) -> None:
        """Bus subscriber: retain the event (evicting the oldest)."""
        self.events_seen += 1
        self.ring.append(event)

    def attach(self, bus: EventBus) -> "FlightRecorder":
        """Subscribe to ``bus`` (activating it); returns self for chaining."""
        self._bus = bus
        bus.subscribe(self.record)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self.record)
            self._bus = None

    # -- postmortem ------------------------------------------------------

    def dump(self, reason: str, extra: Optional[Dict[str, Any]] = None) -> str:
        """Write the ring as postmortem JSONL; returns the path written.

        The first line is a header object (``{"flight": ...}``) carrying
        the reason, ring occupancy, and any ``extra`` provenance; every
        following line is one event in bus order, oldest first.  Existing
        files are never overwritten — subsequent dumps append ``.N``.
        """
        path = self.path
        suffix = 0
        import os

        while os.path.exists(path):
            suffix += 1
            path = f"{self.path}.{suffix}"
        header: Dict[str, Any] = {
            "flight": "repro-flight/1",
            "reason": reason,
            "events": len(self.ring),
            "events_seen": self.events_seen,
            "capacity": self.capacity,
        }
        if extra:
            header["extra"] = extra
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(event_to_dict(e), sort_keys=True) for e in self.ring
        )
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        self.dumps += 1
        return path

    # -- crash hook ------------------------------------------------------

    def install_excepthook(self) -> None:
        """Dump the ring on any unhandled exception, then re-raise normally.

        Chains to the previously installed hook so stack traces still
        print; idempotent (installing twice keeps one hook).
        """
        if self._prev_excepthook is not None:
            return
        self._prev_excepthook = sys.excepthook

        def _hook(exc_type, exc, tb):
            try:
                self.dump(f"crash: unhandled {exc_type.__name__}: {exc}")
            except Exception:
                pass  # a failing dump must never mask the original crash
            self._prev_excepthook(exc_type, exc, tb)

        sys.excepthook = _hook

    def uninstall_excepthook(self) -> None:
        if self._prev_excepthook is not None:
            sys.excepthook = self._prev_excepthook
            self._prev_excepthook = None

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({self.path!r}, {len(self.ring)}/{self.capacity} "
            f"events, {self.dumps} dumps)"
        )
