"""Streaming protocol-health detectors over the event bus.

A :class:`HealthMonitor` is a pure function of an event sequence: subscribe
it live (``bus.subscribe(monitor)``) or feed it a recorded timeline
offline (:func:`run_health`) — the two produce identical findings for the
same events, because every rule keys off simulated time and the bus's
deterministic seq order, never the wall clock.

Four built-in rules watch the failure modes the DECAF protocol is actually
exposed to:

* :class:`AbortRateSpike` — the abort fraction of recent origin-site
  resolutions crossed a threshold (guess storm / livelock risk: the
  paper's quadratic backoff exists precisely because optimistic retries
  can feed each other).
* :class:`StragglerCascade` — too many straggler supersessions inside one
  window: optimistic views are being rebuilt faster than they settle,
  i.e. a chain of guesses on uncommitted state keeps collapsing.
* :class:`NotifyLagSLO` — a pessimistic view learned of a commit too long
  after the origin resolved it (stale reads beyond the SLO; the cost side
  of the paper's pessimistic-notification trade-off).
* :class:`RepairStall` — a dead-primary failure notice without a
  matching ``repair_committed`` inside the threshold: reservations held
  by the dead site are blocking progress.

Each rule fires on a *rising edge* (entering the bad state), not on every
event while the state persists, so reports stay small and stable.
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.events import ProtocolEvent

#: Finding severities, in increasing order of badness.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "critical")


@dataclass(frozen=True)
class HealthFinding:
    """One deterministic detector verdict, anchored to the triggering event."""

    rule: str
    severity: str
    site: int
    time_ms: float
    seq: int
    vt: Optional[str]
    message: str
    data: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "site": self.site,
            "time_ms": round(self.time_ms, 6),
            "seq": self.seq,
            "vt": self.vt,
            "message": self.message,
            "data": self.data,
        }


class HealthRule:
    """Base detector: consume events, return findings as they fire.

    Subclasses override :meth:`observe` (and :meth:`finish` for rules that
    only become decidable when the stream ends, e.g. a repair that never
    arrived).  Rules must be deterministic functions of the event sequence.
    """

    name = "base"

    def observe(self, event: ProtocolEvent) -> List[HealthFinding]:
        raise NotImplementedError

    def finish(self, now_ms: float) -> List[HealthFinding]:
        return []


def _is_origin_resolution(event: ProtocolEvent) -> bool:
    """Commit/abort at the transaction's origin site (fires once per txn;
    the same kinds also fire at every replica applying the summary)."""
    return (
        event.kind in ("committed", "aborted")
        and event.txn_vt is not None
        and event.site == event.txn_vt.site
    )


class AbortRateSpike(HealthRule):
    """Abort fraction of recent origin resolutions crossed ``threshold``."""

    name = "abort_rate_spike"

    def __init__(
        self,
        window_ms: float = 2000.0,
        min_resolutions: int = 8,
        threshold: float = 0.5,
    ) -> None:
        self.window_ms = window_ms
        self.min_resolutions = min_resolutions
        self.threshold = threshold
        self._window: Deque[Tuple[float, bool]] = deque()  # (time, aborted)
        self._breached = False

    def observe(self, event: ProtocolEvent) -> List[HealthFinding]:
        if not _is_origin_resolution(event):
            return []
        aborted = event.kind == "aborted"
        self._window.append((event.time_ms, aborted))
        cutoff = event.time_ms - self.window_ms
        while self._window and self._window[0][0] < cutoff:
            self._window.popleft()
        total = len(self._window)
        aborts = sum(1 for _, a in self._window if a)
        rate = aborts / total if total else 0.0
        if total >= self.min_resolutions and rate >= self.threshold:
            if not self._breached:
                self._breached = True
                return [
                    HealthFinding(
                        rule=self.name,
                        severity="critical",
                        site=event.site,
                        time_ms=event.time_ms,
                        seq=event.seq,
                        vt=str(event.txn_vt),
                        message=(
                            f"abort rate {rate:.2f} over last {total} resolutions "
                            f"(threshold {self.threshold:.2f} in {self.window_ms:.0f} ms)"
                        ),
                        data={"aborts": aborts, "resolutions": total, "rate": round(rate, 4)},
                    )
                ]
        elif rate < self.threshold / 2:
            self._breached = False  # recovered: re-arm the rising edge
        return []


class StragglerCascade(HealthRule):
    """``depth`` or more straggler supersessions inside ``window_ms``."""

    name = "straggler_cascade"

    def __init__(self, window_ms: float = 1000.0, depth: int = 3) -> None:
        self.window_ms = window_ms
        self.depth = depth
        self._window: Deque[Tuple[float, str]] = deque()  # (time, vt)
        self._breached = False

    def observe(self, event: ProtocolEvent) -> List[HealthFinding]:
        if event.kind != "straggler_detected":
            return []
        self._window.append((event.time_ms, str(event.txn_vt)))
        cutoff = event.time_ms - self.window_ms
        while self._window and self._window[0][0] < cutoff:
            self._window.popleft()
        if len(self._window) >= self.depth:
            if not self._breached:
                self._breached = True
                vts = [vt for _, vt in self._window]
                return [
                    HealthFinding(
                        rule=self.name,
                        severity="warning",
                        site=event.site,
                        time_ms=event.time_ms,
                        seq=event.seq,
                        vt=str(event.txn_vt),
                        message=(
                            f"straggler cascade depth {len(self._window)} within "
                            f"{self.window_ms:.0f} ms (threshold {self.depth})"
                        ),
                        data={"depth": len(self._window), "vts": vts},
                    )
                ]
        else:
            self._breached = False  # depth fell below threshold: re-arm
        return []


class NotifyLagSLO(HealthRule):
    """A pessimistic view's commit notification lagged the origin commit
    by more than ``slo_ms`` (fires once per (site, VT) pair)."""

    name = "notify_lag_slo"

    def __init__(self, slo_ms: float = 120.0) -> None:
        self.slo_ms = slo_ms
        self._commit_ms: Dict[Any, float] = {}  # vt.key -> origin commit time
        self._flagged: set = set()

    def observe(self, event: ProtocolEvent) -> List[HealthFinding]:
        if event.kind == "committed" and _is_origin_resolution(event):
            self._commit_ms.setdefault(event.txn_vt.key, event.time_ms)
            return []
        if (
            event.kind != "view_notified"
            or event.data.get("mode") != "pessimistic"
            or event.txn_vt is None
        ):
            return []
        committed_at = self._commit_ms.get(event.txn_vt.key)
        if committed_at is None:
            return []
        lag = event.time_ms - committed_at
        key = (event.site, event.txn_vt.key)
        if lag > self.slo_ms and key not in self._flagged:
            self._flagged.add(key)
            return [
                HealthFinding(
                    rule=self.name,
                    severity="warning",
                    site=event.site,
                    time_ms=event.time_ms,
                    seq=event.seq,
                    vt=str(event.txn_vt),
                    message=(
                        f"pessimistic notify lag {lag:.1f} ms exceeds "
                        f"SLO {self.slo_ms:.1f} ms"
                    ),
                    data={"lag_ms": round(lag, 6), "slo_ms": self.slo_ms},
                )
            ]
        return []


class RepairStall(HealthRule):
    """A ``failure_notice`` with no ``repair_committed`` for the same dead
    site within ``threshold_ms`` — reservations held by the dead primary
    are stalling commits.  Decided in-stream when later events push the
    clock past the deadline, or at :meth:`finish` for still-open repairs."""

    name = "repair_stall"

    def __init__(self, threshold_ms: float = 2000.0) -> None:
        self.threshold_ms = threshold_ms
        # (observer site, failed site) -> (notice time, notice seq)
        self._pending: Dict[Tuple[int, int], Tuple[float, int]] = {}
        self._fired: set = set()

    def _check_deadlines(self, now_ms: float, seq: int) -> List[HealthFinding]:
        findings: List[HealthFinding] = []
        for key in sorted(self._pending):
            noticed_ms, notice_seq = self._pending[key]
            if key in self._fired or now_ms - noticed_ms < self.threshold_ms:
                continue
            self._fired.add(key)
            site, failed_site = key
            findings.append(
                HealthFinding(
                    rule=self.name,
                    severity="critical",
                    site=site,
                    time_ms=now_ms,
                    seq=seq,
                    vt=None,
                    message=(
                        f"repair of failed site {failed_site} not committed "
                        f"{now_ms - noticed_ms:.1f} ms after notice "
                        f"(threshold {self.threshold_ms:.1f} ms)"
                    ),
                    data={
                        "failed_site": failed_site,
                        "noticed_ms": round(noticed_ms, 6),
                        "notice_seq": notice_seq,
                        "stall_ms": round(now_ms - noticed_ms, 6),
                    },
                )
            )
        return findings

    def observe(self, event: ProtocolEvent) -> List[HealthFinding]:
        findings = self._check_deadlines(event.time_ms, event.seq)
        if event.kind == "failure_notice":
            failed = event.data.get("failed_site")
            if failed is not None:
                self._pending.setdefault(
                    (event.site, int(failed)), (event.time_ms, event.seq)
                )
        elif event.kind == "repair_committed":
            failed = event.data.get("failed_site")
            if failed is not None:
                self._pending.pop((event.site, int(failed)), None)
        return findings

    def finish(self, now_ms: float) -> List[HealthFinding]:
        return self._check_deadlines(now_ms + self.threshold_ms, -1)


class MultiWindowBurnRate(HealthRule):
    """SLO error-budget burn-rate alerting over two trailing windows.

    The Google SRE-workbook construction: classify each relevant event
    good/bad against an SLO, compute the *burn rate* — the bad fraction
    divided by the error budget ``1 - objective`` (burn 1.0 = spending
    the budget exactly as fast as the SLO allows) — and alert only when
    **both** a fast and a slow window exceed ``burn_threshold``.  The
    slow window keeps one bad burst from paging; the fast window makes
    the alert reset quickly once the burn stops.  Like every rule here,
    the verdict is a pure function of the event sequence, so live
    subscription and offline replay produce byte-identical findings.

    Subclasses implement :meth:`classify`, returning ``None`` for
    irrelevant events, else ``True`` (bad) / ``False`` (good).
    """

    name = "burn_rate"
    severity = "critical"

    def __init__(
        self,
        objective: float = 0.95,
        fast_ms: float = 500.0,
        slow_ms: float = 2000.0,
        burn_threshold: float = 4.0,
        min_events: int = 6,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        if fast_ms >= slow_ms:
            raise ValueError("fast window must be shorter than the slow window")
        self.objective = objective
        self.fast_ms = fast_ms
        self.slow_ms = slow_ms
        self.burn_threshold = burn_threshold
        self.min_events = min_events
        self._window: Deque[Tuple[float, bool]] = deque()  # (time, bad)
        self._breached = False

    def classify(self, event: ProtocolEvent) -> Optional[bool]:
        raise NotImplementedError

    def observe(self, event: ProtocolEvent) -> List[HealthFinding]:
        bad = self.classify(event)
        if bad is None:
            return []
        now = event.time_ms
        self._window.append((now, bad))
        cutoff = now - self.slow_ms
        while self._window and self._window[0][0] < cutoff:
            self._window.popleft()
        budget = 1.0 - self.objective
        slow_total = len(self._window)
        slow_bad = sum(1 for _, b in self._window if b)
        fast_cut = now - self.fast_ms
        fast_total = fast_bad = 0
        for t, b in self._window:
            if t >= fast_cut:
                fast_total += 1
                fast_bad += b
        if fast_total < self.min_events:
            return []
        fast_burn = (fast_bad / fast_total) / budget
        slow_burn = (slow_bad / slow_total) / budget
        if fast_burn >= self.burn_threshold and slow_burn >= self.burn_threshold:
            if not self._breached:
                self._breached = True
                return [
                    HealthFinding(
                        rule=self.name,
                        severity=self.severity,
                        site=event.site,
                        time_ms=event.time_ms,
                        seq=event.seq,
                        vt=str(event.txn_vt) if event.txn_vt is not None else None,
                        message=(
                            f"burn rate {fast_burn:.1f}x/{slow_burn:.1f}x "
                            f"(fast {self.fast_ms:.0f} ms / slow {self.slow_ms:.0f} ms) "
                            f"exceeds {self.burn_threshold:.1f}x of the "
                            f"{self.objective:.0%} SLO budget"
                        ),
                        data={
                            "fast_burn": round(fast_burn, 4),
                            "slow_burn": round(slow_burn, 4),
                            "fast_bad": fast_bad,
                            "fast_total": fast_total,
                            "slow_bad": slow_bad,
                            "slow_total": slow_total,
                            "objective": self.objective,
                            "burn_threshold": self.burn_threshold,
                        },
                    )
                ]
        elif fast_burn < self.burn_threshold / 2:
            self._breached = False  # burn stopped: re-arm the rising edge
        return []


class NotifyLagBurnRate(MultiWindowBurnRate):
    """Error-budget burn on the notify-lag SLO: each pessimistic commit
    notification is *bad* when it lagged the origin commit by more than
    ``slo_ms``.  Complements :class:`NotifyLagSLO` (which flags every
    individual violation): this rule fires only when violations consume
    the ``objective`` error budget ``burn_threshold`` times too fast in
    both windows — a sustained lag regression, not one slow replica."""

    name = "notify_lag_burn_rate"

    def __init__(self, slo_ms: float = 120.0, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.slo_ms = slo_ms
        self._commit_ms: Dict[Any, float] = {}

    def classify(self, event: ProtocolEvent) -> Optional[bool]:
        if event.kind == "committed" and _is_origin_resolution(event):
            self._commit_ms.setdefault(event.txn_vt.key, event.time_ms)
            return None
        if (
            event.kind != "view_notified"
            or event.data.get("mode") != "pessimistic"
            or event.txn_vt is None
        ):
            return None
        committed_at = self._commit_ms.get(event.txn_vt.key)
        if committed_at is None:
            return None
        return event.time_ms - committed_at > self.slo_ms


class AbortRateBurnRate(MultiWindowBurnRate):
    """Error-budget burn on the abort-rate SLO: each origin resolution is
    *bad* when it aborted.  Where :class:`AbortRateSpike` pages on one
    window crossing a raw fraction, this expresses the policy as an SLO
    (``objective`` of transactions commit) and fires on sustained budget
    burn across both windows."""

    name = "abort_rate_burn_rate"

    def __init__(self, objective: float = 0.90, burn_threshold: float = 3.0,
                 min_events: int = 8, **kwargs: Any) -> None:
        super().__init__(
            objective=objective, burn_threshold=burn_threshold,
            min_events=min_events, **kwargs,
        )

    def classify(self, event: ProtocolEvent) -> Optional[bool]:
        if not _is_origin_resolution(event):
            return None
        return event.kind == "aborted"


def default_rules() -> List[HealthRule]:
    """A fresh instance of every built-in detector, default thresholds."""
    return [AbortRateSpike(), StragglerCascade(), NotifyLagSLO(), RepairStall()]


def burn_rules(
    notify_slo_ms: float = 120.0,
    abort_objective: float = 0.90,
) -> List[HealthRule]:
    """The SLO burn-rate detector pair (notify lag + abort rate).

    Kept out of :func:`default_rules` so existing health reports stay
    byte-stable; ``repro health --burn-rate`` and ``repro top`` opt in.
    """
    return [
        NotifyLagBurnRate(slo_ms=notify_slo_ms),
        AbortRateBurnRate(objective=abort_objective),
    ]


@dataclass
class HealthReport:
    """All findings of one monitored run, plus an overall verdict."""

    findings: List[HealthFinding]
    events_seen: int

    @property
    def status(self) -> str:
        worst = 0
        for finding in self.findings:
            worst = max(worst, SEVERITIES.index(finding.severity))
        return SEVERITIES[worst] if self.findings else "ok"

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro-health/1",
            "status": self.status,
            "events_seen": self.events_seen,
            "by_rule": self.by_rule(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        """Canonical byte-stable serialization."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def format_text(self) -> str:
        """Byte-stable plain-text rendering for the CLI."""
        lines = [
            f"health: {self.status} — {len(self.findings)} finding(s) "
            f"over {self.events_seen} events"
        ]
        for rule, count in self.by_rule().items():
            lines.append(f"  {rule}: {count}")
        for finding in self.findings:
            vt = f" vt={finding.vt}" if finding.vt else ""
            lines.append(
                f"  [{finding.severity:8s}] {finding.time_ms:9.1f}ms s{finding.site} "
                f"{finding.rule}{vt}: {finding.message}"
            )
        return "\n".join(lines) + "\n"


class HealthMonitor:
    """Runs a rule set over an event stream (live or replayed).

    The monitor is itself a valid bus subscriber: ``bus.subscribe(monitor)``
    streams events into every rule as the protocol runs.  Call
    :meth:`finish` once the run ends to flush deadline-based rules, then
    :meth:`report`.
    """

    def __init__(self, rules: Optional[List[HealthRule]] = None) -> None:
        self.rules = default_rules() if rules is None else rules
        self.findings: List[HealthFinding] = []
        self.events_seen = 0
        self._last_ms = 0.0
        self._finished = False

    def __call__(self, event: ProtocolEvent) -> None:
        self.observe(event)

    def observe(self, event: ProtocolEvent) -> None:
        # Round to export precision (matching event_to_dict) so live
        # subscription and offline replay of the exported timeline yield
        # byte-identical reports.
        rounded = round(event.time_ms, 6)
        if rounded != event.time_ms:
            event = dataclasses.replace(event, time_ms=rounded)
        self.events_seen += 1
        self._last_ms = max(self._last_ms, event.time_ms)
        for rule in self.rules:
            self.findings.extend(rule.observe(event))

    def finish(self) -> None:
        """Flush rules whose verdict needed end-of-stream (idempotent)."""
        if self._finished:
            return
        self._finished = True
        for rule in self.rules:
            self.findings.extend(rule.finish(self._last_ms))

    def report(self) -> HealthReport:
        self.finish()
        return HealthReport(findings=list(self.findings), events_seen=self.events_seen)


def run_health(
    events: Iterable[ProtocolEvent], rules: Optional[List[HealthRule]] = None
) -> HealthReport:
    """Offline feed: identical findings to a live subscription on the
    same event sequence (the determinism tests assert exactly this)."""
    monitor = HealthMonitor(rules)
    for event in sorted(events, key=lambda e: e.seq):
        monitor.observe(event)
    return monitor.report()
