"""Exception hierarchy for the DECAF reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch framework failures with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TransactionAborted(ReproError):
    """Raised inside ``Transaction.execute`` to abort without retry.

    The paper (section 2.4) specifies that a transaction may be explicitly
    programmed to abort without retry by throwing an exception; DECAF's
    transaction thread catches it and calls ``handleAbort``.
    """


class ConcurrencyConflict(ReproError):
    """A concurrency-control guess (RL or NC) was denied at a primary copy.

    Transactions aborted with this cause are automatically re-executed at
    the originating site (paper section 2.4).
    """


class ObjectNotFound(ReproError):
    """A referenced model object does not exist at the local site."""


class InvalidPath(ReproError):
    """A composite path does not resolve to an embedded object."""


class NotAuthorized(ReproError):
    """An authorization monitor denied access to a model object."""


class SiteFailed(ReproError):
    """An operation targeted a site known to have failed (fail-stop)."""


class ProtocolError(ReproError):
    """An internal protocol invariant was violated (a bug, not user error)."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class TransportError(ReproError):
    """A transport failed to deliver a message."""


class WireError(ReproError):
    """A wire-format payload could not be encoded or decoded.

    Raised on unknown codec versions, unregistered tags, truncated frames,
    and values outside the wire-encodable vocabulary.  Always a hard error:
    a site that cannot parse a peer's bytes must not guess.
    """


class RetryLimitExceeded(ReproError):
    """A transaction exceeded its automatic re-execution budget.

    The paper retries aborted transactions indefinitely; tests and
    benchmarks bound the retry count so that pathological contention
    surfaces as an error instead of a livelock.
    """
