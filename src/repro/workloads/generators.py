"""Workload generators: parties issuing transactions on a schedule.

A *party* is one site issuing transactions at scheduled (simulated) times.
Arrival processes are seeded and deterministic.  Workloads are factories of
transaction bodies; :func:`run_workload` schedules every party's
transactions on the session's discrete-event scheduler, runs to quiescence,
and returns the collected outcomes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.model import ModelObject
from repro.core.session import Session
from repro.core.site import SiteRuntime
from repro.core.transaction import TransactionOutcome
from repro.errors import ReproError

# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


class ArrivalProcess:
    """Generates a deterministic schedule of event times (in ms)."""

    def times(self, count: int, rng: random.Random) -> List[float]:
        raise NotImplementedError


class UniformArrivals(ArrivalProcess):
    """Evenly spaced arrivals: one event every ``interval_ms``."""

    def __init__(self, interval_ms: float, start_ms: float = 0.0) -> None:
        if interval_ms <= 0:
            raise ValueError("interval must be positive")
        self.interval_ms = interval_ms
        self.start_ms = start_ms

    def times(self, count: int, rng: random.Random) -> List[float]:
        return [self.start_ms + (i + 1) * self.interval_ms for i in range(count)]


class PoissonArrivals(ArrivalProcess):
    """Poisson arrivals with mean inter-arrival ``mean_interval_ms``."""

    def __init__(self, mean_interval_ms: float, start_ms: float = 0.0) -> None:
        if mean_interval_ms <= 0:
            raise ValueError("mean interval must be positive")
        self.mean_interval_ms = mean_interval_ms
        self.start_ms = start_ms

    def times(self, count: int, rng: random.Random) -> List[float]:
        out, t = [], self.start_ms
        for _ in range(count):
            t += rng.expovariate(1.0 / self.mean_interval_ms)
            out.append(t)
        return out


# ---------------------------------------------------------------------------
# Workload bodies
# ---------------------------------------------------------------------------


class BlindWriteWorkload:
    """Pure blind writes — "e.g., a whiteboard or a collaborative form"
    (section 5.1.2): no reads, so concurrency tests never fail."""

    def __init__(self, obj: ModelObject, party_tag: int) -> None:
        self.obj = obj
        self.party_tag = party_tag
        self._counter = 0

    def __call__(self) -> Callable[[], None]:
        self._counter += 1
        value = self.party_tag * 1_000_000 + self._counter

        def body() -> None:
            self.obj.set(value)

        return body


class ReadModifyWriteWorkload:
    """Read-then-write transactions — the rollback-prone workload of
    section 5.2.2's third benchmark."""

    def __init__(self, obj: ModelObject, increment: int = 1) -> None:
        self.obj = obj
        self.increment = increment

    def __call__(self) -> Callable[[], None]:
        def body() -> None:
            self.obj.set(self.obj.get() + self.increment)

        return body


class TransferWorkload:
    """Multi-object read-write transactions (the paper's XferTrans, Fig. 2)."""

    def __init__(self, src: ModelObject, dst: ModelObject, amount: int = 1) -> None:
        self.src = src
        self.dst = dst
        self.amount = amount

    def __call__(self) -> Callable[[], None]:
        def body() -> None:
            self.src.set(self.src.get() - self.amount)
            self.dst.set(self.dst.get() + self.amount)

        return body


# ---------------------------------------------------------------------------
# Party + runner
# ---------------------------------------------------------------------------


@dataclass
class WorkloadParty:
    """One site issuing ``count`` transactions per the arrival process."""

    site: SiteRuntime
    workload: Callable[[], Callable[[], None]]
    arrivals: ArrivalProcess
    count: int
    outcomes: List[TransactionOutcome] = field(default_factory=list)


def run_workload(
    session: Session,
    parties: Sequence[WorkloadParty],
    seed: int = 0,
    settle: bool = True,
) -> Dict[str, Any]:
    """Schedule every party's transactions; run the simulation to quiescence.

    Returns summary statistics: per-party outcomes plus aggregate commit
    latency and conflict counters (deltas over the run).
    """
    scheduler = session.scheduler
    if scheduler is None:
        raise ReproError("run_workload requires a simulated session")
    rng = random.Random(seed)
    counters_before = session.counters()

    for party in parties:
        times = party.arrivals.times(party.count, rng)
        for t in times:
            def fire(p=party):
                body = p.workload()
                p.outcomes.append(p.site.transact(body))

            scheduler.call_at(scheduler.now + t, fire, label=f"txn@{party.site.name}")
    if settle:
        session.settle()

    counters_after = session.counters()
    deltas = {k: counters_after[k] - counters_before.get(k, 0) for k in counters_after}
    all_outcomes = [o for p in parties for o in p.outcomes]
    latencies = [o.commit_latency_ms for o in all_outcomes if o.commit_latency_ms is not None]
    return {
        "outcomes": all_outcomes,
        "per_party": [list(p.outcomes) for p in parties],
        "committed": sum(1 for o in all_outcomes if o.committed),
        "aborted": sum(1 for o in all_outcomes if o.aborted_no_retry),
        "attempts": sum(o.attempts for o in all_outcomes),
        "mean_commit_latency_ms": sum(latencies) / len(latencies) if latencies else None,
        "max_commit_latency_ms": max(latencies) if latencies else None,
        "counters": deltas,
    }
