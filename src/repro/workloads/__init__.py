"""Synthetic workload generators reproducing the paper's benchmark setups.

Section 5.2.2 parameterizes its benchmarks by per-party update rates and
operation type (blind writes vs read+write transactions).  These generators
drive DECAF sites on the simulated network with seeded, reproducible
schedules.
"""

from repro.workloads.generators import (
    ArrivalProcess,
    PoissonArrivals,
    UniformArrivals,
    BlindWriteWorkload,
    ReadModifyWriteWorkload,
    TransferWorkload,
    WorkloadParty,
    run_workload,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "BlindWriteWorkload",
    "ReadModifyWriteWorkload",
    "TransferWorkload",
    "WorkloadParty",
    "run_workload",
]
