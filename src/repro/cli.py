"""Command-line interface: regenerate the paper's experiments without pytest.

Usage::

    python -m repro.cli list                 # show available experiments
    python -m repro.cli bench E1 E6          # run selected experiments
    python -m repro.cli bench --all          # run the whole evaluation
    python -m repro.cli bench --all --jobs 4 # fan experiments across processes
    python -m repro.cli bench E1 --json      # machine-readable output
    python -m repro.cli examples             # list runnable example scripts

Each benchmark module under ``benchmarks/`` exposes ``run_experiment()``;
the CLI imports and runs it, printing the paper-style table (results are
also persisted under ``benchmarks/results/``).

``--jobs N`` fans the selected experiments across a ``multiprocessing``
pool.  Every experiment is an isolated deterministic simulation, so
parallelism cannot change any result: tables are collected from the
workers and printed/persisted in the same order as a serial run, byte for
byte.  ``--json`` replaces the pretty tables on stdout with one JSON
document (``{"experiments": [{"id", "headline", "table"}, ...]}``) while
still persisting the plain-text artifacts.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.report import Table, emit, format_table

# Loaded benchmark modules, keyed by file path: ``list`` and ``bench`` both
# need the module (docstring headline, run_experiment), and a single cache
# ensures each module is exec'd at most once per process.
_MODULE_CACHE: Dict[str, Any] = {}


def _benchmarks_dir() -> str:
    candidates = [
        os.path.join(os.getcwd(), "benchmarks"),
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "benchmarks"),
    ]
    for candidate in candidates:
        if os.path.isdir(candidate):
            return candidate
    raise SystemExit("cannot locate the benchmarks/ directory; run from the repo root")


def discover_experiments() -> Dict[str, str]:
    """Map experiment id (e.g. 'E6') to its bench module path."""
    directory = _benchmarks_dir()
    experiments: Dict[str, str] = {}
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("bench_e") and name.endswith(".py")):
            continue
        exp_id = name.split("_")[1].upper()  # bench_e6_... -> E6
        experiments[exp_id] = os.path.join(directory, name)
    return experiments


def _load_module(path: str):
    cached = _MODULE_CACHE.get(path)
    if cached is not None:
        return cached
    name = os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    _MODULE_CACHE[path] = module
    return module


def _headline(module) -> str:
    doc = module.__doc__ or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


def _execute_experiment(exp_id: str, path: str) -> Tuple[str, str, Table]:
    """Run one experiment; returns (id, module headline, result table)."""
    module = _load_module(path)
    runner = getattr(module, "run_experiment", None)
    if runner is None:
        raise SystemExit(f"{path} has no run_experiment()")
    result = runner()
    table = result[0] if isinstance(result, tuple) else result
    return exp_id, _headline(module), table


def _pool_worker(task: Tuple[str, str]) -> Tuple[str, str, Table]:
    """Top-level (picklable) adapter for multiprocessing pool workers."""
    return _execute_experiment(*task)


def run_experiment(exp_id: str, path: str) -> None:
    exp_id, headline, table = _execute_experiment(exp_id, path)
    print(f"\n### {exp_id}: {headline}")
    emit(exp_id, format_table(table))


def cmd_list(_args: argparse.Namespace) -> int:
    for exp_id, path in discover_experiments().items():
        print(f"  {exp_id:5s} {_headline(_load_module(path))}")
    return 0


def _table_as_dict(table: Table) -> Dict[str, Any]:
    return {
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }


def cmd_bench(args: argparse.Namespace) -> int:
    experiments = discover_experiments()
    if args.all:
        selected = list(experiments)
    else:
        selected = [e.upper() for e in args.ids]
        unknown = [e for e in selected if e not in experiments]
        if unknown:
            raise SystemExit(f"unknown experiment ids: {unknown}; try 'list'")
    if not selected:
        raise SystemExit("no experiments selected; pass ids or --all")
    jobs = max(1, args.jobs)
    tasks = [(exp_id, experiments[exp_id]) for exp_id in selected]

    if jobs > 1:
        import multiprocessing

        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            # imap preserves task order, so output is identical to serial.
            results = list(pool.imap(_pool_worker, tasks))
    else:
        results = [_execute_experiment(exp_id, path) for exp_id, path in tasks]

    json_records: List[Dict[str, Any]] = []
    for exp_id, headline, table in results:
        if args.json:
            json_records.append(
                {"id": exp_id, "headline": headline, "table": _table_as_dict(table)}
            )
            emit(exp_id, format_table(table), quiet=True)
        else:
            print(f"\n### {exp_id}: {headline}")
            emit(exp_id, format_table(table))
    if args.json:
        print(json.dumps({"experiments": json_records}, indent=2, default=str))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Randomized-schedule conformance campaigns (see repro.explore)."""
    from repro.explore import replay_artifact, run_campaign, run_trial
    from repro.explore.campaign import artifact_for, artifact_json
    from repro.obs import chrome_trace_json

    if args.replay:
        with open(args.replay) as fh:
            artifact = json.load(fh)
        regenerated, identical = replay_artifact(artifact)
        violations = regenerated["violations"]
        if args.json:
            print(
                json.dumps(
                    {
                        "replay": args.replay,
                        "violations": len(violations),
                        "byte_identical": identical,
                    },
                    indent=2,
                )
            )
        else:
            print(
                f"replayed {args.replay}: {len(violations)} violations, "
                f"byte-identical={identical}"
            )
            for v in violations[:20]:
                print(f"  [{v['oracle']}] site={v['site']} obj={v['obj']}: {v['detail']}")
        return 0 if identical else 1

    result = run_campaign(
        trials=args.trials,
        seed=args.seed,
        mutations=tuple(args.mutate),
        faults=not args.no_faults,
        stop_at_first=args.stop_at_first,
        shrink=args.shrink,
        timeline=True,
    )
    artifact_path = None
    timeline_path = None
    if result.failures:
        head = result.failures[0]
        artifact_path = args.out
        with open(artifact_path, "w") as fh:
            fh.write(
                artifact_json(
                    artifact_for(
                        head.config, head.violations, head.timeline, analyze=True
                    )
                )
            )
        if args.timeline_out:
            # Chrome trace of the failing trial, Perfetto-loadable.
            timeline_path = args.timeline_out
            observed = run_trial(head.config, observe=True)
            with open(timeline_path, "w") as fh:
                fh.write(chrome_trace_json(observed.events))
    if args.json:
        print(
            json.dumps(
                {
                    "trials": result.trials_run,
                    "seed": result.seed,
                    "mutations": list(args.mutate),
                    "violating_trials": [f.index for f in result.failures],
                    "artifact": artifact_path,
                    "timeline": timeline_path,
                },
                indent=2,
            )
        )
    else:
        print(result.summary())
        for failure in result.failures[:5]:
            print(f"trial {failure.index} ({len(failure.config.faults)} faults):")
            for v in failure.violations[:8]:
                print(f"  {v}")
        if artifact_path:
            print(f"first violation written to {artifact_path} (replay with --replay)")
        if timeline_path:
            print(f"failing trial's Chrome trace written to {timeline_path} (open in Perfetto)")
    return 0 if result.ok else 1


def _parse_mc_txns(specs: List[str]) -> List[tuple]:
    txns = []
    for spec in specs:
        try:
            site_s, kind = spec.split(":", 1)
            txns.append((int(site_s), kind))
        except ValueError:
            raise SystemExit(f"bad --txn {spec!r}: expected SITE:KIND, e.g. 0:rmw")
    return txns


def cmd_mc(args: argparse.Namespace) -> int:
    """Bounded-exhaustive schedule model checking (see repro.explore.mc)."""
    from repro.explore.campaign import artifact_json
    from repro.explore.mc import (
        CANARY_CONFIGS,
        canary_config,
        cross_check,
        explore,
        mc_artifact_for,
        replay_mc_artifact,
    )
    from repro.explore.plan import exhaustive_config

    if args.replay:
        with open(args.replay) as fh:
            artifact = json.load(fh)
        regenerated, identical = replay_mc_artifact(artifact)
        violations = regenerated["violations"]
        if args.json:
            print(
                json.dumps(
                    {
                        "replay": args.replay,
                        "violations": len(violations),
                        "byte_identical": identical,
                    },
                    indent=2,
                )
            )
        else:
            print(
                f"replayed {args.replay}: schedule of {len(artifact['schedule'])} events, "
                f"{len(violations)} violations, byte-identical={identical}"
            )
            for v in violations[:20]:
                print(f"  [{v['oracle']}] site={v['site']} obj={v['obj']}: {v['detail']}")
        return 0 if identical else 1

    if args.canary:
        # Canary mode: the mutation MUST be caught — exit 0 iff it is.
        config = canary_config(args.canary)
        result = explore(
            config, por=not args.full, max_steps=args.max_steps, stop_on_violation=True
        )
        oracles = sorted({key[0] for key in result.violation_keys()})
        allowed = sorted(CANARY_CONFIGS[args.canary]["oracles"])
        caught = not result.ok and set(oracles) <= set(allowed)
        if args.json:
            print(
                json.dumps(
                    {
                        "canary": args.canary,
                        "caught": caught,
                        "oracles": oracles,
                        "allowed": allowed,
                        "stats": result.stats.to_dict(),
                    },
                    indent=2,
                )
            )
        else:
            verdict = "CAUGHT" if caught else "MISSED"
            print(
                f"canary {args.canary}: {verdict} by {oracles or 'nothing'} "
                f"after {result.stats.schedules} schedules"
            )
        return 0 if caught else 1

    if args.txn:
        config = exhaustive_config(
            args.sites,
            _parse_mc_txns(args.txn),
            views=not args.no_views,
            mutations=tuple(args.mutate),
            max_retries=args.max_retries,
        )
    else:
        # Default workload: one rmw per site — maximal contention on one
        # object, the protocol's hard case.
        config = exhaustive_config(
            args.sites,
            [(s, "rmw") for s in range(args.sites)],
            views=not args.no_views,
            mutations=tuple(args.mutate),
            max_retries=args.max_retries,
        )

    if args.cross_check:
        verdict = cross_check(config, max_steps=args.max_steps)
        full, reduced = verdict["full"], verdict["reduced"]
        sound = verdict["violations_match"] and verdict["outcomes_match"]
        if args.json:
            print(
                json.dumps(
                    {
                        "config": config.label,
                        "full": full.stats.to_dict(),
                        "por": reduced.stats.to_dict(),
                        "ratio": verdict["ratio"],
                        "violations_match": verdict["violations_match"],
                        "outcomes_match": verdict["outcomes_match"],
                        "ok": full.ok,
                    },
                    indent=2,
                )
            )
        else:
            print(f"cross-check {config.label}:")
            print(f"  {full.summary()}")
            print(f"  {reduced.summary()}")
            print(
                f"  ratio={verdict['ratio']:.3f} violations_match={verdict['violations_match']} "
                f"outcomes_match={verdict['outcomes_match']}"
            )
        if not sound:
            return 2
        return 0 if full.ok else 1

    result = explore(
        config,
        por=not args.full,
        max_schedules=args.max_schedules,
        max_steps=args.max_steps,
    )
    artifact_path = None
    if not result.ok:
        _fp, schedule, violations = result.violating()[0]
        artifact_path = args.out
        with open(artifact_path, "w") as fh:
            fh.write(artifact_json(mc_artifact_for(config, schedule, violations)))
    if args.json:
        doc = {
            "config": config.label,
            "por": result.por,
            "exhausted": result.exhausted,
            "ok": result.ok,
            "stats": result.stats.to_dict(),
            "artifact": artifact_path,
        }
        print(json.dumps(doc, indent=2))
    else:
        print(f"{config.label}: {result.summary()}")
        if args.stats:
            for key, value in result.stats.to_dict().items():
                print(f"  {key:18s} {value}")
        for _fp, schedule, violations in result.violating()[:3]:
            print(f"violating schedule ({len(schedule)} events):")
            for v in violations[:8]:
                print(f"  {v}")
        if artifact_path:
            print(f"first violating schedule written to {artifact_path} (replay with --replay)")
    return 0 if result.ok else 1


def _cmd_trace_merge(args: argparse.Namespace) -> int:
    """Fuse per-process JSONL timelines into one cross-process trace."""
    from repro.obs import (
        analysis_json,
        analyze_timeline,
        chrome_trace_json,
        events_from_timeline,
        format_critical_path_report,
        load_timeline,
        merge_timelines,
    )

    timelines = [load_timeline(path) for path in args.merge]
    merged = merge_timelines(timelines)
    if args.format == "chrome":
        payload = chrome_trace_json(events_from_timeline(merged.events))
    else:
        payload = merged.to_jsonl()
    with open(args.out, "w") as fh:
        fh.write(payload)

    analysis = analyze_timeline(merged.events) if args.analyze else None
    if analysis is not None and args.analysis_out:
        with open(args.analysis_out, "w") as fh:
            fh.write(analysis_json(analysis))

    unmatched = len(merged.unmatched_sends) + len(merged.unmatched_deliveries)
    if args.json:
        doc = {
            "inputs": list(args.merge),
            "out": args.out,
            "format": args.format,
            "events": len(merged.events),
            "pairs": merged.pairs,
            "unmatched_sends": merged.unmatched_sends,
            "unmatched_deliveries": merged.unmatched_deliveries,
            "offsets_ms": {str(k): v for k, v in merged.offsets_ms.items()},
            "clamped": merged.clamped,
            "disconnected": merged.disconnected,
            "sampled_out": merged.sampled_out,
        }
        if analysis is not None:
            doc["analysis"] = analysis
        print(json.dumps(doc, indent=2, sort_keys=True))
    elif not args.quiet:
        print(
            f"merged {len(timelines)} timelines: {len(merged.events)} events, "
            f"{merged.pairs} message edges, {unmatched} unmatched, "
            f"{len(merged.sampled_out)} sampled out, {merged.clamped} clamped"
        )
        offsets = "  ".join(f"p{p}={off:+.3f}ms" for p, off in merged.offsets_ms.items())
        print(f"clock offsets vs p0: {offsets}")
        if merged.disconnected:
            print(f"warning: processes {merged.disconnected} share no message "
                  "edges with p0 (offset assumed 0)")
        print(f"{args.format} merged timeline written to {args.out}")
        if analysis is not None:
            print(format_critical_path_report(analysis["critical_path"]), end="")
            if args.analysis_out:
                print(f"full causal analysis written to {args.analysis_out}")
    if unmatched and not args.allow_unmatched:
        for msg_id in merged.unmatched_sends[:10]:
            print(f"unmatched send: {msg_id}", file=sys.stderr)
        for msg_id in merged.unmatched_deliveries[:10]:
            print(f"unmatched delivery: {msg_id}", file=sys.stderr)
        print(
            f"trace --merge: {unmatched} unmatched message edges "
            "(pass --allow-unmatched to tolerate in-flight shutdown loss)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one observed trial; export its event timeline."""
    if args.merge:
        return _cmd_trace_merge(args)
    from repro.explore.plan import sample_config
    from repro.explore.trial import run_trial
    from repro.obs import (
        analysis_json,
        analyze_events,
        build_spans,
        chrome_trace_json,
        format_critical_path_report,
        span_summary,
        to_jsonl,
    )

    config = sample_config(
        args.seed, args.index, mutations=tuple(args.mutate), faults=not args.no_faults
    )
    result = run_trial(config, observe=True)
    events = result.events
    if not events:
        print(
            f"trace: trial seed={args.seed} index={args.index} produced zero "
            "events — nothing to export",
            file=sys.stderr,
        )
        return 1
    if args.format == "chrome":
        payload = chrome_trace_json(events)
    else:
        payload = to_jsonl(events)
    with open(args.out, "w") as fh:
        fh.write(payload)

    spans = build_spans(events)
    summary = span_summary(spans)
    analysis = analyze_events(events) if args.analyze else None
    if analysis is not None and args.analysis_out:
        with open(args.analysis_out, "w") as fh:
            fh.write(analysis_json(analysis))
    if args.json:
        doc = {
            "seed": args.seed,
            "index": args.index,
            "out": args.out,
            "format": args.format,
            "events": len(events),
            "spans": summary,
        }
        if analysis is not None:
            doc["analysis"] = analysis
        print(json.dumps(doc, indent=2, sort_keys=True))
    elif not args.quiet:
        print(
            f"trial seed={args.seed} index={args.index}: {len(events)} events, "
            f"{summary['spans']} txn spans "
            f"({summary['committed']} committed, {summary['aborted']} aborted)"
        )
        print(f"{args.format} timeline written to {args.out}")
        if args.format == "chrome":
            print("open in https://ui.perfetto.dev (or chrome://tracing)")
        if analysis is not None:
            print(format_critical_path_report(analysis["critical_path"]), end="")
            print(
                f"aborts analyzed: {len(analysis['aborts'])}  "
                f"stragglers: {len(analysis['stragglers'])}  "
                f"guess edges: {analysis['guess_edges']}"
            )
            if args.analysis_out:
                print(f"full causal analysis written to {args.analysis_out}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run one trial; print the per-site metrics registry snapshots."""
    from repro.explore.plan import sample_config
    from repro.explore.trial import run_trial

    config = sample_config(
        args.seed, args.index, mutations=tuple(args.mutate), faults=not args.no_faults
    )
    result = run_trial(config)
    snapshots = result.session.metrics_snapshot()
    activity = sum(
        value for snap in snapshots for value in snap["counters"].values()
    ) + sum(hist["total"] for snap in snapshots for hist in snap["histograms"].values())
    if not activity:
        print(
            f"metrics: trial seed={args.seed} index={args.index} recorded zero "
            "protocol activity — nothing to report",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps({"sites": snapshots}, indent=2, sort_keys=True))
        return 0
    if args.quiet:
        return 0
    for snap in snapshots:
        print(f"site {snap['site']}:")
        for name, value in snap["counters"].items():
            print(f"  {name:32s} {value}")
        for name, value in snap["gauges"].items():
            print(f"  {name:32s} {value}")
        for name, hist in snap["histograms"].items():
            if hist["total"]:
                print(
                    f"  {name:32s} n={hist['total']} mean={hist['mean']:.1f} "
                    f"min={hist['min']:.1f} max={hist['max']:.1f}"
                )
            else:
                print(f"  {name:32s} n=0")
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """Stream health detectors over a campaign's trials, live off the bus."""
    from repro.explore.plan import sample_config
    from repro.explore.trial import run_trial
    from repro.obs.health import (
        AbortRateSpike,
        HealthMonitor,
        NotifyLagSLO,
        RepairStall,
        StragglerCascade,
        burn_rules,
    )

    trial_reports = []
    total_findings = 0
    worst = "ok"
    severity_rank = {"ok": 0, "info": 1, "warning": 2, "critical": 3}
    for index in range(args.trials):
        config = sample_config(
            args.seed, index, mutations=tuple(args.mutate), faults=not args.no_faults
        )
        rules = [
            AbortRateSpike(),
            StragglerCascade(depth=args.straggler_depth),
            NotifyLagSLO(slo_ms=args.notify_slo_ms),
            RepairStall(),
        ]
        if args.burn_rate:
            rules.extend(burn_rules(notify_slo_ms=args.notify_slo_ms))
        monitor = HealthMonitor(rules)
        run_trial(config, subscribers=(monitor,))
        report = monitor.report()
        total_findings += len(report.findings)
        if severity_rank[report.status] > severity_rank[worst]:
            worst = report.status
        trial_reports.append((index, report))

    if args.json:
        print(
            json.dumps(
                {
                    "seed": args.seed,
                    "trials": args.trials,
                    "status": worst,
                    "findings": total_findings,
                    "reports": [
                        {"index": index, **report.to_dict()}
                        for index, report in trial_reports
                        if report.findings or not args.quiet
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        if not args.quiet:
            print(
                f"health: {args.trials} trials seed={args.seed} → status={worst}, "
                f"{total_findings} finding(s)"
            )
        for index, report in trial_reports:
            if not report.findings:
                continue
            print(f"trial {index}:")
            for line in report.format_text().splitlines()[1:]:
                print(line)
    return 0 if total_findings == 0 else 1


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard tailing a telemetry directory."""
    import dataclasses
    import time

    from repro.obs.top import read_dashboard, render_dashboard

    if not os.path.isdir(args.dir):
        print(f"top: no such directory: {args.dir}", file=sys.stderr)
        return 1
    if args.once:
        state = read_dashboard(args.dir)
        if args.json:
            doc = dataclasses.asdict(state)
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(render_dashboard(state))
        return 0
    try:
        while True:
            state = read_dashboard(args.dir)
            # Clear + home, then the frame: a flicker-free refresh on any
            # ANSI terminal without a curses dependency.
            sys.stdout.write("\x1b[2J\x1b[H" + render_dashboard(state) + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_examples(_args: argparse.Namespace) -> int:
    directory = os.path.join(os.path.dirname(_benchmarks_dir()), "examples")
    for name in sorted(os.listdir(directory)):
        if name.endswith(".py"):
            with open(os.path.join(directory, name)) as fh:
                fh.readline()  # shebang
                headline = fh.readline().strip().strip('"""').strip()
            print(f"  python examples/{name:22s} {headline}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DECAF reproduction: experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=cmd_list)

    bench = sub.add_parser("bench", help="run experiments and print their tables")
    bench.add_argument("ids", nargs="*", help="experiment ids, e.g. E1 E6")
    bench.add_argument("--all", action="store_true", help="run every experiment")
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments across N worker processes (default: serial)",
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="print one JSON document instead of pretty tables",
    )
    bench.set_defaults(func=cmd_bench)

    explore = sub.add_parser(
        "explore",
        help="randomized-schedule conformance campaigns with fault injection",
    )
    explore.add_argument("--trials", type=int, default=50, help="number of sampled trials")
    explore.add_argument("--seed", type=int, default=0, help="campaign master seed")
    explore.add_argument(
        "--mutate",
        action="append",
        default=[],
        metavar="FLAG",
        help="enable a protocol mutation canary (e.g. skip_rl_check); repeatable",
    )
    explore.add_argument(
        "--no-faults", action="store_true", help="disable fault injection (jitter/crash/partition)"
    )
    explore.add_argument(
        "--stop-at-first", action="store_true", help="stop the campaign at the first violation"
    )
    explore.add_argument(
        "--shrink", action="store_true", help="greedily minimize violating fault plans"
    )
    explore.add_argument(
        "--replay", metavar="FILE", help="replay a violation artifact instead of sampling"
    )
    explore.add_argument(
        "--out",
        default="explore-violation.json",
        metavar="FILE",
        help="where to write the first violation artifact",
    )
    explore.add_argument(
        "--timeline-out",
        metavar="FILE",
        help="also write the failing trial's Chrome trace (Perfetto-loadable)",
    )
    explore.add_argument("--json", action="store_true", help="machine-readable summary")
    explore.set_defaults(func=cmd_explore)

    mc = sub.add_parser(
        "mc",
        help="bounded-exhaustive schedule model checking with partial-order reduction",
    )
    mc.add_argument("--sites", type=int, default=2, help="number of sites (default 2)")
    mc.add_argument(
        "--txn",
        action="append",
        default=[],
        metavar="SITE:KIND",
        help="one single-transaction party, e.g. 0:rmw 1:xfer; repeatable "
        "(default: one rmw per site)",
    )
    mc.add_argument(
        "--no-views", action="store_true", help="skip attaching recording views (smaller space)"
    )
    mc.add_argument(
        "--mutate",
        action="append",
        default=[],
        metavar="FLAG",
        help="enable a protocol mutation canary; repeatable",
    )
    mc.add_argument(
        "--full",
        action="store_true",
        help="disable partial-order reduction (enumerate the unreduced space)",
    )
    mc.add_argument(
        "--max-schedules",
        type=int,
        default=None,
        metavar="N",
        help="stop after N complete schedules (result marked non-exhausted)",
    )
    mc.add_argument(
        "--max-steps",
        type=int,
        default=4096,
        metavar="N",
        help="per-schedule choice-event cap (livelock guard)",
    )
    mc.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="transaction retry bound (third dimension of the bounded space)",
    )
    mc.add_argument("--stats", action="store_true", help="print explored/pruned/deduped counters")
    mc.add_argument(
        "--cross-check",
        action="store_true",
        help="run full and POR explorations; verify identical outcomes and violations",
    )
    mc.add_argument(
        "--canary",
        metavar="MUTATION",
        help="run the smallest config exposing MUTATION; exit 0 iff caught",
    )
    mc.add_argument(
        "--out",
        default="mc-violation.json",
        metavar="FILE",
        help="where to write the first violating schedule artifact",
    )
    mc.add_argument(
        "--replay", metavar="FILE", help="replay a repro-mc/1 schedule artifact instead of exploring"
    )
    mc.add_argument("--json", action="store_true", help="machine-readable summary")
    mc.set_defaults(func=cmd_mc)

    trace = sub.add_parser(
        "trace",
        help="run one observed trial and export its protocol event timeline",
    )
    trace.add_argument("--seed", type=int, default=0, help="campaign master seed")
    trace.add_argument("--index", type=int, default=0, help="trial index within the seed")
    trace.add_argument(
        "--mutate", action="append", default=[], metavar="FLAG",
        help="enable a protocol mutation canary; repeatable",
    )
    trace.add_argument("--no-faults", action="store_true", help="disable fault injection")
    trace.add_argument(
        "--merge",
        nargs="+",
        metavar="JSONL",
        help="instead of running a trial, fuse per-process wall-clock JSONL "
        "timelines (trace exports or flight dumps) into one cross-process "
        "happens-before trace: send/deliver pairing, clock-skew alignment, "
        "causal re-sequencing; exits 1 on unmatched message edges",
    )
    trace.add_argument(
        "--allow-unmatched",
        action="store_true",
        help="with --merge, tolerate unmatched send/deliver pairs (messages "
        "in flight at shutdown) instead of failing",
    )
    trace.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="chrome = Perfetto trace-event JSON; jsonl = one event per line",
    )
    trace.add_argument(
        "--out", default="trace.json", metavar="FILE", help="output file path"
    )
    trace.add_argument(
        "--analyze",
        action="store_true",
        help="run the causal analysis engine: critical-path attribution, "
        "abort causal chains, guess-dependency graph",
    )
    trace.add_argument(
        "--analysis-out",
        metavar="FILE",
        help="with --analyze, also write the full analysis JSON here",
    )
    trace.add_argument("--json", action="store_true", help="machine-readable summary")
    trace.add_argument(
        "--quiet", action="store_true", help="suppress normal output (for scripts)"
    )
    trace.set_defaults(func=cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run one trial and dump the per-site metrics registries",
    )
    metrics.add_argument("--seed", type=int, default=0, help="campaign master seed")
    metrics.add_argument("--index", type=int, default=0, help="trial index within the seed")
    metrics.add_argument(
        "--mutate", action="append", default=[], metavar="FLAG",
        help="enable a protocol mutation canary; repeatable",
    )
    metrics.add_argument("--no-faults", action="store_true", help="disable fault injection")
    metrics.add_argument("--json", action="store_true", help="full JSON snapshots")
    metrics.add_argument(
        "--quiet",
        action="store_true",
        help="suppress normal output; exit status still reports zero activity",
    )
    metrics.set_defaults(func=cmd_metrics)

    health = sub.add_parser(
        "health",
        help="run streaming protocol-health detectors over campaign trials",
    )
    health.add_argument("--seed", type=int, default=0, help="campaign master seed")
    health.add_argument("--trials", type=int, default=10, help="number of sampled trials")
    health.add_argument(
        "--mutate", action="append", default=[], metavar="FLAG",
        help="enable a protocol mutation canary; repeatable",
    )
    health.add_argument("--no-faults", action="store_true", help="disable fault injection")
    health.add_argument(
        "--notify-slo-ms",
        type=float,
        default=120.0,
        help="pessimistic notify-lag SLO in simulated ms (default 120)",
    )
    health.add_argument(
        "--straggler-depth",
        type=int,
        default=3,
        help="straggler-cascade depth threshold (default 3)",
    )
    health.add_argument(
        "--burn-rate",
        action="store_true",
        help="also run the multi-window SLO burn-rate detectors "
        "(notify-lag and abort-rate error-budget burn)",
    )
    health.add_argument("--json", action="store_true", help="machine-readable reports")
    health.add_argument(
        "--quiet", action="store_true", help="only print trials with findings"
    )
    health.set_defaults(func=cmd_health)

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a telemetry directory "
        "(.prom metric snapshots + agg*.json per-tenant rollups)",
    )
    top.add_argument(
        "--dir",
        default=".",
        metavar="DIR",
        help="directory the live processes write telemetry files into "
        "(e.g. the --trace-dir of examples/two_process_tcp.py)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (CI smoke / scripting)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="refresh interval in seconds (default 1.0)",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="with --once, print the frame's data as JSON instead of text",
    )
    top.set_defaults(func=cmd_top)

    sub.add_parser("examples", help="list runnable example scripts").set_defaults(
        func=cmd_examples
    )

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
