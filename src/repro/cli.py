"""Command-line interface: regenerate the paper's experiments without pytest.

Usage::

    python -m repro.cli list                 # show available experiments
    python -m repro.cli bench E1 E6          # run selected experiments
    python -m repro.cli bench --all          # run the whole evaluation
    python -m repro.cli examples             # list runnable example scripts

Each benchmark module under ``benchmarks/`` exposes ``run_experiment()``;
the CLI imports and runs it, printing the paper-style table (results are
also persisted under ``benchmarks/results/``).
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import sys
from typing import Dict, List, Optional

from repro.bench.report import emit, format_table


def _benchmarks_dir() -> str:
    candidates = [
        os.path.join(os.getcwd(), "benchmarks"),
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "benchmarks"),
    ]
    for candidate in candidates:
        if os.path.isdir(candidate):
            return candidate
    raise SystemExit("cannot locate the benchmarks/ directory; run from the repo root")


def discover_experiments() -> Dict[str, str]:
    """Map experiment id (e.g. 'E6') to its bench module path."""
    directory = _benchmarks_dir()
    experiments: Dict[str, str] = {}
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("bench_e") and name.endswith(".py")):
            continue
        exp_id = name.split("_")[1].upper()  # bench_e6_... -> E6
        experiments[exp_id] = os.path.join(directory, name)
    return experiments


def _load_module(path: str):
    name = os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_experiment(exp_id: str, path: str) -> None:
    module = _load_module(path)
    runner = getattr(module, "run_experiment", None)
    if runner is None:
        raise SystemExit(f"{path} has no run_experiment()")
    print(f"\n### {exp_id}: {module.__doc__.strip().splitlines()[0]}")
    result = runner()
    table = result[0] if isinstance(result, tuple) else result
    emit(exp_id, format_table(table))


def cmd_list(_args: argparse.Namespace) -> int:
    for exp_id, path in discover_experiments().items():
        module_doc = _load_module(path).__doc__ or ""
        headline = module_doc.strip().splitlines()[0] if module_doc else ""
        print(f"  {exp_id:5s} {headline}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    experiments = discover_experiments()
    if args.all:
        selected = list(experiments)
    else:
        selected = [e.upper() for e in args.ids]
        unknown = [e for e in selected if e not in experiments]
        if unknown:
            raise SystemExit(f"unknown experiment ids: {unknown}; try 'list'")
    if not selected:
        raise SystemExit("no experiments selected; pass ids or --all")
    for exp_id in selected:
        run_experiment(exp_id, experiments[exp_id])
    return 0


def cmd_examples(_args: argparse.Namespace) -> int:
    directory = os.path.join(os.path.dirname(_benchmarks_dir()), "examples")
    for name in sorted(os.listdir(directory)):
        if name.endswith(".py"):
            with open(os.path.join(directory, name)) as fh:
                fh.readline()  # shebang
                headline = fh.readline().strip().strip('"""').strip()
            print(f"  python examples/{name:22s} {headline}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DECAF reproduction: experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=cmd_list)

    bench = sub.add_parser("bench", help="run experiments and print their tables")
    bench.add_argument("ids", nargs="*", help="experiment ids, e.g. E1 E6")
    bench.add_argument("--all", action="store_true", help="run every experiment")
    bench.set_defaults(func=cmd_bench)

    sub.add_parser("examples", help="list runnable example scripts").set_defaults(
        func=cmd_examples
    )

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
