"""Persistence store and recovery (paper section 5.3 future work).

"We are also incorporating a persistence store and recovery from a variety
of failures into the algorithms of DECAF."

This package implements that roadmap item: a site can checkpoint the
*committed* state of its model objects to a JSON-serializable document
(:func:`~repro.persist.store.checkpoint_site`), and a restarted application
can restore those objects (:func:`~repro.persist.store.restore_site`) and
rejoin its collaborations through the ordinary invitation/join protocol —
the state sync then reconciles anything missed while down.
"""

from repro.persist.store import (
    CheckpointError,
    checkpoint_site,
    checkpoint_to_json,
    restore_from_json,
    restore_site,
)

__all__ = [
    "CheckpointError",
    "checkpoint_site",
    "checkpoint_to_json",
    "restore_from_json",
    "restore_site",
]
