"""Checkpoint and restore of a site's committed model-object state.

A checkpoint captures, for every root (non-embedded) model object the
application created, its latest **committed** state — optimistic
uncommitted values are deliberately excluded, exactly as a recovery log
would only contain committed transactions.  Composite checkpoints preserve
slot identities (VT tags), so a cluster restored from checkpoints keeps
resolvable indirect-propagation paths.

Replication graphs are NOT checkpointed: membership reflects live sites,
so a restarted application re-establishes its collaborations through the
ordinary invitation/join protocol, and the join's state sync reconciles
anything missed while down (see ``examples``/``tests`` for the pattern).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.core.association import Association
from repro.core.composites import DList, DMap, KeySlot, ListSlot
from repro.core.history import ValueHistory
from repro.core.messages import SlotId
from repro.core.model import ModelObject
from repro.core.scalars import ScalarObject, scalar_class_for
from repro.core.site import SiteRuntime
from repro.errors import ReproError
from repro.vtime import VirtualTime

FORMAT_VERSION = 1


class CheckpointError(ReproError):
    """A checkpoint document is malformed or incompatible."""


# ---------------------------------------------------------------------------
# VT / SlotId codecs
# ---------------------------------------------------------------------------


def _enc_vt(vt: VirtualTime) -> List[int]:
    return [vt.counter, vt.site]


def _dec_vt(doc: List[int]) -> VirtualTime:
    return VirtualTime(int(doc[0]), int(doc[1]))


def _enc_slot_id(slot_id: SlotId) -> List[int]:
    return [slot_id.vt.counter, slot_id.vt.site, slot_id.seq]


def _dec_slot_id(doc: List[int]) -> SlotId:
    return SlotId(VirtualTime(int(doc[0]), int(doc[1])), int(doc[2]))


# ---------------------------------------------------------------------------
# Checkpoint (committed state only)
# ---------------------------------------------------------------------------


def checkpoint_site(site: SiteRuntime) -> Dict[str, Any]:
    """Capture the committed state of all root objects at ``site``."""
    objects: Dict[str, Any] = {}
    for obj in site.objects.values():
        if obj.parent is not None:
            continue  # embedded children ride inside their roots
        objects[obj.name] = _checkpoint_node(obj)
    return {
        "format": FORMAT_VERSION,
        "site_id": site.site_id,
        "site_name": site.name,
        "clock": site.clock.counter,
        "objects": objects,
    }


def _committed_entry(history: ValueHistory):
    return history.committed_current()


def _checkpoint_node(obj: ModelObject) -> Dict[str, Any]:
    if isinstance(obj, DList):
        slots = []
        for slot in obj._slots:
            if not slot.embed_committed and not _is_initial(slot.slot_id.vt):
                continue  # uncommitted insert: not part of durable state
            slots.append(
                {
                    "slot_id": _enc_slot_id(slot.slot_id),
                    "removed_vts": [
                        _enc_vt(e.vt) for e in slot.removes if e.committed
                    ],
                    "removed": any(e.committed for e in slot.removes),
                    "child": _checkpoint_node(slot.child),
                }
            )
        entry = _committed_entry(obj.history)
        return {"kind": "list", "structure_vt": _enc_vt(entry.vt), "slots": slots}
    if isinstance(obj, DMap):
        entries = []
        for key, key_slots in sorted(obj._keys.items(), key=lambda kv: repr(kv[0])):
            best: Optional[KeySlot] = None
            for slot in key_slots:
                if slot.committed and (best is None or slot.vt > best.vt):
                    best = slot
            if best is None:
                continue
            entries.append(
                {
                    "key": key,
                    "vt": _enc_vt(best.vt),
                    "child": _checkpoint_node(best.child) if best.child is not None else None,
                }
            )
        entry = _committed_entry(obj.history)
        return {"kind": "map", "structure_vt": _enc_vt(entry.vt), "entries": entries}
    if isinstance(obj, Association):
        entry = _committed_entry(obj.history)
        return {
            "kind": "association",
            "vt": _enc_vt(entry.vt),
            "value": _assoc_to_doc(entry.value),
        }
    if isinstance(obj, ScalarObject):
        entry = _committed_entry(obj.history)
        return {"kind": obj.kind, "vt": _enc_vt(entry.vt), "value": entry.value}
    raise CheckpointError(f"cannot checkpoint {type(obj).__name__}")


def _is_initial(vt: VirtualTime) -> bool:
    return vt.site == -1


def _assoc_to_doc(value) -> List:
    return [
        [rel_id, [[uid, site] for uid, site in members]] for rel_id, members in value
    ]


def _assoc_from_doc(doc: List):
    return tuple(
        (rel_id, tuple((uid, int(site)) for uid, site in members))
        for rel_id, members in doc
    )


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------


def restore_site(site: SiteRuntime, checkpoint: Dict[str, Any]) -> Dict[str, ModelObject]:
    """Recreate the checkpointed objects at a (fresh) site runtime.

    Returns the restored objects keyed by name.  The site's Lamport clock
    is advanced past the checkpoint's clock so new transactions sort after
    everything in the recovered state.
    """
    if checkpoint.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {checkpoint.get('format')!r}"
        )
    restored: Dict[str, ModelObject] = {}
    for name, doc in checkpoint["objects"].items():
        restored[name] = _restore_root(site, name, doc)
    site.clock.observe(VirtualTime(int(checkpoint["clock"]), site.site_id))
    return restored


def _restore_root(site: SiteRuntime, name: str, doc: Dict[str, Any]) -> ModelObject:
    kind = doc["kind"]
    if kind in ("int", "float", "string"):
        cls = scalar_class_for(kind)
        obj = cls(site, name, doc["value"])
        obj.history = ValueHistory(doc["value"], initial_vt=_dec_vt(doc["vt"]))
        return obj
    if kind == "association":
        assoc = Association(site, name)
        assoc.history = ValueHistory(
            _assoc_from_doc(doc["value"]), initial_vt=_dec_vt(doc["vt"])
        )
        return assoc
    if kind == "list":
        lst = DList(site, name)
        _restore_list(lst, doc)
        return lst
    if kind == "map":
        mapping = DMap(site, name)
        _restore_map(mapping, doc)
        return mapping
    raise CheckpointError(f"unknown checkpointed kind {kind!r}")


def _restore_list(lst: DList, doc: Dict[str, Any]) -> None:
    lst.history = ValueHistory("restored", initial_vt=_dec_vt(doc["structure_vt"]))
    lst._slots = []
    from repro.core.composites import RemoveEvent

    for slot_doc in doc["slots"]:
        slot_id = _dec_slot_id(slot_doc["slot_id"])
        child = _restore_child(lst, None, slot_id, slot_doc["child"])
        lst._slots.append(
            ListSlot(
                slot_id=slot_id,
                child=child,
                embed_committed=True,
                removes=[
                    RemoveEvent(vt=_dec_vt(r), committed=True)
                    for r in slot_doc["removed_vts"]
                ],
            )
        )


def _restore_map(mapping: DMap, doc: Dict[str, Any]) -> None:
    mapping.history = ValueHistory("restored", initial_vt=_dec_vt(doc["structure_vt"]))
    mapping._keys = {}
    for entry in doc["entries"]:
        vt = _dec_vt(entry["vt"])
        child = (
            _restore_child(mapping, entry["key"], vt, entry["child"])
            if entry["child"] is not None
            else None
        )
        mapping._keys[entry["key"]] = [KeySlot(vt=vt, child=child, committed=True)]


def _restore_child(parent: ModelObject, key: Any, embed: Any, doc: Dict[str, Any]) -> ModelObject:
    from repro.core.model import embed_tag

    kind = doc["kind"]
    child_name = f"{parent.name}.{key if key is not None else embed_tag(embed)}"
    vt = getattr(embed, "vt", embed)
    if kind in ("int", "float", "string"):
        cls = scalar_class_for(kind)
        child = cls(parent.site, child_name, doc["value"], parent=parent, embed_vt=embed, key=key)
        child.history = ValueHistory(doc["value"], initial_vt=_dec_vt(doc["vt"]))
        return child
    if kind == "list":
        child = DList(parent.site, child_name, parent=parent, embed_vt=embed, key=key)
        _restore_list(child, doc)
        return child
    if kind == "map":
        child = DMap(parent.site, child_name, parent=parent, embed_vt=embed, key=key)
        _restore_map(child, doc)
        return child
    raise CheckpointError(f"unknown checkpointed child kind {kind!r}")


# ---------------------------------------------------------------------------
# JSON convenience
# ---------------------------------------------------------------------------


def checkpoint_to_json(site: SiteRuntime, indent: Optional[int] = None) -> str:
    """Checkpoint ``site`` straight to a JSON string."""
    return json.dumps(checkpoint_site(site), indent=indent, sort_keys=True)


def restore_from_json(site: SiteRuntime, payload: str) -> Dict[str, ModelObject]:
    """Restore a site from a JSON checkpoint produced by :func:`checkpoint_to_json`."""
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"invalid checkpoint JSON: {exc}") from exc
    return restore_site(site, document)
