"""Unit tests for the ModelObject base: identity, graphs, paths, proxies."""

import pytest

from repro import Session
from repro.core.guesses import DependencyIndex
from repro.core.model import embed_tag
from repro.core.messages import SlotId
from repro.errors import ProtocolError
from repro.vtime import VirtualTime


def vt(counter, site=0):
    return VirtualTime(counter, site)


@pytest.fixture()
def site():
    return Session().add_site("app")


class TestIdentity:
    def test_root_uid(self, site):
        x = site.create_int("x")
        assert x.uid == "s0:x"

    def test_child_uid_unique_and_stable(self, site):
        lst = site.create_list("l")
        holder = []
        site.transact(lambda: holder.extend([lst.append("int", 1), lst.append("int", 2)]))
        uids = [c.uid for c in holder]
        assert len(set(uids)) == 2
        assert all(uid.startswith("s0:l[") for uid in uids)

    def test_embed_tag_for_slot_id(self):
        assert embed_tag(SlotId(vt(7, 2), 3)) == "7@2.3"

    def test_embed_tag_for_vt(self):
        assert embed_tag(vt(7, 2)) == "7@2"


class TestGraphPlumbing:
    def test_root_has_own_graph(self, site):
        x = site.create_int("x")
        assert x.has_own_graph()
        assert x.graph().is_singleton()
        assert x.propagation_root() is x

    def test_embedded_child_inherits_graph(self, site):
        lst = site.create_list("l")
        holder = []
        site.transact(lambda: holder.append(lst.append("int", 1)))
        child = holder[0]
        assert not child.has_own_graph()
        assert child.propagation_root() is lst
        assert child.graph() is lst.graph()

    def test_enable_direct_propagation(self, site):
        lst = site.create_list("l")
        holder = []
        site.transact(lambda: holder.append(lst.append("int", 1)))
        child = holder[0]
        child.enable_direct_propagation()
        assert child.has_own_graph()
        assert child.propagation_root() is child

    def test_primary_site_of_singleton(self, site):
        x = site.create_int("x")
        assert x.primary_site() == 0
        assert x.is_primary_here()

    def test_replica_sites(self, site):
        x = site.create_int("x")
        assert x.replica_sites() == [0]


class TestPaths:
    def test_root_path_is_empty(self, site):
        x = site.create_int("x")
        assert x.path_from_root() == ()

    def test_nested_path_steps(self, site):
        lst = site.create_list("l")
        holder = []

        def build():
            inner = lst.append("map", {})
            holder.append(inner)

        site.transact(build)
        inner = holder[0]
        holder2 = []
        site.transact(lambda: holder2.append(inner.put("k", "int", 1)))
        leaf = holder2[0]
        path = leaf.path_from_root()
        assert len(path) == 2
        assert path[0].key is None  # list step addressed by SlotId
        assert path[1].key == "k"

    def test_path_stops_at_direct_propagation_node(self, site):
        lst = site.create_list("l")
        holder = []
        site.transact(lambda: holder.append(lst.append("int", 1)))
        child = holder[0]
        child.enable_direct_propagation()
        assert child.path_from_root() == ()


class TestDependencyIndex:
    def test_commit_resolution(self):
        index = DependencyIndex()
        fired = []
        index.wait_for(vt(5), on_commit=lambda: fired.append("c"), on_abort=lambda: fired.append("a"))
        assert index.resolve_commit(vt(5)) == 1
        assert fired == ["c"]
        assert len(index) == 0

    def test_abort_resolution(self):
        index = DependencyIndex()
        fired = []
        index.wait_for(vt(5), on_commit=lambda: fired.append("c"), on_abort=lambda: fired.append("a"))
        index.resolve_abort(vt(5))
        assert fired == ["a"]

    def test_multiple_waiters(self):
        index = DependencyIndex()
        fired = []
        for i in range(3):
            index.wait_for(vt(5), on_commit=lambda i=i: fired.append(i), on_abort=lambda: None)
        assert index.resolve_commit(vt(5)) == 3
        assert fired == [0, 1, 2]

    def test_unknown_vt_resolves_zero(self):
        index = DependencyIndex()
        assert index.resolve_commit(vt(99)) == 0

    def test_pending_vts(self):
        index = DependencyIndex()
        index.wait_for(vt(1), on_commit=lambda: None, on_abort=lambda: None)
        index.wait_for(vt(2), on_commit=lambda: None, on_abort=lambda: None)
        assert index.pending_vts() == {vt(1), vt(2)}


class TestViewAttachment:
    def test_attach_registers_proxy(self, site):
        from repro import View

        class Null(View):
            def update(self, changed, snapshot):
                pass

        x = site.create_int("x")
        proxy = x.attach(Null(), "optimistic")
        assert proxy in x.proxies
        assert proxy in site.views.proxies

    def test_detach_unregisters(self, site):
        from repro import View

        class Null(View):
            def update(self, changed, snapshot):
                pass

        x = site.create_int("x")
        proxy = x.attach(Null(), "pessimistic")
        site.views.detach(proxy)
        assert proxy not in x.proxies
        assert proxy not in site.views.proxies

    def test_unknown_mode_rejected(self, site):
        from repro import View

        class Null(View):
            def update(self, changed, snapshot):
                pass

        x = site.create_int("x")
        with pytest.raises(ValueError):
            x.attach(Null(), "sometimes")
