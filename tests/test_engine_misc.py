"""Miscellaneous transaction-engine behaviours: counters, record GC,
read-only transactions, and late-message handling."""

import pytest

from repro import Session
from repro.core.messages import AbortMsg, CommitMsg, ConfirmMsg
from repro.sim.network import FixedLatency
from repro.vtime import VirtualTime
from repro import DInt


def pair(latency=30.0, **kwargs):
    session = Session.simulated(latency_ms=latency, **kwargs)
    alice, bob = session.add_sites(2)
    objs = session.replicate(DInt, "x", [alice, bob], initial=0)
    session.settle()
    return session, alice, bob, objs


class TestReadOnlyTransactions:
    def test_read_only_txn_commits(self):
        session, alice, bob, objs = pair()
        seen = []
        out = bob.transact(lambda: seen.append(objs[1].get()))
        session.settle()
        assert out.committed
        assert seen == [0]

    def test_remote_read_only_requires_primary_confirm(self):
        """A read-only transaction at a non-primary site still sends a
        CONFIRM-READ and waits for the confirmation (paper section 3.1)."""
        session, alice, bob, objs = pair(latency=50.0, delegation_enabled=False)
        out = bob.transact(lambda: objs[1].get())
        assert not out.committed  # needs the round trip
        session.settle()
        assert out.committed
        assert out.commit_latency_ms == 100.0

    def test_stale_read_only_txn_aborts_and_retries(self):
        session, alice, bob, objs = pair(latency=50.0)
        alice.transact(lambda: objs[0].set(5))  # in flight toward bob
        out = bob.transact(lambda: objs[1].get())  # reads stale 0
        session.settle()
        assert out.committed  # retried against the fresh value


class TestRecordHygiene:
    def test_committed_records_are_collected(self):
        session, alice, bob, objs = pair()
        for i in range(5):
            alice.transact(lambda v=i: objs[0].set(v))
            session.settle()
        assert not alice.engine.records  # all finalized and dropped

    def test_applied_log_dropped_after_commit(self):
        session, alice, bob, objs = pair()
        out = alice.transact(lambda: objs[0].set(1))
        session.settle()
        assert out.vt not in alice.engine.applied
        assert out.vt not in bob.engine.applied

    def test_counters_shape(self):
        session, alice, bob, objs = pair()
        alice.transact(lambda: objs[0].set(1))
        session.settle()
        counters = alice.counters()
        for key in ("commits", "aborts_conflict", "aborts_user", "retries"):
            assert key in counters
        assert counters["commits"] >= 1


class TestLateMessages:
    def test_unknown_confirm_is_ignored(self):
        session, alice, bob, objs = pair()
        ghost = VirtualTime(999, 1)
        alice.dispatch(1, ConfirmMsg(txn_vt=ghost, site=1, ok=True, clock=1000))
        session.settle()  # no crash, no effect
        assert alice.engine.status.get(ghost) is None

    def test_duplicate_commit_is_idempotent(self):
        session, alice, bob, objs = pair()
        out = alice.transact(lambda: objs[0].set(3))
        session.settle()
        commits_before = bob.engine.commits
        bob.dispatch(0, CommitMsg(txn_vt=out.vt, clock=2000))
        assert bob.engine.status[out.vt] == "committed"
        assert bob.engine.commits == commits_before  # no double count

    def test_abort_for_unknown_txn_recorded(self):
        """An ABORT arriving before its WRITE: the site remembers the fact
        so the late WRITE is ignored (paper section 3.1)."""
        session, alice, bob, objs = pair()
        ghost = VirtualTime(500, 0)
        bob.dispatch(0, AbortMsg(txn_vt=ghost, clock=600, reason="test"))
        assert bob.engine.status[ghost] == "aborted"
        # Craft the late WRITE and deliver it: must be ignored.
        from repro.core.messages import OpPayload, TxnPropagateMsg, WriteOp

        write = WriteOp(
            object_uid=objs[1].uid,
            op=OpPayload(kind="set", args=(777,)),
            read_vt=ghost,
            graph_vt=objs[1].graph_vt(),
        )
        bob.dispatch(
            0,
            TxnPropagateMsg(
                txn_vt=ghost, origin=0, writes=(write,), read_checks=(), clock=601
            ),
        )
        assert objs[1].get() == 0  # ignored


class TestDispatchErrors:
    def test_unroutable_payload_raises(self):
        from repro.errors import ProtocolError

        session, alice, bob, objs = pair()
        with pytest.raises(ProtocolError):
            alice.dispatch(1, object())


class TestBackoffConfig:
    def test_backoff_grows_quadratically(self):
        session, alice, bob, objs = pair()
        engine = alice.engine
        assert engine.retry_backoff_ms > 0
        # delay = min(b * n^2, b * 200)
        delays = [
            min(engine.retry_backoff_ms * n * n, engine.retry_backoff_ms * 200)
            for n in (1, 2, 5, 30)
        ]
        assert delays[0] < delays[1] < delays[2]
        assert delays[3] == engine.retry_backoff_ms * 200  # capped
