"""Soak test: a long, randomized WAN collaboration with failures.

Six sites in two LAN clusters joined by a slow WAN run a mixed workload
(scalars, lists, maps; blind and read-modify-write) for many rounds with
jittered pacing; one site crashes mid-run.  Afterwards every surviving
replica of every object must agree, hold committed state only, and carry
no protocol residue.
"""

import random

import pytest

from repro import Session
from repro.sim.topology import clusters
from repro import DInt, DList, DMap


def value(obj):
    return obj.value_at(obj.current_value_vt())


@pytest.mark.slow
@pytest.mark.parametrize("seed", [7, 77])
def test_wan_soak_with_midrun_failure(seed):
    session = Session.simulated(latency_ms=10.0, seed=seed)
    sites = session.add_sites(6)
    clusters(session.network, groups=[[0, 1, 2], [3, 4, 5]], lan_ms=3.0, wan_ms=60.0)

    counters = session.replicate(DInt, "n", sites, initial=0)
    boards = session.replicate(DMap, "m", sites)
    docs = session.replicate(DList, "d", sites)
    session.settle()

    rng = random.Random(seed)
    doomed = 5  # crashes halfway through
    rounds = 40
    for step in range(rounds):
        if step == rounds // 2:
            session.network.fail_site(doomed)
            session.settle()
        alive = [i for i in range(6) if i != doomed or step < rounds // 2]
        i = rng.choice(alive)
        site = sites[i]
        kind = rng.random()
        if kind < 0.4:
            site.transact(lambda o=counters[i]: o.set(o.get() + 1))
        elif kind < 0.7:
            key = rng.choice(["a", "b", "c"])
            site.transact(lambda m=boards[i], k=key, v=step: m.put(k, "int", v))
        else:
            def edit(lst=docs[i], step=step):
                n = len(lst)
                if n == 0 or rng.random() < 0.7:
                    lst.insert(rng.randrange(n + 1), "string", f"s{step}")
                else:
                    lst.remove(rng.randrange(n))

            site.transact(edit)
        session.run_for(rng.uniform(0, 90))
    session.settle()

    survivors = [i for i in range(6) if i != doomed]
    for group in (counters, boards, docs):
        values = [value(group[i]) for i in survivors]
        assert all(v == values[0] for v in values), f"divergence in {group[0].name}"
    # Graphs repaired; committed state everywhere; no residue.
    for i in survivors:
        site = sites[i]
        assert doomed not in counters[i].graph().sites()
        assert not site.engine.pending_propagates
        assert not site.engine.deps.pending_vts()
        for obj in site.objects.values():
            if hasattr(obj, "history"):
                assert obj.history.current().committed, obj.uid
