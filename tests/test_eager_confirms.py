"""Tests for the eager write-confirmation optimization (section 5.3)."""

import pytest

from repro import Session, View
from repro import DInt


class Probe(View):
    def __init__(self, site):
        self.site = site
        self.updates = []

    def update(self, changed, snapshot):
        self.updates.append((self.site.transport.now(), [snapshot.read(c) for c in changed]))

    def first_seen(self, value):
        for t, values in self.updates:
            if value in values:
                return t
        return None


def third_party(eager, latency=50.0):
    session = Session.simulated(latency_ms=latency, eager_view_confirms=eager)
    sites = session.add_sites(3)
    objs = session.replicate(DInt, "x", sites, initial=0)
    session.settle()
    return session, sites, objs


class TestCorrectness:
    def test_results_identical_with_and_without(self):
        for eager in (False, True):
            session, sites, objs = third_party(eager)
            for i in range(4):
                sites[i % 3].transact(lambda o=objs[i % 3]: o.set(o.get() + 1))
                session.run_for(30)
            session.settle()
            assert [o.get() for o in objs] == [4, 4, 4], f"eager={eager}"
            assert all(o.history.current().committed for o in objs)

    def test_pessimistic_guarantees_hold_with_eager(self):
        session, sites, objs = third_party(True)
        probe = Probe(sites[1])
        objs[1].attach(probe, "pessimistic")
        for v in (1, 2, 3):
            sites[2].transact(lambda o=objs[2], vv=v: o.set(o.get() + 1))
            session.settle()
        seen = [vals[0] for _, vals in probe.updates]
        assert seen == [0, 1, 2, 3]  # lossless, monotonic, committed only


class TestLatency:
    def test_third_site_pessimistic_drops_to_2t(self):
        """Without eager confirms a third site's pessimistic view needs its
        own CONFIRM-READ round trip (3t); with them it resolves at 2t."""
        latencies = {}
        for eager in (False, True):
            session, sites, objs = third_party(eager)
            probe = Probe(sites[1])  # neither origin (2) nor primary (0)
            objs[1].attach(probe, "pessimistic")
            t0 = session.scheduler.now
            # Read-modify-write: the primary confirms a non-trivial interval.
            sites[2].transact(lambda: objs[2].set(objs[2].get() + 41))
            session.settle()
            latencies[eager] = probe.first_seen(41) - t0
        assert latencies[False] == pytest.approx(150.0)  # 3t
        assert latencies[True] == pytest.approx(100.0)  # 2t

    def test_blind_writes_unaffected(self):
        """A blind write confirms no interval, so there is nothing to
        distribute eagerly; latency stays at 3t either way."""
        for eager in (False, True):
            session, sites, objs = third_party(eager)
            probe = Probe(sites[1])
            objs[1].attach(probe, "pessimistic")
            t0 = session.scheduler.now
            sites[2].transact(lambda: objs[2].set(77))
            session.settle()
            assert probe.first_seen(77) - t0 == pytest.approx(150.0)

    def test_extra_messages_accounted(self):
        counts = {}
        for eager in (False, True):
            session, sites, objs = third_party(eager)
            base = session.network.stats.messages_sent
            sites[2].transact(lambda: objs[2].set(objs[2].get() + 1))
            session.settle()
            counts[eager] = session.network.stats.messages_sent - base
        assert counts[True] > counts[False]  # the optimization costs messages
