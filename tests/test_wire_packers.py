"""Equivalence of the compiled packers against the reference codec.

:mod:`repro.wire.codec` compiles a specialized encoder/decoder per
registered struct, with fused byte tables, interning caches, and a span
memo.  :mod:`repro.wire.reference` keeps the original generic
implementation as the executable specification of the wire format.  These
properties pin the two together for every registered struct: byte-identical
encodings, identical decodes (in both directions), and well-behaved caches.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.association import Invitation
from repro.core.messages import (
    DelegateGrant,
    OpPayload,
    PathStep,
    ReadCheck,
    SlotId,
    SnapshotCheck,
    WriteOp,
)
from repro.core.repgraph import GraphNode, ReplicationGraph
from repro.vtime import VirtualTime
from repro.wire import codec, reference
from repro.wire.codec import WIRE_STRUCTS, decode, encode

from tests.test_wire import (
    MESSAGE_STRATEGIES,
    delegate_grants,
    graph_nodes,
    graphs,
    op_payloads,
    path_steps,
    read_checks,
    slot_ids,
    snapshot_checks,
    uids,
    vts,
    wire_values,
    write_ops,
)

# ---------------------------------------------------------------------------
# One strategy per registered struct (messages reuse tests.test_wire's)
# ---------------------------------------------------------------------------

invitations = st.builds(Invitation, st.integers(0, 64), uids, st.text(max_size=12))

trace_contexts = st.builds(
    codec.TraceContext,
    st.integers(0, 64),
    st.text(max_size=16),
    st.integers(min_value=0, max_value=2**40),
    st.booleans(),
)

STRUCT_STRATEGIES = dict(MESSAGE_STRATEGIES)
STRUCT_STRATEGIES.update(
    {
        SlotId: slot_ids,
        PathStep: path_steps,
        OpPayload: op_payloads,
        WriteOp: write_ops,
        ReadCheck: read_checks,
        DelegateGrant: delegate_grants,
        SnapshotCheck: snapshot_checks,
        GraphNode: graph_nodes,
        ReplicationGraph: graphs,
        Invitation: invitations,
        codec.TraceContext: trace_contexts,
    }
)


def test_every_registered_struct_has_a_strategy():
    assert set(STRUCT_STRATEGIES) == set(WIRE_STRUCTS)


# ---------------------------------------------------------------------------
# Byte-for-byte equivalence with the reference codec
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("struct_type", WIRE_STRUCTS, ids=lambda t: t.__name__)
def test_packer_encoding_matches_reference(struct_type):
    @settings(max_examples=30)
    @given(STRUCT_STRATEGIES[struct_type])
    def check(value):
        fast = encode(value)
        assert fast == reference.encode(value)
        # and both decoders agree on both encodings
        assert decode(fast) == value
        assert reference.decode(fast) == value

    check()


@pytest.mark.parametrize("struct_type", WIRE_STRUCTS, ids=lambda t: t.__name__)
def test_packer_decoding_matches_reference(struct_type):
    @settings(max_examples=30)
    @given(STRUCT_STRATEGIES[struct_type])
    def check(value):
        ref_bytes = reference.encode(value)
        assert decode(ref_bytes) == reference.decode(ref_bytes) == value

    check()


@settings(max_examples=60)
@given(wire_values)
def test_generic_values_match_reference(value):
    fast = encode(value)
    assert fast == reference.encode(value)
    assert decode(fast) == reference.decode(fast) == value


@settings(max_examples=40)
@given(MESSAGE_STRATEGIES[list(MESSAGE_STRATEGIES)[0]])
def test_reencoding_a_decoded_message_is_byte_identical(msg):
    raw = encode(msg)
    assert encode(decode(raw)) == raw


# ---------------------------------------------------------------------------
# Interning semantics
# ---------------------------------------------------------------------------


def test_interned_structs_are_shared_across_decodes():
    op = OpPayload(kind="set", args=(7,))
    raw = encode(op)
    first = decode(raw)
    second = decode(raw)
    assert first == op
    assert first is second  # span memo returns the shared instance


def test_interned_structs_are_shared_across_identical_frames():
    # Duplicate delivery: the same bytes arriving twice (e.g. a retransmit)
    # must reuse the instances decoded the first time, not rebuild them.
    w = WriteOp(
        object_uid="s2:list",
        op=OpPayload(kind="insert", args=(0, "x")),
        read_vt=VirtualTime(9, 2),
        graph_vt=VirtualTime(3, 0),
    )
    raw = encode(w)
    first = decode(raw)
    second = decode(bytes(raw))  # a distinct buffer with equal contents
    assert first == w
    assert first is second


def test_interning_does_not_conflate_distinct_values():
    a = OpPayload(kind="set", args=(1,))
    b = OpPayload(kind="set", args=(2,))
    assert decode(encode(a)) == a
    assert decode(encode(b)) == b
    assert decode(encode(a)) != decode(encode(b))


def test_interning_is_invisible_to_equality_and_hash():
    op = OpPayload(kind="put", args=("k", 1))
    decoded = decode(encode(op))
    assert decoded == op
    assert hash(decoded) == hash(op)
    assert dataclasses.asdict(decoded) == dataclasses.asdict(op)


def test_encode_cache_stamp_is_stable_and_invisible():
    # The first encode stamps the canonical bytes on the instance (_wire);
    # later encodes must be byte-identical and the stamp must not leak into
    # equality, hashing, or dataclass introspection.
    w = WriteOp(
        object_uid="s1:obj",
        op=OpPayload(kind="set", args=(1,)),
        read_vt=VirtualTime(5, 1),
        graph_vt=VirtualTime(2, 0),
    )
    first = encode(w)
    assert encode(w) == first
    assert w == dataclasses.replace(w)
    assert [f.name for f in dataclasses.fields(w)] == [
        "object_uid",
        "op",
        "read_vt",
        "graph_vt",
        "path",
    ]


def test_overlong_varint_decodes_but_reencodes_canonically():
    # The decoder tolerates non-minimal varints; re-encoding the decoded
    # value must still produce the canonical (minimal) bytes.
    canonical = encode(7)
    overlong = bytes([canonical[0], canonical[1], 0x8E, 0x00])  # 14 -> 0x8E 0x00
    assert decode(overlong) == 7
    assert encode(decode(overlong)) == canonical


def test_vt_decode_cache_handles_multibyte_varints():
    for counter in (0, 1, 63, 64, 127, 128, 1000, 2**40):
        vt = VirtualTime(counter, 2)
        assert decode(encode(vt)) == vt


# ---------------------------------------------------------------------------
# Cache bounds: a burst of unique values must not grow caches without bound
# ---------------------------------------------------------------------------


def test_vt_cache_is_bounded():
    for i in range(1000):
        decode(encode(VirtualTime(i, i % 64)))
    assert len(codec._VT_CACHE) <= codec._VT_CACHE_MAX


def test_str_cache_is_bounded():
    for i in range(1000):
        decode(encode(f"unique-string-{i}"))
    assert len(codec._STR_CACHE) <= codec._STR_CACHE_MAX
    # long strings are never interned
    big = "x" * (codec._STR_INTERN_MAX_LEN + 1)
    assert decode(encode(big)) == big


def test_struct_span_memo_is_bounded():
    for i in range(1000):
        decode(encode(OpPayload(kind="set", args=(i, f"v{i}"))))
    assert len(codec._STRUCT_CACHE) <= codec._STRUCT_CACHE_MAX
    for bucket in codec._STRUCT_CACHE.values():
        assert len(bucket) <= codec._SPAN_BUCKET_MAX


def test_reference_shares_the_live_registry():
    # structs registered after import are visible to the reference codec
    assert reference._STRUCTS_BY_CLASS is codec._STRUCTS_BY_CLASS
    assert reference._STRUCTS_BY_TAG is codec._STRUCTS_BY_TAG
