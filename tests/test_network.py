"""Tests for the simulated network: latency, FIFO, partitions, failures."""

import random

import pytest

from repro.errors import TransportError
from repro.sim import (
    FixedLatency,
    Network,
    NormalLatency,
    Scheduler,
    UniformLatency,
)


def make_net(latency=None, fifo=True, seed=0, flush_inflight_on_fail=False):
    sched = Scheduler()
    net = Network(
        sched,
        latency=latency or FixedLatency(10.0),
        seed=seed,
        fifo=fifo,
        flush_inflight_on_fail=flush_inflight_on_fail,
    )
    inboxes = {}
    for site in range(4):
        inboxes[site] = []
        net.register(site, lambda src, payload, s=site: inboxes[s].append((src, payload, sched.now)))
    return sched, net, inboxes


class TestLatencyModels:
    def test_fixed(self):
        rng = random.Random(0)
        model = FixedLatency(25.0)
        assert model.sample(rng, 0, 1) == 25.0

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1)

    def test_uniform_within_bounds(self):
        rng = random.Random(0)
        model = UniformLatency(10.0, 20.0)
        samples = [model.sample(rng, 0, 1) for _ in range(100)]
        assert all(10.0 <= s <= 20.0 for s in samples)
        assert max(samples) - min(samples) > 1.0  # actually varies

    def test_uniform_validates(self):
        with pytest.raises(ValueError):
            UniformLatency(20.0, 10.0)

    def test_normal_floor(self):
        rng = random.Random(0)
        model = NormalLatency(1.0, 50.0, floor_ms=0.5)
        assert all(model.sample(rng, 0, 1) >= 0.5 for _ in range(200))


class TestDelivery:
    def test_basic_latency(self):
        sched, net, inboxes = make_net(FixedLatency(42.0))
        net.send(0, 1, "hello")
        sched.run_until_quiescent()
        assert inboxes[1] == [(0, "hello", 42.0)]

    def test_local_loopback_is_instant_but_queued(self):
        sched, net, inboxes = make_net()
        net.send(0, 0, "self")
        assert inboxes[0] == []  # not delivered synchronously
        sched.run_until_quiescent()
        assert inboxes[0] == [(0, "self", 0.0)]

    def test_fifo_per_channel(self):
        sched, net, inboxes = make_net(UniformLatency(1.0, 100.0), fifo=True, seed=7)
        for i in range(20):
            net.send(0, 1, i)
        sched.run_until_quiescent()
        assert [payload for _, payload, _ in inboxes[1]] == list(range(20))

    def test_non_fifo_can_reorder(self):
        sched, net, inboxes = make_net(UniformLatency(1.0, 100.0), fifo=False, seed=7)
        for i in range(20):
            net.send(0, 1, i)
        sched.run_until_quiescent()
        order = [payload for _, payload, _ in inboxes[1]]
        assert sorted(order) == list(range(20))
        assert order != list(range(20))  # reordering actually happened

    def test_cross_channel_interleaving(self):
        # Messages from different senders are independent: a later send on
        # a fast link overtakes an earlier send on a slow link (stragglers).
        sched, net, inboxes = make_net(FixedLatency(10.0))
        net.set_link_latency(0, 2, FixedLatency(100.0))
        net.send(0, 2, "slow")
        net.send(1, 2, "fast")
        sched.run_until_quiescent()
        assert [p for _, p, _ in inboxes[2]] == ["fast", "slow"]

    def test_unknown_destination_raises(self):
        sched, net, _ = make_net()
        with pytest.raises(TransportError):
            net.send(0, 99, "?")

    def test_broadcast(self):
        sched, net, inboxes = make_net()
        net.broadcast(0, [1, 2, 3], "all")
        sched.run_until_quiescent()
        assert all(inboxes[i] for i in (1, 2, 3))

    def test_stats(self):
        sched, net, _ = make_net()
        net.send(0, 1, "a")
        net.send(0, 2, "b")
        sched.run_until_quiescent()
        assert net.stats.messages_sent == 2
        assert net.stats.messages_delivered == 2
        assert net.stats.per_type_sent == {"str": 2}

    def test_stats_reconcile_through_lifecycle(self):
        """sent == delivered + dropped + in_flight at every instant."""
        sched, net, _ = make_net()
        assert net.stats.reconcile()
        net.send(0, 1, "a")
        net.send(0, 2, "b")
        # Scheduled but not yet delivered: both are in flight.
        assert net.stats.messages_in_flight == 2
        assert net.stats.reconcile()
        sched.run_until_quiescent()
        assert net.stats.messages_in_flight == 0
        assert net.stats.messages_delivered == 2
        assert net.stats.reconcile()
        # Send-time drop (dead destination): never enters in-flight.
        net.fail_site(1)
        net.send(0, 1, "lost")
        assert net.stats.messages_in_flight == 0
        assert net.stats.reconcile()
        # Delivery-time drop (site dies with the message in the air):
        # in-flight decrements before the drop is counted.
        net.send(0, 2, "doomed")
        assert net.stats.messages_in_flight == 1
        net.fail_site(2)
        sched.run_until_quiescent()
        assert net.stats.messages_in_flight == 0
        assert net.stats.reconcile()
        snap = net.stats.snapshot()
        assert snap.reconcile() and snap.messages_in_flight == 0


class TestFailures:
    def test_failed_site_stops_receiving(self):
        sched, net, inboxes = make_net()
        net.fail_site(1)
        net.send(0, 1, "lost")
        sched.run_until_quiescent()
        assert inboxes[1] == []
        assert net.stats.messages_dropped >= 1

    def test_failed_site_stops_sending(self):
        sched, net, inboxes = make_net()
        net.fail_site(0)
        net.send(0, 1, "lost")
        sched.run_until_quiescent()
        assert inboxes[1] == []

    def test_inflight_messages_to_failed_site_dropped(self):
        sched, net, inboxes = make_net(FixedLatency(50.0))
        net.send(0, 1, "inflight")
        sched.run(until=10)
        net.fail_site(1)
        sched.run_until_quiescent()
        assert inboxes[1] == []

    def test_failure_notification(self):
        sched, net, _ = make_net()
        notices = []
        net.add_failure_listener(notices.append)
        net.fail_site(2, notify_after_ms=15.0)
        sched.run_until_quiescent()
        assert notices == [2]
        assert sched.now == 15.0

    def test_double_failure_notifies_once(self):
        sched, net, _ = make_net()
        notices = []
        net.add_failure_listener(notices.append)
        net.fail_site(2)
        net.fail_site(2)
        sched.run_until_quiescent()
        assert notices == [2]

    def test_is_failed(self):
        sched, net, _ = make_net()
        assert not net.is_failed(1)
        net.fail_site(1)
        assert net.is_failed(1)


class TestPartitions:
    def test_partition_blocks_both_directions(self):
        sched, net, inboxes = make_net()
        net.partition([0, 1], [2, 3])
        net.send(0, 2, "x")
        net.send(2, 0, "y")
        net.send(0, 1, "ok")
        sched.run_until_quiescent()
        assert inboxes[2] == []
        assert [p for _, p, _ in inboxes[1]] == ["ok"]

    def test_heal_partition(self):
        sched, net, inboxes = make_net()
        net.partition([0], [1])
        net.send(0, 1, "dropped")
        sched.run_until_quiescent()
        net.heal_partition()
        net.send(0, 1, "delivered")
        sched.run_until_quiescent()
        assert [p for _, p, _ in inboxes[1]] == ["delivered"]

    def test_inflight_message_dropped_at_partition_time(self):
        sched, net, inboxes = make_net(FixedLatency(50.0))
        net.send(0, 1, "inflight")
        sched.run(until=10)
        net.partition([0], [1])
        sched.run_until_quiescent()
        assert inboxes[1] == []

    def test_inflight_preserved_when_cut_policy_disabled(self):
        # The conformance explorer's disconnection model: a partition stops
        # *new* communication, but messages already handed to the transport
        # still arrive.
        sched, net, inboxes = make_net(FixedLatency(50.0))
        net.partition_cuts_inflight = False
        net.send(0, 1, "inflight")
        sched.run(until=10)
        net.partition([0], [1])
        net.send(0, 1, "new")  # sent across the cut: dropped at send time
        sched.run_until_quiescent()
        assert [p for _, p, _ in inboxes[1]] == ["inflight"]


class TestInjectedDrops:
    def test_drops_next_n_matching_messages(self):
        sched, net, inboxes = make_net()
        net.inject_drop(1, count=2)
        for i in range(4):
            net.send(0, 1, i)
        sched.run_until_quiescent()
        assert [p for _, p, _ in inboxes[1]] == [2, 3]
        assert net.stats.messages_dropped_injected == 2

    def test_src_filter_only_matches_that_sender(self):
        sched, net, inboxes = make_net()
        net.inject_drop(2, count=1, src=0)
        net.send(1, 2, "other-sender")  # does not match, does not consume
        net.send(0, 2, "dropped")
        net.send(0, 2, "kept")
        sched.run_until_quiescent()
        assert [p for _, p, _ in inboxes[2]] == ["other-sender", "kept"]

    def test_rejects_non_positive_count(self):
        from repro.errors import SimulationError

        sched, net, _ = make_net()
        with pytest.raises(SimulationError):
            net.inject_drop(1, count=0)


class TestDelayHook:
    def test_hook_adds_extra_latency(self):
        sched, net, inboxes = make_net(FixedLatency(10.0))
        net.delay_hook = lambda src, dst, payload: 25.0
        net.send(0, 1, "slowed")
        sched.run_until_quiescent()
        assert inboxes[1] == [(0, "slowed", 35.0)]

    def test_hook_skipped_for_loopback(self):
        sched, net, inboxes = make_net()
        net.delay_hook = lambda src, dst, payload: 1000.0
        net.send(0, 0, "local")
        sched.run_until_quiescent()
        assert inboxes[0] == [(0, "local", 0.0)]

    def test_negative_delay_clamped(self):
        sched, net, inboxes = make_net(FixedLatency(10.0))
        net.delay_hook = lambda src, dst, payload: -100.0
        net.send(0, 1, "on-time")
        sched.run_until_quiescent()
        assert inboxes[1] == [(0, "on-time", 10.0)]


class TestFlushInflightOnFail:
    def test_inflight_from_failed_site_still_delivered(self):
        sched, net, inboxes = make_net(FixedLatency(50.0), flush_inflight_on_fail=True)
        net.send(0, 1, "flushed")
        sched.run(until=10)
        net.fail_site(0)
        sched.run_until_quiescent()
        assert [p for _, p, _ in inboxes[1]] == ["flushed"]

    def test_notification_ordered_after_victims_inflight(self):
        # Virtual synchrony: survivors must not learn of the failure before
        # the last message the victim handed to the transport arrives.
        sched, net, inboxes = make_net(FixedLatency(50.0), flush_inflight_on_fail=True)
        events = []
        net.register(1, lambda src, payload: events.append(("msg", sched.now)))
        net.add_failure_listener(lambda site: events.append(("fail", sched.now)))
        net.send(0, 1, "inflight")  # delivery at t=50
        net.fail_site(0, notify_after_ms=5.0)
        sched.run_until_quiescent()
        assert events == [("msg", 50.0), ("fail", 50.0)]

    def test_without_flush_notification_is_not_delayed(self):
        sched, net, inboxes = make_net(FixedLatency(50.0))
        events = []
        net.register(1, lambda src, payload: events.append(("msg", sched.now)))
        net.add_failure_listener(lambda site: events.append(("fail", sched.now)))
        net.send(0, 1, "inflight")
        net.fail_site(0, notify_after_ms=5.0)
        sched.run_until_quiescent()
        assert events == [("fail", 5.0)]  # message dropped, notice prompt
