"""Unit tests for the bench harness and reporting tools."""

import os

import pytest

from repro.bench import (
    LatencyProbeView,
    Series,
    Table,
    attach_probe,
    format_table,
    multi_party_scenario,
    two_party_scenario,
)
from repro import DMap
from repro.bench.report import emit, format_series


class TestTable:
    def test_add_and_format(self):
        table = Table(title="T", headers=["a", "b"])
        table.add(1, 2.5)
        table.add("x", None)
        text = format_table(table)
        assert "T" in text and "2.5" in text and "-" in text

    def test_width_mismatch_rejected(self):
        table = Table(title="T", headers=["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_notes_rendered(self):
        table = Table(title="T", headers=["a"])
        table.add(1)
        table.note("hello")
        assert "note: hello" in format_table(table)

    def test_alignment(self):
        table = Table(title="T", headers=["col"])
        table.add("longvalue")
        lines = format_table(table).splitlines()
        header_line = next(l for l in lines if l.startswith("col"))
        assert len(header_line) == len("longvalue")


class TestSeries:
    def test_combined_series_table(self):
        s1, s2 = Series("one"), Series("two")
        s1.add(1, 10)
        s1.add(2, 20)
        s2.add(2, 200)
        text = format_series([s1, s2], x_label="n")
        assert "one" in text and "two" in text
        assert "200" in text

    def test_missing_points_dash(self):
        s1, s2 = Series("one"), Series("two")
        s1.add(1, 10)
        text = format_series([s1, s2])
        assert "-" in text


class TestEmit:
    def test_emit_writes_file(self, tmp_path, capsys):
        emit("TEST_exp", "hello world", results_dir=str(tmp_path))
        out = capsys.readouterr().out
        assert "hello world" in out
        assert (tmp_path / "TEST_exp.txt").read_text() == "hello world\n"


class TestScenarios:
    def test_two_party(self):
        scenario = two_party_scenario(latency_ms=10.0)
        assert scenario.a.get() == 0
        scenario.alice.transact(lambda: scenario.a.set(3))
        scenario.session.settle()
        assert scenario.b.get() == 3

    def test_multi_party(self):
        scenario = multi_party_scenario(4, latency_ms=10.0, initial=9)
        assert len(scenario.sites) == 4
        assert all(o.get() == 9 for o in scenario.objects)

    def test_scenario_kinds(self):
        scenario = two_party_scenario(latency_ms=10.0, kind=DMap)
        scenario.alice.transact(lambda: scenario.a.put("k", "int", 1))
        scenario.session.settle()
        assert scenario.b.value_at(scenario.b.current_value_vt()) == {"k": 1}


class TestProbeView:
    def test_first_seen(self):
        scenario = two_party_scenario(latency_ms=10.0)
        probe = attach_probe(scenario.bob, [scenario.b], "optimistic")
        t0 = scenario.session.scheduler.now
        scenario.alice.transact(lambda: scenario.a.set(5))
        scenario.session.settle()
        assert probe.first_seen("shared", 5) == t0 + 10.0
        assert probe.first_seen("shared", 999) is None

    def test_first_commit_after(self):
        scenario = two_party_scenario(latency_ms=10.0)
        probe = attach_probe(scenario.bob, [scenario.b], "optimistic")
        t0 = scenario.session.scheduler.now
        scenario.alice.transact(lambda: scenario.a.set(5))
        scenario.session.settle()
        assert probe.first_commit_after(t0) is not None

    def test_proxy_accessor(self):
        scenario = two_party_scenario(latency_ms=10.0)
        probe = attach_probe(scenario.bob, [scenario.b], "optimistic")
        assert probe.proxy is not None
        assert probe.proxy.view is probe


class TestBenchTrajectory:
    """scripts/bench_trajectory.py: BENCH_*.json merge + obs overhead gate."""

    def _load_script(self):
        import importlib.util

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "scripts",
            "bench_trajectory.py",
        )
        spec = importlib.util.spec_from_file_location("bench_trajectory", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _obs_doc(self, disabled_pct=0.5, noise_pct=8.0, emit_calls=0):
        return {
            "schema": "bench_obs/v1",
            "timestamp": "2026-01-01T00:00:00Z",
            "transactions": 100,
            "modes": {"disabled": {"emit_calls": emit_calls, "best_s": 0.1}},
            "overhead": {
                "disabled_vs_baseline_pct": disabled_pct,
                "baseline_noise_pct": noise_pct,
            },
        }

    def test_flatten_skips_lists_bools_and_provenance(self):
        mod = self._load_script()
        metrics = mod.flatten_metrics(
            {
                "schema": "x/v1",
                "timestamp": "now",
                "a": {"wall_s": [1.0, 2.0], "best": 3.0, "flag": True},
                "n": 2,
            },
            "",
        )
        assert metrics == {"a.best": 3.0, "n": 2.0}

    def test_merge_is_keyed_and_idempotent_per_commit(self, tmp_path, monkeypatch):
        import json

        mod = self._load_script()
        root = tmp_path
        (root / "BENCH_obs.json").write_text(json.dumps(self._obs_doc()))
        monkeypatch.setattr(mod, "current_commit", lambda _root: "abc123")
        first = mod.build_trajectory(str(root))
        assert "obs.overhead.disabled_vs_baseline_pct" in first["series"]
        # Re-running on the same commit must not duplicate samples.
        second = mod.build_trajectory(str(root))
        for samples in second["series"].values():
            assert [s["commit"] for s in samples] == ["abc123"]
        # A new commit appends a second sample per metric.
        monkeypatch.setattr(mod, "current_commit", lambda _root: "def456")
        third = mod.build_trajectory(str(root))
        for samples in third["series"].values():
            assert [s["commit"] for s in samples] == ["abc123", "def456"]
        # The trajectory file itself is never treated as an input.
        assert not any(m.startswith("trajectory") for m in third["series"])

    def test_gate_passes_within_recorded_noise(self, tmp_path):
        import json

        mod = self._load_script()
        (tmp_path / "BENCH_obs.json").write_text(
            json.dumps(self._obs_doc(disabled_pct=-0.5, noise_pct=11.0))
        )
        current = tmp_path / "current.json"
        current.write_text(json.dumps(self._obs_doc(disabled_pct=9.0)))
        assert mod.gate_obs_overhead(str(tmp_path), str(current)) == 0

    def test_gate_fails_past_recorded_noise(self, tmp_path):
        import json

        mod = self._load_script()
        (tmp_path / "BENCH_obs.json").write_text(
            json.dumps(self._obs_doc(noise_pct=6.0))
        )
        current = tmp_path / "current.json"
        current.write_text(json.dumps(self._obs_doc(disabled_pct=7.5)))
        assert mod.gate_obs_overhead(str(tmp_path), str(current)) == 1

    def test_gate_fails_on_disabled_path_emit_calls(self, tmp_path):
        import json

        mod = self._load_script()
        (tmp_path / "BENCH_obs.json").write_text(json.dumps(self._obs_doc()))
        current = tmp_path / "current.json"
        current.write_text(json.dumps(self._obs_doc(emit_calls=3)))
        assert mod.gate_obs_overhead(str(tmp_path), str(current)) == 1

    def test_gate_floor_is_five_percent(self, tmp_path):
        import json

        mod = self._load_script()
        # Tiny recorded noise: the 5% floor still applies.
        (tmp_path / "BENCH_obs.json").write_text(
            json.dumps(self._obs_doc(noise_pct=0.1))
        )
        current = tmp_path / "current.json"
        current.write_text(json.dumps(self._obs_doc(disabled_pct=4.9)))
        assert mod.gate_obs_overhead(str(tmp_path), str(current)) == 0
