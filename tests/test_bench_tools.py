"""Unit tests for the bench harness and reporting tools."""

import os

import pytest

from repro.bench import (
    LatencyProbeView,
    Series,
    Table,
    attach_probe,
    format_table,
    multi_party_scenario,
    two_party_scenario,
)
from repro.bench.report import emit, format_series


class TestTable:
    def test_add_and_format(self):
        table = Table(title="T", headers=["a", "b"])
        table.add(1, 2.5)
        table.add("x", None)
        text = format_table(table)
        assert "T" in text and "2.5" in text and "-" in text

    def test_width_mismatch_rejected(self):
        table = Table(title="T", headers=["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_notes_rendered(self):
        table = Table(title="T", headers=["a"])
        table.add(1)
        table.note("hello")
        assert "note: hello" in format_table(table)

    def test_alignment(self):
        table = Table(title="T", headers=["col"])
        table.add("longvalue")
        lines = format_table(table).splitlines()
        header_line = next(l for l in lines if l.startswith("col"))
        assert len(header_line) == len("longvalue")


class TestSeries:
    def test_combined_series_table(self):
        s1, s2 = Series("one"), Series("two")
        s1.add(1, 10)
        s1.add(2, 20)
        s2.add(2, 200)
        text = format_series([s1, s2], x_label="n")
        assert "one" in text and "two" in text
        assert "200" in text

    def test_missing_points_dash(self):
        s1, s2 = Series("one"), Series("two")
        s1.add(1, 10)
        text = format_series([s1, s2])
        assert "-" in text


class TestEmit:
    def test_emit_writes_file(self, tmp_path, capsys):
        emit("TEST_exp", "hello world", results_dir=str(tmp_path))
        out = capsys.readouterr().out
        assert "hello world" in out
        assert (tmp_path / "TEST_exp.txt").read_text() == "hello world\n"


class TestScenarios:
    def test_two_party(self):
        scenario = two_party_scenario(latency_ms=10.0)
        assert scenario.a.get() == 0
        scenario.alice.transact(lambda: scenario.a.set(3))
        scenario.session.settle()
        assert scenario.b.get() == 3

    def test_multi_party(self):
        scenario = multi_party_scenario(4, latency_ms=10.0, initial=9)
        assert len(scenario.sites) == 4
        assert all(o.get() == 9 for o in scenario.objects)

    def test_scenario_kinds(self):
        scenario = two_party_scenario(latency_ms=10.0, kind="map")
        scenario.alice.transact(lambda: scenario.a.put("k", "int", 1))
        scenario.session.settle()
        assert scenario.b.value_at(scenario.b.current_value_vt()) == {"k": 1}


class TestProbeView:
    def test_first_seen(self):
        scenario = two_party_scenario(latency_ms=10.0)
        probe = attach_probe(scenario.bob, [scenario.b], "optimistic")
        t0 = scenario.session.scheduler.now
        scenario.alice.transact(lambda: scenario.a.set(5))
        scenario.session.settle()
        assert probe.first_seen("shared", 5) == t0 + 10.0
        assert probe.first_seen("shared", 999) is None

    def test_first_commit_after(self):
        scenario = two_party_scenario(latency_ms=10.0)
        probe = attach_probe(scenario.bob, [scenario.b], "optimistic")
        t0 = scenario.session.scheduler.now
        scenario.alice.transact(lambda: scenario.a.set(5))
        scenario.session.settle()
        assert probe.first_commit_after(t0) is not None

    def test_proxy_accessor(self):
        scenario = two_party_scenario(latency_ms=10.0)
        probe = attach_probe(scenario.bob, [scenario.b], "optimistic")
        assert probe.proxy is not None
        assert probe.proxy.view is probe
