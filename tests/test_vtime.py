"""Unit and property tests for virtual time and reservation intervals."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.vtime import VT_ZERO, Interval, IntervalSet, LamportClock, VirtualTime


# ---------------------------------------------------------------------------
# VirtualTime
# ---------------------------------------------------------------------------


class TestVirtualTime:
    def test_ordering_by_counter_first(self):
        assert VirtualTime(1, 5) < VirtualTime(2, 0)
        assert VirtualTime(2, 0) > VirtualTime(1, 5)

    def test_site_breaks_ties(self):
        assert VirtualTime(3, 0) < VirtualTime(3, 1)
        assert VirtualTime(3, 1) != VirtualTime(3, 0)

    def test_equality_and_hash(self):
        assert VirtualTime(4, 2) == VirtualTime(4, 2)
        assert hash(VirtualTime(4, 2)) == hash(VirtualTime(4, 2))
        assert len({VirtualTime(4, 2), VirtualTime(4, 2), VirtualTime(4, 3)}) == 2

    def test_vt_zero_precedes_everything(self):
        assert VT_ZERO < VirtualTime(1, 0)
        assert VT_ZERO < VirtualTime(0, 0)  # site -1 sorts before site 0

    def test_next_at(self):
        nxt = VirtualTime(7, 3).next_at(9)
        assert nxt == VirtualTime(8, 9)
        assert VirtualTime(7, 3) < nxt

    def test_repr(self):
        assert repr(VirtualTime(7, 3)) == "VT(7@3)"

    @given(
        st.tuples(st.integers(0, 1000), st.integers(0, 50)),
        st.tuples(st.integers(0, 1000), st.integers(0, 50)),
        st.tuples(st.integers(0, 1000), st.integers(0, 50)),
    )
    def test_total_order_properties(self, a, b, c):
        va, vb, vc = VirtualTime(*a), VirtualTime(*b), VirtualTime(*c)
        # Totality: exactly one of <, ==, > holds.
        assert sum([va < vb, va == vb, vb < va]) == 1
        # Transitivity.
        if va < vb and vb < vc:
            assert va < vc


# ---------------------------------------------------------------------------
# LamportClock
# ---------------------------------------------------------------------------


class TestLamportClock:
    def test_tick_monotone_and_unique(self):
        clock = LamportClock(3)
        vts = [clock.tick() for _ in range(10)]
        assert all(earlier < later for earlier, later in zip(vts, vts[1:]))
        assert len(set(vts)) == 10
        assert all(vt.site == 3 for vt in vts)

    def test_observe_advances(self):
        clock = LamportClock(0)
        clock.observe(VirtualTime(100, 7))
        assert clock.tick() == VirtualTime(101, 0)

    def test_observe_never_regresses(self):
        clock = LamportClock(0)
        clock.observe(VirtualTime(100, 7))
        clock.observe(VirtualTime(5, 7))
        assert clock.counter == 100

    def test_observe_none_is_noop(self):
        clock = LamportClock(0, start=4)
        clock.observe(None)
        assert clock.counter == 4

    def test_peek_does_not_tick(self):
        clock = LamportClock(2)
        assert clock.peek() == VirtualTime(1, 2)
        assert clock.counter == 0

    def test_negative_site_rejected(self):
        with pytest.raises(ValueError):
            LamportClock(-1)

    def test_causality_across_clocks(self):
        a, b = LamportClock(0), LamportClock(1)
        send = a.tick()
        b.observe(send)
        receive = b.tick()
        assert send < receive


# ---------------------------------------------------------------------------
# Interval / IntervalSet
# ---------------------------------------------------------------------------


def vt(counter, site=0):
    return VirtualTime(counter, site)


class TestInterval:
    def test_open_interval_strict_containment(self):
        interval = Interval(vt(10), vt(20), owner=vt(20))
        assert interval.contains_strictly(vt(15))
        assert not interval.contains_strictly(vt(10))
        assert not interval.contains_strictly(vt(20))

    def test_empty_interval(self):
        assert Interval(vt(5), vt(5), owner=vt(5)).is_empty()
        assert not Interval(vt(5), vt(6), owner=vt(6)).is_empty()

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(vt(20), vt(10), owner=vt(20))


class TestIntervalSet:
    def test_reserve_and_block(self):
        rs = IntervalSet()
        rs.reserve(vt(10), vt(20), owner=vt(20))
        blocking = rs.blocking_reservation(vt(15))
        assert blocking is not None and blocking.owner == vt(20)

    def test_own_reservation_never_blocks(self):
        rs = IntervalSet()
        rs.reserve(vt(10), vt(20), owner=vt(20))
        assert rs.blocking_reservation(vt(15), exclude_owner=vt(20)) is None

    def test_boundaries_do_not_block(self):
        rs = IntervalSet()
        rs.reserve(vt(10), vt(20), owner=vt(20))
        assert rs.blocking_reservation(vt(10)) is None
        assert rs.blocking_reservation(vt(20)) is None

    def test_empty_reservations_not_stored(self):
        rs = IntervalSet()
        rs.reserve(vt(5), vt(5), owner=vt(5))  # blind write
        assert len(rs) == 0

    def test_release_owner(self):
        rs = IntervalSet()
        rs.reserve(vt(1), vt(5), owner=vt(5))
        rs.reserve(vt(2), vt(9), owner=vt(9))
        assert rs.release_owner(vt(5)) == 1
        assert rs.blocking_reservation(vt(3), exclude_owner=vt(9)) is None

    def test_prune_before(self):
        rs = IntervalSet()
        rs.reserve(vt(1), vt(5), owner=vt(5))
        rs.reserve(vt(6), vt(15), owner=vt(15))
        dropped = rs.prune_before(vt(10))
        assert dropped == 1
        assert len(rs) == 1

    def test_prune_before_drops_interval_ending_exactly_at_vt(self):
        # Regression pin for the simplified predicate: the seed's
        # "not hi < vt and hi != vt" keep-condition is exactly "hi > vt",
        # so an interval with hi == vt is DROPPED (only VTs strictly inside
        # it could be blocked, and those all precede vt) while hi > vt is kept.
        rs = IntervalSet()
        rs.reserve(vt(1), vt(10), owner=vt(10))   # hi == prune point
        rs.reserve(vt(2), vt(11), owner=vt(11))   # hi > prune point
        assert rs.prune_before(vt(10)) == 1
        assert [i.hi for i in rs] == [vt(11)]
        # Pruning again at the same point drops nothing further.
        assert rs.prune_before(vt(10)) == 0

    def test_owners_dedup_preserves_insertion_order(self):
        rs = IntervalSet()
        rs.reserve(vt(1), vt(9), owner=vt(9))
        rs.reserve(vt(2), vt(7), owner=vt(7))
        rs.reserve(vt(3), vt(9, 0), owner=vt(9))  # duplicate owner
        assert rs.owners() == [vt(9), vt(7)]

    def test_blocking_returns_earliest_reserved_among_candidates(self):
        # The seed scanned in insertion order; the indexed set must still
        # report the earliest-reserved blocking interval even though its
        # index is sorted by hi.
        rs = IntervalSet()
        rs.reserve(vt(1), vt(30), owner=vt(30))  # inserted first, largest hi
        rs.reserve(vt(2), vt(20), owner=vt(20))
        blocking = rs.blocking_reservation(vt(15, site=99))
        assert blocking is not None and blocking.owner == vt(30)

    def test_release_owner_heavy_churn_compacts(self):
        # Reserve/release enough to trip tombstone compaction; behavior
        # (counts, remaining intervals) must be unaffected.
        rs = IntervalSet()
        for i in range(100):
            rs.reserve(vt(i), vt(i + 5), owner=vt(i + 5, 1))
        for i in range(80):
            assert rs.release_owner(vt(i + 5, 1)) == 1
        assert len(rs) == 20
        assert rs.release_owner(vt(4, 1)) == 0  # already gone
        remaining = sorted(i.lo.counter for i in rs)
        assert remaining == list(range(80, 100))

    def test_covering_intervals_and_owners(self):
        rs = IntervalSet()
        rs.reserve(vt(1), vt(10), owner=vt(10))
        rs.reserve(vt(2), vt(8), owner=vt(8))
        assert len(rs.covering_intervals(vt(5))) == 2
        assert rs.owners() == [vt(10), vt(8)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50), st.integers(0, 20)),
            max_size=30,
        ),
        st.integers(0, 50),
    )
    def test_blocking_matches_bruteforce(self, raw, probe):
        rs = IntervalSet()
        intervals = []
        for lo, hi, owner_site in raw:
            if lo > hi:
                lo, hi = hi, lo
            owner = VirtualTime(hi, owner_site)
            rs.reserve(vt(lo), vt(hi), owner=owner)
            if lo < hi:
                intervals.append((lo, hi, owner))
        probe_vt = vt(probe, site=99)
        expected = any(
            lo_c < probe or (lo_c == probe and 0 < 99)  # site tiebreak: vt(x,0) < vt(x,99)
            for lo_c, hi_c, _ in intervals
            if VirtualTime(lo_c, 0) < probe_vt < VirtualTime(hi_c, 0)
        )
        got = rs.blocking_reservation(probe_vt) is not None
        brute = any(
            VirtualTime(lo_c, 0) < probe_vt < VirtualTime(hi_c, 0)
            for lo_c, hi_c, _ in intervals
        )
        assert got == brute
