"""Unit tests for wire-protocol message types."""

import dataclasses

import pytest

from repro.core.messages import (
    AbortMsg,
    CommitMsg,
    ConfirmMsg,
    DelegateGrant,
    OpPayload,
    PathStep,
    ReadCheck,
    SlotId,
    SnapshotCheck,
    SnapshotConfirmMsg,
    SnapshotReplyMsg,
    TxnPropagateMsg,
    WriteOp,
)
from repro.vtime import VirtualTime


def vt(counter, site=0):
    return VirtualTime(counter, site)


class TestSlotId:
    def test_ordering_by_vt_then_seq(self):
        assert SlotId(vt(1), 0) < SlotId(vt(2), 0)
        assert SlotId(vt(1), 0) < SlotId(vt(1), 1)
        assert SlotId(vt(1, 0), 5) < SlotId(vt(1, 1), 0)

    def test_hashable_identity(self):
        assert SlotId(vt(3), 2) == SlotId(vt(3), 2)
        assert len({SlotId(vt(3), 2), SlotId(vt(3), 2), SlotId(vt(3), 3)}) == 2

    def test_negative_seq_namespace(self):
        # Spec-built children use negative seqs; they never collide with
        # transaction-assigned non-negative ones.
        assert SlotId(vt(1), -1) != SlotId(vt(1), 0)
        assert SlotId(vt(1), -1) < SlotId(vt(1), 0)


class TestImmutability:
    def test_messages_are_frozen(self):
        msg = CommitMsg(txn_vt=vt(1), clock=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            msg.clock = 2

    def test_ops_are_frozen(self):
        op = OpPayload(kind="set", args=(1,))
        with pytest.raises(dataclasses.FrozenInstanceError):
            op.kind = "other"

    def test_write_op_frozen(self):
        write = WriteOp(object_uid="u", op=OpPayload("set", (1,)), read_vt=vt(1), graph_vt=vt(0))
        with pytest.raises(dataclasses.FrozenInstanceError):
            write.object_uid = "x"


class TestDefaults:
    def test_propagate_defaults(self):
        msg = TxnPropagateMsg(txn_vt=vt(1), origin=0, writes=(), read_checks=(), clock=1)
        assert msg.delegate is None
        assert msg.force_confirm is False

    def test_write_op_default_path(self):
        write = WriteOp(object_uid="u", op=OpPayload("set", (1,)), read_vt=vt(1), graph_vt=vt(0))
        assert write.path == ()

    def test_snapshot_check_default_path(self):
        check = SnapshotCheck(object_uid="u", lo_vt=vt(1), hi_vt=vt(2), committed_only=True)
        assert check.path == ()

    def test_confirm_reason_default(self):
        msg = ConfirmMsg(txn_vt=vt(1), site=0, ok=True, clock=1)
        assert msg.reason == ""

    def test_abort_reason_default(self):
        msg = AbortMsg(txn_vt=vt(1), clock=1)
        assert msg.reason == ""


class TestStructure:
    def test_delegate_grant_sites(self):
        grant = DelegateGrant(all_sites=(0, 2, 3))
        assert grant.all_sites == (0, 2, 3)

    def test_path_step_carries_slot_id(self):
        step = PathStep(key=None, embed_vt=SlotId(vt(5), 1))
        assert step.embed_vt.vt == vt(5)

    def test_snapshot_messages(self):
        req = SnapshotConfirmMsg(snap_id=(1, 7), origin=1, checks=(), clock=9)
        reply = SnapshotReplyMsg(snap_id=(1, 7), ok=False, denials=("u",), clock=10)
        assert req.snap_id == reply.snap_id
        assert reply.denials == ("u",)

    def test_read_check_fields(self):
        check = ReadCheck(object_uid="u", read_vt=vt(1), graph_vt=vt(0))
        assert check.object_uid == "u"
