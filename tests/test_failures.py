"""Tests for client failure handling (paper section 3.4)."""

import pytest

from repro import Session
from repro.sim.network import FixedLatency
from repro import DInt


def triple(latency=20.0, **kwargs):
    session = Session.simulated(latency_ms=latency, **kwargs)
    sites = session.add_sites(3)
    objs = session.replicate(DInt, "x", sites, initial=0)
    session.settle()
    return session, sites, objs


class TestGraphRepair:
    def test_replica_site_failure_repairs_graphs(self):
        session, sites, objs = triple()
        s0, s1, s2 = sites
        # s2 (a plain replica; primary is s0) fails.
        session.network.fail_site(2)
        session.settle()
        assert 2 not in objs[0].graph().sites()
        assert 2 not in objs[1].graph().sites()
        # Updates continue among survivors.
        s1.transact(lambda: objs[1].set(5))
        session.settle()
        assert objs[0].get() == 5

    def test_primary_site_failure_uses_consensus(self):
        """The circularity case: the failed site was the primary, so the
        graph update cannot use the primary-based protocol."""
        session, sites, objs = triple()
        s0, s1, s2 = sites
        assert objs[1].primary_site() == 0
        session.network.fail_site(0)
        session.settle()
        # Survivors repaired the graph by consensus at a common VT.
        assert objs[1].graph().sites() == [1, 2]
        assert objs[2].graph().sites() == [1, 2]
        assert objs[1].graph_history().current().committed
        # A new primary is implied by the repaired graph.
        assert objs[1].primary_site() == 1
        total_repaired = sum(s.failures.graphs_repaired for s in (s1, s2))
        assert total_repaired >= 2

    def test_updates_work_after_primary_failover(self):
        session, sites, objs = triple()
        s0, s1, s2 = sites
        session.network.fail_site(0)
        session.settle()
        out = s2.transact(lambda: objs[2].set(77))
        session.settle()
        assert out.committed
        assert objs[1].get() == 77


class TestInflightResolution:
    def test_committed_inflight_transaction_is_committed_everywhere(self):
        """If any survivor logged the COMMIT, all survivors commit."""
        session, sites, objs = triple(latency=20.0)
        s0, s1, s2 = sites
        # s1 originates a txn; primary is s0 (delegate), which will commit
        # and broadcast.  Make the commit to s2 slow so at failure time s2
        # has the WRITE but not the COMMIT, while s1 has the COMMIT.
        session.network.set_link_latency(0, 2, FixedLatency(500.0))
        out = s1.transact(lambda: objs[1].set(9))
        session.run_for(60)  # commit reached s1 (via delegate) but not s2
        assert out.committed
        assert not objs[2].history.current().committed
        session.network.fail_site(1)  # the ORIGIN fails
        session.settle()
        # Resolution: s0 logged the commit, so s2 commits too.
        assert objs[2].history.current().committed
        assert objs[2].get() == 9

    def test_unknown_inflight_transaction_is_aborted(self):
        """If no survivor saw a COMMIT, the failed origin's txn aborts."""
        session, sites, objs = triple(latency=20.0, delegation_enabled=False)
        s0, s1, s2 = sites
        # Slow down everything from s1's confirms so that the txn cannot
        # commit before the failure: block s0 -> s1 (confirm channel).
        session.network.set_link_latency(0, 1, FixedLatency(10_000.0))
        out = s1.transact(lambda: objs[1].set(9))
        session.run_for(100)  # writes delivered; confirm still in flight
        assert not out.committed
        assert objs[0].get() == 9  # applied optimistically at survivors
        session.network.fail_site(1)
        session.settle()
        # No survivor logged a commit: rolled back everywhere.
        assert objs[0].get() == 0
        assert objs[2].get() == 0

    def test_blocked_local_transaction_retries_after_repair(self):
        """A transaction waiting on a failed primary aborts and re-executes
        once the graph update commits and a new primary is implied."""
        session, sites, objs = triple(latency=20.0, delegation_enabled=False)
        s0, s1, s2 = sites
        # Block confirms from the primary s0 to origin s2, then fail s0.
        session.network.set_link_latency(0, 2, FixedLatency(10_000.0))
        out = s2.transact(lambda: objs[2].set(33))
        session.run_for(100)
        assert not out.committed
        session.network.fail_site(0)
        session.settle()
        assert out.committed  # re-executed under the new primary
        assert objs[1].get() == 33
        assert out.attempts >= 2


class TestFailureEdgeCases:
    def test_two_party_peer_failure(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
        session.settle()
        session.network.fail_site(1)
        session.settle()
        assert a.graph().is_singleton()
        out = alice.transact(lambda: a.set(5))
        session.settle()
        assert out.committed
        assert out.commit_latency_ms == 0.0  # local primary now

    def test_failure_of_uninvolved_site_is_harmless(self):
        session = Session.simulated(latency_ms=20)
        sites = session.add_sites(4)
        objs = session.replicate(DInt, "x", sites[:2], initial=0)
        session.settle()
        session.network.fail_site(3)  # not in any relationship
        session.settle()
        sites[0].transact(lambda: objs[0].set(1))
        session.settle()
        assert objs[1].get() == 1

    def test_sequential_failures(self):
        session = Session.simulated(latency_ms=20)
        sites = session.add_sites(4)
        objs = session.replicate(DInt, "x", sites, initial=0)
        session.settle()
        session.network.fail_site(0)
        session.settle()
        session.network.fail_site(1)
        session.settle()
        assert objs[2].graph().sites() == [2, 3]
        sites[3].transact(lambda: objs[3].set(8))
        session.settle()
        assert objs[2].get() == 8
