"""Tests for the multi-tenant SessionHost and tenant-scoped transports.

Covers the roster/add_site edge cases that only exist under multiplexing:
duplicate site ids across tenants, eviction while messages are in flight,
and cross-tenant isolation of failure notifications — plus the
TenantTransport facade and the wire-level v3 tenant frames.
"""

import pytest

from repro import DInt, Placement, Session, SessionHost, TenantTransport
from repro.errors import ReproError, TransportError
from repro.sim.network import FixedLatency, Network
from repro.sim.scheduler import Scheduler
from repro.transport import (
    TENANT_STRIDE,
    MemoryTransport,
    SimTransport,
    TcpTransport,
    pack_site,
    unpack_site,
)


def sim_transport(latency_ms: float = 10.0, seed: int = 0) -> SimTransport:
    scheduler = Scheduler()
    return SimTransport(Network(scheduler, latency=FixedLatency(latency_ms), seed=seed))


class TestPacking:
    def test_tenant_zero_is_identity(self):
        assert pack_site(0, 17) == 17
        assert unpack_site(17) == (0, 17)

    def test_roundtrip(self):
        for tenant, site in [(1, 0), (1, 5), (999, TENANT_STRIDE - 1), (12345, 3)]:
            packed = pack_site(tenant, site)
            assert unpack_site(packed) == (tenant, site)

    def test_site_out_of_range_rejected(self):
        with pytest.raises(TransportError):
            pack_site(1, TENANT_STRIDE)
        with pytest.raises(TransportError):
            pack_site(1, -1)

    def test_distinct_tenants_never_collide(self):
        seen = set()
        for tenant in range(1, 50):
            for site in range(4):
                seen.add(pack_site(tenant, site))
        assert len(seen) == 49 * 4


class TestTenantTransport:
    def test_rejects_unscoped_tenant(self):
        with pytest.raises(TransportError, match="reserved"):
            TenantTransport(MemoryTransport(), 0)
        with pytest.raises(TransportError, match="positive"):
            TenantTransport(MemoryTransport(), -3)

    def test_session_runs_unchanged_over_facade(self):
        inner = MemoryTransport()
        session = Session(transport=TenantTransport(inner, 4))
        alice, bob = session.add_sites(2)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=1)
        alice.transact(lambda: a.set(41))
        session.settle()
        assert b.get() == 41

    def test_capability_protocol_passes_through(self):
        sim = sim_transport()
        facade = TenantTransport(sim, 2)
        assert facade.scheduler() is sim.scheduler()
        assert facade.network() is sim.network()
        session = Session(transport=facade)
        assert session.scheduler is sim.scheduler()
        mem_session = Session(transport=TenantTransport(MemoryTransport(), 2))
        assert mem_session.scheduler is None
        assert mem_session.network is None

    def test_detach_removes_routing_state(self):
        inner = MemoryTransport()
        facade = TenantTransport(inner, 3)
        got = []
        facade.register(0, lambda src, payload: got.append(payload))
        facade.send(1, 0, "hello")  # needs src? memory validates dst only
        inner.drain()
        assert got == ["hello"]
        facade.detach()
        with pytest.raises(TransportError):
            facade.send(1, 0, "gone")  # destination no longer registered


class TestDuplicateSiteIdsAcrossTenants:
    def test_same_site_ids_do_not_collide(self):
        transport = MemoryTransport()
        host = SessionHost(transport, local_sites=(0, 1), roster=(0, 1))
        s1 = host.tenant(1)
        s2 = host.tenant(2)
        # Both tenants use site ids 0 and 1 — the classic collision the
        # tenant namespace must prevent.
        assert [s.site_id for s in s1.sites] == [0, 1]
        assert [s.site_id for s in s2.sites] == [0, 1]
        a1, b1 = s1.replicate(DInt, "x", s1.sites, initial=10)
        a2, b2 = s2.replicate(DInt, "x", s2.sites, initial=20)
        s1.sites[0].transact(lambda: a1.set(11))
        s2.sites[0].transact(lambda: a2.set(22))
        host.settle()
        assert (b1.get(), b2.get()) == (11, 22)
        # Same names, same site ids, fully isolated state.
        assert a1.get() != a2.get()

    def test_duplicate_within_one_tenant_still_rejected(self):
        host = SessionHost(MemoryTransport(), local_sites=(0,))
        session = host.tenant(1)
        with pytest.raises(ReproError, match="already exists"):
            session.add_site("again", site_id=0)


class TestEvictionInFlight:
    def test_eviction_drops_in_flight_frames_without_crashing(self):
        sim = sim_transport()
        host = SessionHost(sim, local_sites=(0, 1), roster=(0, 1))
        doomed = host.tenant(5)
        survivor = host.tenant(6)
        d0, d1 = doomed.replicate(DInt, "x", doomed.sites, initial=0)
        v0, v1 = survivor.replicate(DInt, "x", survivor.sites, initial=0)
        dropped_before = sim.network().stats.messages_dropped
        # Launch writes in both tenants, then evict one while its commit
        # traffic is still in flight.
        doomed.sites[0].transact(lambda: d0.set(9))
        survivor.sites[0].transact(lambda: v0.set(7))
        assert host.evict(5)
        host.settle()  # must not raise on deliveries to the evicted tenant
        assert v1.get() == 7  # the surviving tenant is unaffected
        assert sim.network().stats.messages_dropped > dropped_before
        assert host.stats() == {"active": 1, "activations": 2, "evictions": 1}

    def test_evict_unknown_tenant_is_false(self):
        host = SessionHost(MemoryTransport(), local_sites=(0,))
        assert host.evict(99) is False

    def test_lru_bound_evicts_least_recently_used(self):
        host = SessionHost(MemoryTransport(), local_sites=(0,), max_active=2)
        host.tenant(1)
        host.tenant(2)
        host.tenant(1)  # touch 1: now 2 is the LRU
        host.tenant(3)  # exceeds the bound -> evict 2
        assert host.active_tenants == [1, 3]
        assert host.stats()["evictions"] == 1

    def test_reactivation_after_eviction_starts_fresh(self):
        host = SessionHost(MemoryTransport(), local_sites=(0,))
        first = host.tenant(7)
        host.evict(7)
        second = host.tenant(7)
        assert second is not first
        assert host.stats()["activations"] == 2


class TestCrossTenantFailureIsolation:
    def test_failure_notice_stays_within_its_tenant(self):
        sim = sim_transport()
        host = SessionHost(sim, local_sites=(0, 1), roster=(0, 1))
        s1 = host.tenant(1)
        s2 = host.tenant(2)
        notices1, notices2 = [], []
        s1.transport.add_failure_listener(notices1.append)
        s2.transport.add_failure_listener(notices2.append)
        # Fail tenant 1's site 1 only.
        s1.transport.fail_site(1)
        host.settle()
        assert notices1 == [1]  # tenant-local id, not the packed one
        assert notices2 == []
        assert s1.transport.is_failed(1)
        assert not s2.transport.is_failed(1)

    def test_unscoped_failures_do_not_leak_into_tenants(self):
        sim = sim_transport()
        # An unscoped (tenant-0) session and a hosted tenant share the fabric.
        flat = Session(transport=sim)
        flat.add_site("flat0", site_id=0)
        flat.add_site("flat1", site_id=1)
        host = SessionHost(sim, local_sites=(0, 1), roster=(0, 1))
        tenant = host.tenant(3)
        notices = []
        tenant.transport.add_failure_listener(notices.append)
        sim.fail_site(1)  # flat site 1, not the tenant's site 1
        host.settle()
        assert notices == []
        assert not tenant.transport.is_failed(1)


class TestHostObservability:
    def test_counters_aggregate_across_tenants(self):
        host = SessionHost(MemoryTransport(), local_sites=(0, 1), roster=(0, 1))
        for tid in (1, 2, 3):
            session = host.tenant(tid)
            objs = session.replicate(DInt, "x", session.sites, initial=0)
            session.sites[0].transact(lambda o=objs[0]: o.set(tid))
        host.settle()
        counters = host.counters()
        assert counters["commits"] >= 3  # at least one commit per tenant
        snaps = host.metrics_snapshot()
        assert [s["tenant"] for s in snaps] == [1, 1, 2, 2, 3, 3]

    def test_shared_bus_across_tenants(self):
        host = SessionHost(MemoryTransport(), local_sites=(0,))
        s1, s2 = host.tenant(1), host.tenant(2)
        assert s1.bus is s2.bus  # one EventBus across tenants

    def test_tenant_zero_rejected(self):
        host = SessionHost(MemoryTransport(), local_sites=(0,))
        with pytest.raises(ReproError, match="reserved"):
            host.tenant(0)


class TestSessionTransportCounters:
    def test_session_counters_include_transport_registry(self):
        # Satellite fix: the transport-level (site -1) registry must land
        # in Session.counters()/metrics_snapshot() rollups.
        addrs = {0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2)}
        tcp = TcpTransport(addrs, local_sites={0})
        session = Session(transport=tcp, roster={0, 1})
        session.add_site("proc0", site_id=0)
        tcp.frames_sent = 3
        counters = session.counters()
        assert counters["transport.frames_sent"] == 3
        assert "commits" in counters
        snaps = session.metrics_snapshot()
        assert snaps[-1]["site"] == -1
        assert snaps[-1]["counters"]["transport.frames_sent"] == 3


class TestPlacement:
    def test_symmetric_default_with_overrides(self):
        a, b, c = ("h", 1), ("h", 2), ("h", 3)
        placement = Placement({0: a, 1: b}, per_tenant={7: {1: c}})
        assert placement.addr_of(1, 0) == a
        assert placement.addr_of(1, 1) == b
        assert placement.addr_of(7, 1) == c  # migrated replica
        assert placement.addr_of(7, 0) == a
        assert placement.sites_at(1, b) == [1]
        assert placement.sites_at(7, b) == []
        assert placement.sites_at(7, c) == [1]
