"""Randomized convergence tests: replicas agree after quiescence.

The central safety property of the paper's optimistic algorithm is that
after the system quiesces, every replica holds the same committed value and
every committed transaction took effect exactly once, in VT order.  These
tests drive randomized workloads over the simulated network (with jitter,
so stragglers and conflicts actually occur) and check convergence.
"""

import random

import pytest

from repro import Session
from repro.sim.network import UniformLatency
from repro import DInt, DList, DMap


def value(obj):
    return obj.value_at(obj.current_value_vt())


def build_session(n_sites, seed, kind=DInt, jitter=(5.0, 80.0)):
    session = Session.simulated(latency_ms=40, seed=seed)
    session.network.default_latency = UniformLatency(*jitter)
    sites = session.add_sites(n_sites)
    objs = session.replicate(kind, "obj", sites, initial=0 if kind is DInt else None)
    session.settle()
    return session, sites, objs


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_blind_write_convergence(seed):
    session, sites, objs = build_session(3, seed)
    rng = random.Random(seed)
    for step in range(30):
        i = rng.randrange(len(sites))
        sites[i].transact(lambda o=objs[i], v=step: o.set(v))
        if rng.random() < 0.3:
            session.run_for(rng.uniform(0, 120))
    session.settle()
    values = [value(o) for o in objs]
    assert len(set(values)) == 1, f"divergence: {values}"
    assert all(o.history.current().committed for o in objs)


@pytest.mark.parametrize("seed", [10, 11, 12])
def test_read_modify_write_serializes(seed):
    """Every committed increment takes effect exactly once."""
    session, sites, objs = build_session(3, seed)
    rng = random.Random(seed)
    outcomes = []
    for step in range(20):
        i = rng.randrange(len(sites))
        outcomes.append(sites[i].transact(lambda o=objs[i]: o.set(o.get() + 1)))
        if rng.random() < 0.4:
            session.run_for(rng.uniform(0, 150))
    session.settle()
    committed = sum(1 for o in outcomes if o.committed)
    values = [value(o) for o in objs]
    assert len(set(values)) == 1
    assert values[0] == committed
    assert committed == 20  # all retried to success


@pytest.mark.parametrize("seed", [20, 21])
def test_list_convergence_under_concurrent_edits(seed):
    session, sites, lists = build_session(3, seed, kind=DList)
    rng = random.Random(seed)
    for step in range(12):
        i = rng.randrange(len(sites))
        site, lst = sites[i], lists[i]
        action = rng.random()

        def body(lst=lst, action=action, step=step, i=i):
            n = len(lst)
            if action < 0.6 or n == 0:
                lst.insert(rng.randrange(n + 1), "string", f"s{i}.{step}")
            elif action < 0.8:
                lst.remove(rng.randrange(n))
            else:
                lst.child_at(rng.randrange(n)).set(f"edit{i}.{step}")

        site.transact(body)
        session.run_for(rng.uniform(0, 200))
    session.settle()
    finals = [value(l) for l in lists]
    assert finals[0] == finals[1] == finals[2], f"divergence: {finals}"


@pytest.mark.parametrize("seed", [30, 31])
def test_map_convergence_with_lww(seed):
    session, sites, maps = build_session(3, seed, kind=DMap)
    rng = random.Random(seed)
    keys = ["a", "b", "c"]
    for step in range(25):
        i = rng.randrange(len(sites))
        key = rng.choice(keys)
        if rng.random() < 0.8:
            sites[i].transact(lambda m=maps[i], k=key, v=step: m.put(k, "int", v))
        else:
            sites[i].transact(lambda m=maps[i], k=key: m.delete(k))
        session.run_for(rng.uniform(0, 100))
    session.settle()
    finals = [value(m) for m in maps]
    assert finals[0] == finals[1] == finals[2], f"divergence: {finals}"


def test_mixed_objects_and_views_converge():
    session = Session.simulated(latency_ms=30, seed=42)
    session.network.default_latency = UniformLatency(5.0, 60.0)
    sites = session.add_sites(3)
    ints = session.replicate(DInt, "n", sites, initial=0)
    lists = session.replicate(DList, "l", sites)
    session.settle()

    from repro import View

    class Latest(View):
        def __init__(self):
            self.latest = None

        def update(self, changed, snapshot):
            self.latest = [snapshot.read(c) for c in changed]

    views = []
    for i, site in enumerate(sites):
        v = Latest()
        site.views.attach(v, [ints[i], lists[i]], "optimistic")
        views.append(v)

    rng = random.Random(7)
    for step in range(15):
        i = rng.randrange(3)

        def body(i=i, step=step):
            ints[i].set(ints[i].get() + 1)
            lists[i].append("int", step)

        sites[i].transact(body)
        session.run_for(rng.uniform(0, 100))
    session.settle()
    assert len({value(o) for o in ints}) == 1
    final_lists = [tuple(value(l)) for l in lists]
    assert len(set(final_lists)) == 1
    assert value(ints[0]) == 15
    assert len(final_lists[0]) == 15


def test_quiescence_commits_everything():
    """After settle, no uncommitted state remains anywhere."""
    session, sites, objs = build_session(4, seed=99)
    rng = random.Random(99)
    for step in range(20):
        i = rng.randrange(4)
        sites[i].transact(lambda o=objs[i], v=step: o.set(v + 1000))
    session.settle()
    for site in sites:
        for obj in site.objects.values():
            if hasattr(obj, "history"):
                assert obj.history.current().committed, obj.uid
    for site in sites:
        assert not site.engine.pending_propagates
        assert not site.engine.deps.pending_vts()
